//! Synthetic synthesis substrate ("Chipyard + Design Compiler" substitute).
//!
//! The paper collects its structural ground truth — per-component register counts,
//! clock-gating information and SRAM block shapes — from synthesized netlists of the
//! BOOM RTL.  This crate replaces that flow with a deterministic synthesis *model*:
//! [`synthesize`] maps a [`CpuConfig`] and a [`TechLibrary`] to a [`Netlist`] whose
//! per-component summaries follow the same structural trends the paper observes:
//!
//! * register counts grow (mostly linearly) with the component's hardware parameters of
//!   Table III, with a small amount of configuration-specific "synthesis noise";
//! * a large, component-dependent fraction of registers is clock gated;
//! * each SRAM Position is implemented by SRAM Blocks whose width/depth/count follow the
//!   capacity- and throughput-scaling patterns of Section II-B (the IFU `ftq_meta`
//!   position reproduces Table I exactly);
//! * combinational area grows super-linearly for width-sensitive structures (rename,
//!   issue select), which is what makes combinational power the hardest group to model.
//!
//! Nothing in this crate is visible to the AutoPower model at prediction time; the model
//! only ever reads netlists of the *training* configurations, exactly as the paper does.
//!
//! # Example
//!
//! ```
//! use autopower_config::{boom_configs, Component};
//! use autopower_netlist::synthesize;
//! use autopower_techlib::TechLibrary;
//!
//! let lib = TechLibrary::tsmc40_like();
//! let netlist = synthesize(&boom_configs()[0], &lib);
//! let rob = netlist.component(Component::Rob);
//! assert!(rob.registers > 0);
//! assert!(rob.gated_registers <= rob.registers);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comb;
mod registers;
mod sramblocks;

use autopower_config::{Component, CpuConfig, SramPositionId};
use autopower_techlib::TechLibrary;
use serde::Serialize;

pub use sramblocks::SramBlock;

/// Synthesis summary of a single component.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ComponentNetlist {
    /// The component this summary describes.
    pub component: Component,
    /// Total number of registers (flip-flops) in the component.
    pub registers: u64,
    /// Number of registers whose clock is gated (`R · g` of Eq. 3).
    pub gated_registers: u64,
    /// Number of integrated clock-gating cells inserted by synthesis.
    pub gating_cells: u64,
    /// Combinational area in gate equivalents.
    pub comb_gates: f64,
    /// SRAM blocks implementing the component's SRAM Positions.
    pub sram_blocks: Vec<SramBlock>,
}

impl ComponentNetlist {
    /// The gating rate `g`: fraction of registers whose clock is gated.
    pub fn gating_rate(&self) -> f64 {
        if self.registers == 0 {
            0.0
        } else {
            self.gated_registers as f64 / self.registers as f64
        }
    }

    /// Total SRAM capacity of the component in bits.
    pub fn sram_bits(&self) -> u64 {
        self.sram_blocks.iter().map(|b| b.bits()).sum()
    }

    /// Looks up the blocks of a specific SRAM Position.
    pub fn blocks_of(&self, position: SramPositionId) -> Option<&SramBlock> {
        self.sram_blocks.iter().find(|b| b.position == position)
    }
}

/// Synthesis summary of the whole core for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Netlist {
    /// The configuration that was synthesized.
    pub config: CpuConfig,
    /// Per-component summaries, in [`Component::ALL`] order.
    pub components: Vec<ComponentNetlist>,
}

impl Netlist {
    /// The summary of one component.
    ///
    /// # Panics
    ///
    /// Never panics for netlists produced by [`synthesize`], which always contain all 22
    /// components.
    pub fn component(&self, component: Component) -> &ComponentNetlist {
        &self.components[component.index()]
    }

    /// Total register count of the core.
    pub fn total_registers(&self) -> u64 {
        self.components.iter().map(|c| c.registers).sum()
    }

    /// Total gated-register count of the core.
    pub fn total_gated_registers(&self) -> u64 {
        self.components.iter().map(|c| c.gated_registers).sum()
    }

    /// Total combinational area of the core in gate equivalents.
    pub fn total_comb_gates(&self) -> f64 {
        self.components.iter().map(|c| c.comb_gates).sum()
    }

    /// Total SRAM capacity of the core in bits.
    pub fn total_sram_bits(&self) -> u64 {
        self.components.iter().map(|c| c.sram_bits()).sum()
    }
}

/// Synthesizes one configuration into a netlist summary.
///
/// The result is deterministic in `(config, library)`; re-running synthesis for the same
/// configuration always yields the same netlist, like re-running a frozen VLSI flow.
pub fn synthesize(config: &CpuConfig, library: &TechLibrary) -> Netlist {
    let components = Component::ALL
        .iter()
        .map(|&component| {
            let (registers, gated_registers, gating_cells) =
                registers::register_structure(component, config, library);
            let comb_gates = comb::comb_gates(component, config);
            let sram_blocks = sramblocks::blocks_for_component(component, config);
            ComponentNetlist {
                component,
                registers,
                gated_registers,
                gating_cells,
                comb_gates,
                sram_blocks,
            }
        })
        .collect();
    Netlist {
        config: *config,
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::{boom_configs, HwParam};
    use proptest::prelude::*;

    fn lib() -> TechLibrary {
        TechLibrary::tsmc40_like()
    }

    #[test]
    fn synthesis_is_deterministic() {
        let cfgs = boom_configs();
        let a = synthesize(&cfgs[4], &lib());
        let b = synthesize(&cfgs[4], &lib());
        assert_eq!(a, b);
    }

    #[test]
    fn all_components_present_in_order() {
        let n = synthesize(&boom_configs()[0], &lib());
        assert_eq!(n.components.len(), 22);
        for (i, c) in n.components.iter().enumerate() {
            assert_eq!(c.component.index(), i);
        }
    }

    #[test]
    fn larger_configs_have_more_of_everything() {
        let cfgs = boom_configs();
        let small = synthesize(&cfgs[0], &lib());
        let large = synthesize(&cfgs[14], &lib());
        assert!(large.total_registers() > small.total_registers());
        assert!(large.total_comb_gates() > small.total_comb_gates());
        assert!(large.total_sram_bits() > small.total_sram_bits());
    }

    #[test]
    fn gated_registers_never_exceed_registers() {
        for cfg in boom_configs() {
            let n = synthesize(&cfg, &lib());
            for c in &n.components {
                assert!(c.gated_registers <= c.registers, "{}", c.component);
                assert!(
                    c.gating_rate() >= 0.4,
                    "{} gating {}",
                    c.component,
                    c.gating_rate()
                );
                assert!(c.gating_rate() <= 0.98);
            }
        }
    }

    #[test]
    fn register_counts_grow_with_their_table_iii_parameters() {
        // Scaling only RobEntry must grow the ROB, not the ICache.
        let base = boom_configs()[7];
        let mut bigger = base;
        bigger
            .params
            .set(HwParam::RobEntry, base.params.value(HwParam::RobEntry) * 2);
        let n0 = synthesize(&base, &lib());
        let n1 = synthesize(&bigger, &lib());
        assert!(n1.component(Component::Rob).registers > n0.component(Component::Rob).registers);
        assert_eq!(
            n1.component(Component::ICacheDataArray).registers,
            n0.component(Component::ICacheDataArray).registers
        );
    }

    proptest! {
        /// Gating cell counts are consistent with the library fan-out (never more cells
        /// than gated registers, never fewer than gated/64).
        #[test]
        fn gating_cells_bounded(idx in 0usize..15) {
            let cfg = boom_configs()[idx];
            let n = synthesize(&cfg, &lib());
            for c in &n.components {
                prop_assert!(c.gating_cells <= c.gated_registers.max(1));
                if c.gated_registers > 64 {
                    prop_assert!(c.gating_cells >= c.gated_registers / 64);
                }
            }
        }
    }
}
