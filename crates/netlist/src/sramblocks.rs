//! SRAM Block shapes of every SRAM Position.
//!
//! The RTL generator of a parameterised core derives the shape of every SRAM block
//! deterministically from the configuration; there is no synthesis noise here.  The
//! shapes follow the two scaling patterns the paper identifies (capacity scaling and
//! throughput scaling), which is what allows AutoPower's scaling-pattern hardware model
//! to recover them exactly from two known configurations.

use autopower_config::{sram_positions_for, Component, CpuConfig, HwParam, SramPositionId};
use serde::Serialize;

/// The SRAM Blocks implementing one SRAM Position for one configuration.
///
/// A position is implemented by `count` identical blocks of `width × depth` bits
/// (a multi-bank structure when `count > 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SramBlock {
    /// The SRAM Position these blocks implement.
    pub position: SramPositionId,
    /// Word width of each block in bits.
    pub width: u32,
    /// Number of words of each block.
    pub depth: u32,
    /// Number of identical blocks (banks).
    pub count: u32,
    /// Number of write-mask sectors (copied from the position catalogue).
    pub mask_sectors: u32,
}

impl SramBlock {
    /// Total capacity of the position in bits (`width × depth × count`).
    pub fn bits(&self) -> u64 {
        self.width as u64 * self.depth as u64 * self.count as u64
    }

    /// Throughput of the position in bits per access (`width × count`).
    pub fn throughput_bits(&self) -> u64 {
        self.width as u64 * self.count as u64
    }
}

/// Shape rule of one SRAM Position: `(width, depth, count)` as a function of the
/// configuration.
fn block_shape(position: SramPositionId, config: &CpuConfig) -> (u32, u32, u32) {
    use HwParam::*;
    let v = |p: HwParam| config.params.value(p);
    let fetch = v(FetchWidth);
    let decode = v(DecodeWidth);
    let branch = v(BranchCount);
    match (position.component, position.name) {
        // Branch predictor: capacity scales with BranchCount, throughput with FetchWidth.
        (Component::BpTage, "tage_table") => (4 * fetch, 64 * branch, 1),
        (Component::BpTage, "tage_meta") => (2 * fetch, 32 * branch, 1),
        (Component::BpBtb, "btb_data") => (40, 8 * branch, fetch / 4),
        (Component::BpBtb, "btb_tag") => (20, 8 * branch, fetch / 4),
        // Instruction cache: count scales with associativity (throughput pattern),
        // width with the fetch bytes (capacity pattern).
        (Component::ICacheTagArray, "itag") => (24, 64, v(CacheWay)),
        (Component::ICacheDataArray, "idata") => (64 * v(ICacheFetchBytes), 128, v(CacheWay)),
        // Data cache: banked for the memory issue width.
        (Component::DCacheTagArray, "dtag") => (24, 64, v(CacheWay)),
        (Component::DCacheDataArray, "ddata") => {
            (128, 64, v(CacheWay) * config.params.mem_issue_width())
        }
        // ROB payload: width scales with DecodeWidth, depth with RobEntry / DecodeWidth —
        // the paper's example of a position whose width/depth do NOT scale linearly with
        // a single parameter even though its capacity does.
        (Component::Rob, "rob_meta") => (40 * decode, v(RobEntry) / decode, 1),
        // Register files: capacity scales with the physical register counts.
        (Component::Regfile, "int_rf") => (64, v(IntPhyRegister), 1),
        (Component::Regfile, "fp_rf") => (65, v(FpPhyRegister), 1),
        // TLBs.
        (Component::ITlb, "itlb_array") => (48, config.params.itlb_entries(), 1),
        (Component::DTlb, "dtlb_array") => (56, v(DtlbEntry), 1),
        // MSHR payload.
        (Component::DCacheMshr, "mshr_table") => (96, 8 * v(MshrEntry), 1),
        // Load/store queues: banked by memory issue width.
        (Component::Lsu, "ldq_data") => (80, v(LdqStqEntry), config.params.mem_issue_width()),
        (Component::Lsu, "stq_data") => (96, v(LdqStqEntry), config.params.mem_issue_width()),
        // IFU structures. `ftq_meta` reproduces Table I of the paper exactly:
        // width = 30·FetchWidth, depth = 8·DecodeWidth, count = 1.
        (Component::Ifu, "ftq_ghist") => (16 * fetch, 4 * v(FetchBufferEntry), 1),
        (Component::Ifu, "ftq_meta") => (30 * fetch, 8 * decode, 1),
        (Component::Ifu, "fetch_buffer") => (48, v(FetchBufferEntry), fetch / 4),
        _ => unreachable!("no shape rule for SRAM position {position}"),
    }
}

/// Generates the SRAM blocks of every SRAM Position of one component.
pub fn blocks_for_component(component: Component, config: &CpuConfig) -> Vec<SramBlock> {
    sram_positions_for(component)
        .into_iter()
        .map(|pos| {
            let (width, depth, count) = block_shape(pos.id, config);
            assert!(
                width > 0 && depth > 0 && count > 0,
                "degenerate SRAM block for {}",
                pos.id
            );
            SramBlock {
                position: pos.id,
                width,
                depth,
                count,
                mask_sectors: pos.mask_sectors,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::{boom_configs, sram_positions};
    use proptest::prelude::*;

    #[test]
    fn table_i_example_is_reproduced_exactly() {
        // Table I of the paper: the IFU metadata table (`ftq_meta`).
        let cfgs = boom_configs();
        let ifu_meta = |cfg_idx: usize| {
            blocks_for_component(Component::Ifu, &cfgs[cfg_idx])
                .into_iter()
                .find(|b| b.position.name == "ftq_meta")
                .expect("ftq_meta exists")
        };
        let c1 = ifu_meta(0);
        assert_eq!((c1.width, c1.depth, c1.count), (120, 8, 1));
        let c15 = ifu_meta(14);
        assert_eq!((c15.width, c15.depth, c15.count), (240, 40, 1));
    }

    #[test]
    fn every_position_gets_exactly_one_block_spec_per_config() {
        for cfg in boom_configs() {
            let mut total = 0;
            for c in Component::ALL {
                total += blocks_for_component(c, &cfg).len();
            }
            assert_eq!(total, sram_positions().len());
        }
    }

    #[test]
    fn capacity_scaling_positions_scale_with_their_parameter() {
        let cfgs = boom_configs();
        // int_rf capacity is proportional to IntPhyRegister.
        let cap = |idx: usize| {
            blocks_for_component(Component::Regfile, &cfgs[idx])
                .iter()
                .find(|b| b.position.name == "int_rf")
                .unwrap()
                .bits() as f64
        };
        let ratio = cap(14) / cap(0);
        let param_ratio = cfgs[14].params.value(HwParam::IntPhyRegister) as f64
            / cfgs[0].params.value(HwParam::IntPhyRegister) as f64;
        assert!((ratio - param_ratio).abs() < 1e-9);
    }

    #[test]
    fn throughput_scaling_positions_scale_bank_count() {
        let cfgs = boom_configs();
        let banks =
            |idx: usize| blocks_for_component(Component::DCacheDataArray, &cfgs[idx])[0].count;
        // C1: 2 ways x 1 mem issue = 2 banks; C15: 8 ways x 2 mem issue = 16 banks.
        assert_eq!(banks(0), 2);
        assert_eq!(banks(14), 16);
    }

    #[test]
    fn rob_capacity_proportional_to_rob_entries() {
        let cfgs = boom_configs();
        let bits = |idx: usize| blocks_for_component(Component::Rob, &cfgs[idx])[0].bits() as f64;
        let r = |idx: usize| cfgs[idx].params.value(HwParam::RobEntry) as f64;
        // capacity / RobEntry is the same constant for every configuration.
        let k0 = bits(0) / r(0);
        for idx in 1..15 {
            assert!((bits(idx) / r(idx) - k0).abs() < 1e-9, "config {idx}");
        }
    }

    proptest! {
        /// Block shapes are always positive and deterministic across the design space.
        #[test]
        fn shapes_positive_everywhere(idx in 0usize..15) {
            let cfg = boom_configs()[idx];
            for c in Component::ALL {
                for b in blocks_for_component(c, &cfg) {
                    prop_assert!(b.width > 0 && b.depth > 0 && b.count > 0);
                    prop_assert_eq!(blocks_for_component(c, &cfg)
                        .iter()
                        .find(|x| x.position == b.position)
                        .copied()
                        .unwrap(), b);
                }
            }
        }
    }
}
