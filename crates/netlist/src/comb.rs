//! Combinational-area model of each component.

use autopower_config::{seed, Component, CpuConfig, HwParam};

/// Deterministic per-(component, config) synthesis-noise factor for combinational area.
///
/// Combinational synthesis is noisier than register placement (logic restructuring,
/// sharing, mapping effort), so the sigma is larger than for registers.  This is one of
/// the reasons the paper treats combinational power as the hardest group and models it as
/// stable-power × variation rather than through physical decoupling.
fn comb_noise(component: Component, config: &CpuConfig) -> f64 {
    let s = seed::combine(
        seed::hash_str(component.name()),
        seed::combine(seed::hash_str("comb"), config.id.index() as u64),
    );
    seed::lognormal_factor(s, 0.06)
}

/// Combinational area of a component in gate equivalents.
///
/// Width-sensitive structures (rename cross-bars, issue select trees, bypass networks)
/// grow super-linearly with machine width; storage-dominated components grow mostly
/// linearly with their capacity parameters.
pub fn comb_gates(component: Component, config: &CpuConfig) -> f64 {
    use HwParam::*;
    let v = |p: HwParam| config.params.value(p) as f64;
    let mem_issue = config.params.mem_issue_width() as f64;
    let fp_issue = config.params.fp_issue_width() as f64;
    let iways = config.params.icache_ways() as f64;
    let dways = config.params.dcache_ways() as f64;
    let total_issue = v(IntIssueWidth) + mem_issue + fp_issue;
    let base = match component {
        Component::BpTage => 2_600.0 + 170.0 * v(BranchCount) + 260.0 * v(FetchWidth),
        Component::BpBtb => 1_900.0 + 120.0 * v(BranchCount) + 210.0 * v(FetchWidth),
        Component::BpOthers => 3_400.0 + 200.0 * v(BranchCount) + 330.0 * v(FetchWidth),
        Component::ICacheTagArray => 900.0 + 260.0 * iways + 120.0 * v(ICacheFetchBytes),
        Component::ICacheDataArray => 1_200.0 + 380.0 * iways + 540.0 * v(ICacheFetchBytes),
        Component::ICacheOthers => 2_800.0 + 300.0 * iways + 400.0 * v(ICacheFetchBytes),
        Component::Rnu => {
            1_500.0 + 1_500.0 * v(DecodeWidth) + 620.0 * v(DecodeWidth) * v(DecodeWidth)
        }
        Component::Rob => 1_800.0 + 52.0 * v(RobEntry) + 900.0 * v(DecodeWidth),
        Component::Regfile => {
            1_000.0
                + 14.0 * v(IntPhyRegister)
                + 14.0 * v(FpPhyRegister)
                + 700.0 * v(DecodeWidth)
                + 450.0 * total_issue
        }
        Component::DCacheTagArray => 950.0 + 240.0 * dways + 380.0 * mem_issue + 9.0 * v(DtlbEntry),
        Component::DCacheDataArray => 1_100.0 + 330.0 * dways + 650.0 * mem_issue,
        Component::DCacheOthers => {
            4_300.0 + 420.0 * dways + 1_100.0 * mem_issue + 14.0 * v(DtlbEntry)
        }
        Component::FpIsu => {
            1_600.0
                + 1_250.0 * v(DecodeWidth)
                + 1_500.0 * fp_issue
                + 260.0 * fp_issue * v(DecodeWidth)
        }
        Component::IntIsu => {
            1_700.0
                + 1_300.0 * v(DecodeWidth)
                + 1_550.0 * v(IntIssueWidth)
                + 280.0 * v(IntIssueWidth) * v(DecodeWidth)
        }
        Component::MemIsu => {
            1_650.0
                + 1_200.0 * v(DecodeWidth)
                + 1_450.0 * mem_issue
                + 240.0 * mem_issue * v(DecodeWidth)
        }
        Component::ITlb => 500.0 + 55.0 * config.params.itlb_entries() as f64,
        Component::DTlb => 560.0 + 62.0 * v(DtlbEntry),
        Component::FuPool => {
            5_200.0 + 6_500.0 * v(IntIssueWidth) + 11_500.0 * fp_issue + 4_800.0 * mem_issue
        }
        Component::OtherLogic => {
            7_500.0
                + 30.0 * v(RobEntry)
                + 1_200.0 * v(DecodeWidth)
                + 700.0 * v(FetchWidth)
                + 55.0 * v(LdqStqEntry)
                + 16.0 * v(IntPhyRegister)
                + 16.0 * v(FpPhyRegister)
                + 500.0 * total_issue
                + 150.0 * v(BranchCount)
        }
        Component::DCacheMshr => 700.0 + 820.0 * v(MshrEntry),
        Component::Lsu => {
            2_300.0
                + 210.0 * v(LdqStqEntry)
                + 1_500.0 * mem_issue
                + 60.0 * v(LdqStqEntry) * mem_issue
        }
        Component::Ifu => {
            2_600.0 + 520.0 * v(FetchWidth) + 230.0 * v(FetchBufferEntry) + 760.0 * v(DecodeWidth)
        }
    };
    base * comb_noise(component, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::boom_configs;

    #[test]
    fn comb_area_positive_and_deterministic() {
        for cfg in boom_configs() {
            for c in Component::ALL {
                let a = comb_gates(c, &cfg);
                assert!(a > 0.0);
                assert_eq!(a, comb_gates(c, &cfg));
            }
        }
    }

    #[test]
    fn rename_area_grows_superlinearly_with_decode_width() {
        // Compare C1 (DecodeWidth 1) with C15 (DecodeWidth 5): the RNU must grow by more
        // than 5x because of the quadratic cross-bar term.
        let cfgs = boom_configs();
        let small = comb_gates(Component::Rnu, &cfgs[0]);
        let large = comb_gates(Component::Rnu, &cfgs[14]);
        assert!(large / small > 4.0, "ratio {}", large / small);
    }

    #[test]
    fn fu_pool_is_among_the_largest_components() {
        let cfg = boom_configs()[14];
        let fu = comb_gates(Component::FuPool, &cfg);
        let itlb = comb_gates(Component::ITlb, &cfg);
        assert!(fu > 10.0 * itlb);
    }
}
