//! Register-count and clock-gating structure of each component.

use autopower_config::{seed, Component, CpuConfig, HwParam};
use autopower_techlib::TechLibrary;

/// Deterministic per-(component, config) synthesis-noise factor.
///
/// Real synthesis runs never land exactly on an analytical prediction: retiming, register
/// duplication for fan-out, and scan insertion perturb the count by a few percent.  The
/// factor is a property of the synthesized design, so it is seeded by (component, config)
/// only — never by the workload.
fn synthesis_noise(component: Component, config: &CpuConfig, tag: &str, sigma: f64) -> f64 {
    let s = seed::combine(
        seed::hash_str(component.name()),
        seed::combine(seed::hash_str(tag), config.id.index() as u64),
    );
    seed::lognormal_factor(s, sigma)
}

/// Analytical (pre-noise) register count of a component for a configuration.
///
/// The formulas are mostly linear in the Table III parameters of the component, with a
/// few mild width-squared terms for structures whose port/select logic registers scale
/// with the square of the machine width (rename, issue select).
fn base_registers(component: Component, config: &CpuConfig) -> f64 {
    use HwParam::*;
    let v = |p: HwParam| config.params.value(p) as f64;
    let mem_issue = config.params.mem_issue_width() as f64;
    let fp_issue = config.params.fp_issue_width() as f64;
    let iways = config.params.icache_ways() as f64;
    let dways = config.params.dcache_ways() as f64;
    let itlb = config.params.itlb_entries() as f64;
    match component {
        Component::BpTage => 320.0 + 22.0 * v(BranchCount) + 34.0 * v(FetchWidth),
        Component::BpBtb => 210.0 + 15.0 * v(BranchCount) + 26.0 * v(FetchWidth),
        Component::BpOthers => 430.0 + 27.0 * v(BranchCount) + 44.0 * v(FetchWidth),
        Component::ICacheTagArray => 95.0 + 30.0 * iways + 14.0 * v(ICacheFetchBytes),
        Component::ICacheDataArray => 130.0 + 42.0 * iways + 64.0 * v(ICacheFetchBytes),
        Component::ICacheOthers => 360.0 + 32.0 * iways + 48.0 * v(ICacheFetchBytes),
        Component::Rnu => 160.0 + 360.0 * v(DecodeWidth) + 22.0 * v(DecodeWidth) * v(DecodeWidth),
        Component::Rob => 220.0 + 8.5 * v(RobEntry) + 130.0 * v(DecodeWidth),
        Component::Regfile => {
            110.0 + 3.2 * v(IntPhyRegister) + 3.2 * v(FpPhyRegister) + 85.0 * v(DecodeWidth)
        }
        Component::DCacheTagArray => 105.0 + 28.0 * dways + 42.0 * mem_issue + 1.8 * v(DtlbEntry),
        Component::DCacheDataArray => 115.0 + 38.0 * dways + 72.0 * mem_issue,
        Component::DCacheOthers => 520.0 + 48.0 * dways + 130.0 * mem_issue + 2.6 * v(DtlbEntry),
        Component::FpIsu => 190.0 + 240.0 * v(DecodeWidth) + 230.0 * fp_issue,
        Component::IntIsu => {
            210.0
                + 255.0 * v(DecodeWidth)
                + 245.0 * v(IntIssueWidth)
                + 18.0 * v(IntIssueWidth) * v(IntIssueWidth)
        }
        Component::MemIsu => 195.0 + 225.0 * v(DecodeWidth) + 215.0 * mem_issue,
        Component::ITlb => 65.0 + 9.5 * itlb,
        Component::DTlb => 75.0 + 11.5 * v(DtlbEntry),
        Component::FuPool => {
            420.0 + 720.0 * v(IntIssueWidth) + 920.0 * fp_issue + 520.0 * mem_issue
        }
        Component::OtherLogic => {
            850.0
                + 3.8 * v(RobEntry)
                + 150.0 * v(DecodeWidth)
                + 90.0 * v(FetchWidth)
                + 4.0 * v(FetchBufferEntry)
                + 6.0 * v(LdqStqEntry)
                + 2.0 * v(IntPhyRegister)
                + 2.0 * v(FpPhyRegister)
                + 60.0 * v(IntIssueWidth)
                + 45.0 * mem_issue
                + 20.0 * v(BranchCount)
                + 15.0 * dways
                + 1.5 * v(DtlbEntry)
                + 12.0 * v(MshrEntry)
                + 25.0 * v(ICacheFetchBytes)
        }
        Component::DCacheMshr => 90.0 + 115.0 * v(MshrEntry),
        Component::Lsu => 270.0 + 30.0 * v(LdqStqEntry) + 190.0 * mem_issue,
        Component::Ifu => {
            320.0 + 62.0 * v(FetchWidth) + 32.0 * v(FetchBufferEntry) + 95.0 * v(DecodeWidth)
        }
    }
}

/// Analytical (pre-noise) clock-gating rate of a component.
///
/// Synthesis gates most datapath registers; control-heavy components have a lower rate.
/// Larger instances are gated slightly more aggressively (more registers share an enable).
fn base_gating_rate(component: Component, registers: f64) -> f64 {
    let base = match component {
        Component::BpTage | Component::BpBtb => 0.88,
        Component::BpOthers => 0.80,
        Component::ICacheTagArray | Component::DCacheTagArray => 0.84,
        Component::ICacheDataArray | Component::DCacheDataArray => 0.86,
        Component::ICacheOthers | Component::DCacheOthers => 0.74,
        Component::Rnu => 0.82,
        Component::Rob => 0.90,
        Component::Regfile => 0.92,
        Component::FpIsu | Component::IntIsu | Component::MemIsu => 0.85,
        Component::ITlb | Component::DTlb => 0.78,
        Component::FuPool => 0.89,
        Component::OtherLogic => 0.62,
        Component::DCacheMshr => 0.80,
        Component::Lsu => 0.86,
        Component::Ifu => 0.83,
    };
    // Mild size dependence: every doubling beyond 1k registers adds one point of gating.
    let size_bonus = 0.01 * ((registers / 1000.0).max(1.0)).log2();
    (base + size_bonus).clamp(0.4, 0.97)
}

/// Computes `(registers, gated_registers, gating_cells)` for one component.
pub fn register_structure(
    component: Component,
    config: &CpuConfig,
    library: &TechLibrary,
) -> (u64, u64, u64) {
    let registers_f =
        base_registers(component, config) * synthesis_noise(component, config, "reg", 0.02);
    let registers = registers_f.round().max(1.0) as u64;

    let gating = (base_gating_rate(component, registers_f)
        * synthesis_noise(component, config, "gate", 0.01))
    .clamp(0.4, 0.97);
    let gated_registers = ((registers as f64) * gating).round() as u64;

    // Synthesis inserts roughly one gating cell per `fanout` gated registers, with some
    // slack for enables that cannot be merged.
    let fanout = library.cells().gating_cell_fanout
        * synthesis_noise(component, config, "fanout", 0.05).clamp(0.8, 1.25);
    let gating_cells = ((gated_registers as f64) / fanout).ceil().max(1.0) as u64;

    (registers, gated_registers.min(registers), gating_cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::boom_configs;

    #[test]
    fn register_counts_are_positive_for_all_components() {
        let lib = TechLibrary::tsmc40_like();
        for cfg in boom_configs() {
            for c in Component::ALL {
                let (r, g, cells) = register_structure(c, &cfg, &lib);
                assert!(r > 0);
                assert!(g <= r);
                assert!(cells >= 1);
            }
        }
    }

    #[test]
    fn noise_is_small_and_deterministic() {
        let cfg = boom_configs()[9];
        let f1 = synthesis_noise(Component::Rob, &cfg, "reg", 0.02);
        let f2 = synthesis_noise(Component::Rob, &cfg, "reg", 0.02);
        assert_eq!(f1, f2);
        assert!((f1 - 1.0).abs() < 0.15);
        // Different components get different noise.
        let f3 = synthesis_noise(Component::Lsu, &cfg, "reg", 0.02);
        assert_ne!(f1, f3);
    }

    #[test]
    fn rob_registers_track_rob_entries_roughly_linearly() {
        let lib = TechLibrary::tsmc40_like();
        let cfgs = boom_configs();
        let (r_small, _, _) = register_structure(Component::Rob, &cfgs[0], &lib); // RobEntry 16
        let (r_big, _, _) = register_structure(Component::Rob, &cfgs[14], &lib); // RobEntry 140
        let ratio = r_big as f64 / r_small as f64;
        assert!(ratio > 3.0 && ratio < 9.0, "ratio {ratio}");
    }

    #[test]
    fn gating_rate_stays_in_claimed_band() {
        for r in [100.0, 1000.0, 20_000.0] {
            for c in Component::ALL {
                let g = base_gating_rate(c, r);
                assert!((0.4..=0.97).contains(&g));
            }
        }
    }
}
