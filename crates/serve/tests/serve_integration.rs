//! End-to-end tests of the running server: bit-identity against the offline
//! sweep across batch sizes, connection counts and worker counts; hot-reload
//! semantics; framing-error recovery; graceful drain.
//!
//! One fixture trains and saves two models (`autopower` — grouped
//! predictions — and `mcpat-calib-component` — per-component predictions, so
//! both heavyweight wire resolutions cross the socket) once per process; the
//! tests start short-lived servers on ephemeral loopback ports against those
//! files.

use autopower::{load_model, ModelKind, SweepEngine, SweepPoint, SweepSpec};
use autopower_config::{boom_configs, ConfigId, CpuConfig, DesignSpace, Workload};
use autopower_serve::client::{Client, ClientError};
use autopower_serve::protocol::{
    read_frame, write_frame, ErrorCode, Frame, ServedPoint, MAGIC, PROTOCOL_VERSION,
};
use autopower_serve::server::{ServeOptions, Server};
use proptest::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Where the fixture's saved model files live for the whole test process.
struct Fixture {
    dir: PathBuf,
    autopower: PathBuf,
    component: PathBuf,
}

/// Trains the two fixture models once and saves them; every test reuses the
/// same files (servers only ever read them).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("autopower-serve-it-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        let cfgs = boom_configs();
        let corpus = autopower::Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &autopower::CorpusSpec::fast(),
        );
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let autopower_path = dir.join("autopower.apm");
        let component_path = dir.join("mcpat-calib-component.apm");
        let model = ModelKind::AutoPower
            .train(&corpus, &train)
            .expect("train autopower");
        autopower::save_model(model.as_ref(), &autopower_path).expect("save autopower");
        let model = ModelKind::McpatCalibComponent
            .train(&corpus, &train)
            .expect("train mcpat-calib-component");
        autopower::save_model(model.as_ref(), &component_path).expect("save component model");
        Fixture {
            dir,
            autopower: autopower_path,
            component: component_path,
        }
    })
}

/// A per-test unique scratch file name under the fixture directory.
fn scratch_path(stem: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    fixture().dir.join(format!("{stem}-{n}.apm"))
}

fn start_server(paths: Vec<PathBuf>, options: ServeOptions) -> Server {
    Server::start("127.0.0.1:0", paths, options).expect("server starts")
}

fn connect(server: &Server) -> Client {
    Client::connect(server.addr()).expect("client connects")
}

/// Stops a server cleanly and asserts the drain completes.
fn stop(server: Server) {
    let mut client = connect(&server);
    client.shutdown().expect("shutdown acknowledged");
    server.join().expect("server drains and exits");
}

/// The offline reference: the same model file scored through the plain sweep
/// engine (fast sim settings, serial).
fn offline_points(path: &Path, configs: &[CpuConfig], workloads: &[Workload]) -> Vec<SweepPoint> {
    let model = load_model(path).expect("load reference model");
    SweepEngine::new(model.as_ref(), SweepSpec::fast().threads(1)).run(configs, workloads)
}

/// Asserts a served batch equals the offline reference exactly (both the
/// typed prediction and the IPC — `PartialEq` on `Prediction` compares every
/// `f64`, so this is bit-level apart from NaN, which the models never emit).
fn assert_matches_offline(served: &[ServedPoint], reference: &[SweepPoint]) {
    assert_eq!(served.len(), reference.len());
    for (got, want) in served.iter().zip(reference) {
        assert_eq!(
            got.power, want.power,
            "prediction diverged from offline sweep"
        );
        assert_eq!(got.ipc.to_bits(), want.ipc.to_bits(), "ipc diverged");
    }
}

proptest! {
    /// For arbitrary batch shapes, client counts and both wire resolutions,
    /// served predictions are bit-identical to the offline sweep on the same
    /// model file.  The server runs two workers and a small merge window, so
    /// concurrent requests actually exercise the batching queue.
    #[test]
    fn served_predictions_match_offline_for_any_batch_shape(
        n_configs in 1usize..7,
        n_workloads in 1usize..4,
        seed in 0u64..1_000,
        n_clients in 1usize..4,
        component_model in 0u8..2,
    ) {
        let fx = fixture();
        let (path, kind) = if component_model == 1 {
            (&fx.component, ModelKind::McpatCalibComponent)
        } else {
            (&fx.autopower, ModelKind::AutoPower)
        };
        let options = ServeOptions {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            ..ServeOptions::fast()
        };
        let server = start_server(vec![path.clone()], options);

        let configs = DesignSpace::boom().sample(n_configs, seed);
        let workloads: Vec<Workload> = Workload::ALL[..n_workloads].to_vec();
        let reference = offline_points(path, &configs, &workloads);

        // Concurrent clients issuing the same request must each get the
        // exact reference answer, however the batcher merges them.
        let served: Vec<Vec<ServedPoint>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_clients)
                .map(|_| {
                    let configs = &configs;
                    let workloads = &workloads;
                    let server = &server;
                    scope.spawn(move || {
                        connect(server)
                            .predict(kind, configs, workloads)
                            .expect("predict succeeds")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        for batch in &served {
            assert_matches_offline(batch, &reference);
        }
        stop(server);
    }
}

#[test]
fn worker_count_and_batching_knobs_do_not_change_predictions() {
    let fx = fixture();
    let configs = DesignSpace::boom().sample(5, 42);
    let workloads = [Workload::Dhrystone, Workload::Qsort, Workload::Gemm];
    let reference = offline_points(&fx.autopower, &configs, &workloads);

    for (workers, max_batch, max_wait_ms) in [(1, 1, 0), (2, 4, 1), (4, 256, 5)] {
        let options = ServeOptions {
            workers,
            max_batch,
            max_wait: Duration::from_millis(max_wait_ms),
            ..ServeOptions::fast()
        };
        let server = start_server(vec![fx.autopower.clone()], options);
        let served = connect(&server)
            .predict(ModelKind::AutoPower, &configs, &workloads)
            .expect("predict succeeds");
        assert_matches_offline(&served, &reference);
        stop(server);
    }
}

#[test]
fn both_loaded_models_serve_and_unknown_kind_is_refused() {
    let fx = fixture();
    let server = start_server(
        vec![fx.autopower.clone(), fx.component.clone()],
        ServeOptions::fast(),
    );
    let mut client = connect(&server);

    let info = client.info().expect("info");
    assert_eq!(
        info.kinds,
        vec![ModelKind::AutoPower, ModelKind::McpatCalibComponent]
    );

    let configs = DesignSpace::boom().sample(2, 9);
    let workloads = [Workload::Towers];
    for (kind, path) in [
        (ModelKind::AutoPower, &fx.autopower),
        (ModelKind::McpatCalibComponent, &fx.component),
    ] {
        let served = client.predict(kind, &configs, &workloads).expect("predict");
        assert_matches_offline(&served, &offline_points(path, &configs, &workloads));
    }

    // A kind that is not loaded gets a typed refusal naming what is served —
    // and the connection stays usable afterwards.
    match client.predict(ModelKind::McpatCalib, &configs, &workloads) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::UnknownModel);
            assert!(message.contains("mcpat-calib"), "{message}");
        }
        other => panic!("expected unknown-model refusal, got {other:?}"),
    }
    client
        .predict(ModelKind::AutoPower, &configs, &workloads)
        .expect("connection still serves after a refusal");
    stop(server);
}

#[test]
fn hot_reload_swaps_the_model_between_requests() {
    let fx = fixture();
    // A private copy of the model file, so the test can swap its contents.
    let path = scratch_path("reload");
    std::fs::copy(&fx.autopower, &path).expect("seed the served file");

    let server = start_server(vec![path.clone()], ServeOptions::fast());
    let mut client = connect(&server);
    let configs = DesignSpace::boom().sample(3, 77);
    let workloads = [Workload::Dhrystone, Workload::Rsort];

    let before = client
        .predict(ModelKind::AutoPower, &configs, &workloads)
        .expect("predict against the original file");
    assert_matches_offline(
        &before,
        &offline_points(&fx.autopower, &configs, &workloads),
    );

    // Swap the file for a different trained model (a different kind, so the
    // swap is unmistakable), reload, and check subsequent answers are
    // bit-identical to the new file.
    std::fs::copy(&fx.component, &path).expect("swap the served file");
    let kinds = client.reload().expect("reload succeeds");
    assert_eq!(kinds, vec![ModelKind::McpatCalibComponent]);

    let after = client
        .predict(ModelKind::McpatCalibComponent, &configs, &workloads)
        .expect("predict against the reloaded file");
    assert_matches_offline(&after, &offline_points(&fx.component, &configs, &workloads));

    // The old kind is gone after the swap.
    match client.predict(ModelKind::AutoPower, &configs, &workloads) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownModel),
        other => panic!("expected unknown-model after swap, got {other:?}"),
    }
    stop(server);
}

#[test]
fn in_flight_requests_complete_on_the_old_model_during_reload() {
    let fx = fixture();
    let path = scratch_path("inflight");
    std::fs::copy(&fx.autopower, &path).expect("seed the served file");

    // A long batching window holds the request in the queue, guaranteeing
    // the reload lands while it is in flight.
    let options = ServeOptions {
        workers: 1,
        max_batch: 1_000_000,
        max_wait: Duration::from_millis(600),
        ..ServeOptions::fast()
    };
    let server = start_server(vec![path.clone()], options);
    let configs = DesignSpace::boom().sample(2, 5);
    let workloads = [Workload::Median];
    let reference = offline_points(&fx.autopower, &configs, &workloads);

    let served = std::thread::scope(|scope| {
        let in_flight = {
            let configs = &configs;
            let workloads = &workloads;
            let server = &server;
            scope.spawn(move || {
                connect(server)
                    .predict(ModelKind::AutoPower, configs, workloads)
                    .expect("in-flight predict completes")
            })
        };
        // While that request sits in the batching window, swap the file and
        // reload on a second connection.
        std::thread::sleep(Duration::from_millis(100));
        std::fs::copy(&fx.component, &path).expect("swap the served file");
        let kinds = connect(&server).reload().expect("reload during flight");
        assert_eq!(kinds, vec![ModelKind::McpatCalibComponent]);
        in_flight.join().expect("in-flight client thread")
    });
    // The enqueued request captured the old model at enqueue time: it must
    // answer with the *old* file's bits even though the reload won the race.
    assert_matches_offline(&served, &reference);
    stop(server);
}

#[test]
fn corrupt_reload_is_refused_and_the_old_model_keeps_serving() {
    let fx = fixture();
    let path = scratch_path("corrupt");
    std::fs::copy(&fx.autopower, &path).expect("seed the served file");

    let server = start_server(vec![path.clone()], ServeOptions::fast());
    let mut client = connect(&server);
    let configs = DesignSpace::boom().sample(2, 13);
    let workloads = [Workload::Spmv];
    let reference = offline_points(&fx.autopower, &configs, &workloads);

    std::fs::write(&path, "not a model file\n").expect("corrupt the served file");
    match client.reload() {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::ReloadFailed);
            // The bugfix under test: the error names the offending file.
            assert!(message.contains("corrupt"), "path missing from: {message}");
        }
        other => panic!("expected reload-failed, got {other:?}"),
    }
    // The old model keeps serving, bit-identically.
    let served = client
        .predict(ModelKind::AutoPower, &configs, &workloads)
        .expect("predict after refused reload");
    assert_matches_offline(&served, &reference);
    stop(server);
}

#[test]
fn malformed_frames_get_error_frames_and_the_connection_survives() {
    let fx = fixture();
    let server = start_server(vec![fx.autopower.clone()], ServeOptions::fast());
    let mut stream = TcpStream::connect(server.addr()).expect("raw connect");

    // A well-framed but nonsensical payload: unknown frame type.
    let mut bad = Vec::new();
    bad.extend_from_slice(&MAGIC);
    bad.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    bad.extend_from_slice(&4242u16.to_le_bytes());
    bad.extend_from_slice(&0u32.to_le_bytes());
    stream.write_all(&bad).expect("send malformed frame");
    match read_frame(&mut stream).expect("server answers") {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected error frame, got {other:?}"),
    }

    // A wrong-version frame: also answered, also survivable.
    let mut stale = Vec::new();
    stale.extend_from_slice(&MAGIC);
    stale.extend_from_slice(&9u16.to_le_bytes());
    stale.extend_from_slice(&4u16.to_le_bytes()); // info
    stale.extend_from_slice(&0u32.to_le_bytes());
    stream.write_all(&stale).expect("send stale-version frame");
    match read_frame(&mut stream).expect("server answers") {
        Frame::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("version"), "{message}");
        }
        other => panic!("expected error frame, got {other:?}"),
    }

    // The same connection still serves a valid request afterwards.
    write_frame(&mut stream, &Frame::Info).expect("send valid frame");
    match read_frame(&mut stream).expect("server answers") {
        Frame::InfoResponse(info) => assert_eq!(info.kinds, vec![ModelKind::AutoPower]),
        other => panic!("expected info response, got {other:?}"),
    }
    stop(server);
}

#[test]
fn poisoned_queue_lock_does_not_stop_service() {
    let fx = fixture();
    let options = ServeOptions {
        workers: 2,
        ..ServeOptions::fast()
    };
    let server = start_server(vec![fx.autopower.clone()], options);
    let mut client = connect(&server);
    let configs = DesignSpace::boom().sample(3, 21);
    let workloads = [Workload::Dhrystone, Workload::Multiply];
    let reference = offline_points(&fx.autopower, &configs, &workloads);

    let before = client
        .predict(ModelKind::AutoPower, &configs, &workloads)
        .expect("predict before the poisoning");
    assert_matches_offline(&before, &reference);

    // Panic while holding the queue lock: every later lock acquisition sees
    // the mutex poisoned.  The server must recover (the queue itself is
    // valid at rest) and keep answering bit-identically, not cascade down.
    server.poison_queue_lock();
    let after = client
        .predict(ModelKind::AutoPower, &configs, &workloads)
        .expect("predict after the poisoning still succeeds");
    assert_matches_offline(&after, &reference);
    stop(server);
}

#[test]
fn model_watcher_hot_reloads_when_the_file_changes_on_disk() {
    let fx = fixture();
    let path = scratch_path("watched");
    std::fs::copy(&fx.autopower, &path).expect("seed the served file");

    let options = ServeOptions {
        watch_models: Some(Duration::from_millis(50)),
        ..ServeOptions::fast()
    };
    let server = start_server(vec![path.clone()], options);
    let mut client = connect(&server);
    let configs = DesignSpace::boom().sample(2, 31);
    let workloads = [Workload::Towers];

    let before = client
        .predict(ModelKind::AutoPower, &configs, &workloads)
        .expect("predict against the original file");
    assert_matches_offline(
        &before,
        &offline_points(&fx.autopower, &configs, &workloads),
    );

    // Swap the file on disk — no reload verb — and wait for the watcher to
    // notice the mtime change and swap the model set.
    std::fs::copy(&fx.component, &path).expect("swap the served file");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let info = client.info().expect("info while watching");
        if info.kinds == vec![ModelKind::McpatCalibComponent] {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never reloaded; still serving {:?}",
            info.kinds
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let after = client
        .predict(ModelKind::McpatCalibComponent, &configs, &workloads)
        .expect("predict against the watched-in file");
    assert_matches_offline(&after, &offline_points(&fx.component, &configs, &workloads));
    stop(server);
}

#[test]
fn draining_server_refuses_new_predicts_and_exits() {
    let fx = fixture();
    let server = start_server(vec![fx.autopower.clone()], ServeOptions::fast());
    let addr = server.addr();

    let mut client = connect(&server);
    client.shutdown().expect("shutdown acknowledged");
    server.join().expect("clean exit");

    // The listener is gone after the drain.
    assert!(
        TcpStream::connect(addr).is_err(),
        "the drained server must not accept new connections"
    );
}
