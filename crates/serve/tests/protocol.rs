//! Property tests of the wire protocol: every constructible frame
//! round-trips bit-identically, and corrupt bytes — truncated, oversized,
//! wrong-version, garbage — are rejected with the right error class, never a
//! panic or a hang.

use autopower::{ComponentBreakdown, ComponentPower, ModelKind, Prediction};
use autopower_config::{Component, ConfigId, CpuConfig, HardwareParams, Workload};
use autopower_powersim::PowerGroups;
use autopower_serve::protocol::{
    decode_frame, encode_frame, read_frame, ErrorCode, Frame, ServedPoint, ServerHealth,
    ServerInfo, WireError, MAX_PAYLOAD, PROTOCOL_VERSION,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Maps arbitrary sampled bits onto a finite, non-NaN `f64` (NaN never
/// round-trips through `PartialEq`, and the models never produce it; the
/// *bit pattern* still varies freely across sign, exponent and mantissa).
fn finite_f64(bits: u64) -> f64 {
    let f = f64::from_bits(bits);
    if f.is_finite() {
        f
    } else {
        // Clear the top exponent bit: every NaN/infinity becomes a finite
        // value while the rest of the pattern survives.
        f64::from_bits(bits & !0x4000_0000_0000_0000)
    }
}

/// Builds a config from sampled raw material, exercising both id kinds and
/// the whole accepted parameter range.
fn build_config(id_select: u32, params: &[u64]) -> CpuConfig {
    let id = if id_select.is_multiple_of(2) {
        ConfigId::new((id_select % 15 + 1) as u8)
    } else {
        ConfigId::generated(id_select % 100_000 + 1)
    };
    let mut values = [1u32; 14];
    for (slot, &raw) in values.iter_mut().zip(params) {
        *slot = (raw % (1 << 20)) as u32 + 1;
    }
    CpuConfig::new(id, HardwareParams::new(values))
}

/// Builds a prediction in one of the three resolutions from sampled bits.
fn build_prediction(variant: u8, bits: &[u64]) -> Prediction {
    match variant % 3 {
        0 => Prediction::total_only(finite_f64(bits[0])),
        1 => Prediction::grouped(PowerGroups {
            clock: finite_f64(bits[0]),
            sram: finite_f64(bits[1]),
            register: finite_f64(bits[2]),
            combinational: finite_f64(bits[3]),
        }),
        _ => {
            let entries = (0..Component::ALL.len())
                .map(|i| {
                    let total = finite_f64(bits[i % bits.len()].rotate_left(i as u32));
                    if i % 2 == 0 {
                        ComponentPower {
                            total,
                            groups: None,
                        }
                    } else {
                        ComponentPower {
                            total,
                            groups: Some(PowerGroups {
                                clock: finite_f64(bits[(i + 1) % bits.len()]),
                                sram: finite_f64(bits[(i + 2) % bits.len()]),
                                register: finite_f64(bits[(i + 3) % bits.len()]),
                                combinational: finite_f64(bits[(i + 4) % bits.len()]),
                            }),
                        }
                    }
                })
                .collect();
            Prediction::per_component(ComponentBreakdown::new(entries))
        }
    }
}

/// Round-trips one frame and checks exactness both ways: structural equality
/// and re-encoded byte equality (the latter proves the floating-point bits
/// survived untouched).
fn assert_roundtrip(frame: &Frame) -> Result<(), proptest::TestCaseError> {
    let bytes = encode_frame(frame);
    let (decoded, consumed) = match decode_frame(&bytes) {
        Ok(ok) => ok,
        Err(e) => return Err(proptest::TestCaseError::fail(format!("decode failed: {e}"))),
    };
    prop_assert_eq!(consumed, bytes.len());
    prop_assert!(&decoded == frame, "decoded frame differs structurally");
    prop_assert!(
        encode_frame(&decoded) == bytes,
        "re-encoded bytes differ — a floating-point bit was lost"
    );
    // The streaming reader agrees with the slice decoder.
    let mut cursor = std::io::Cursor::new(&bytes);
    match read_frame(&mut cursor) {
        Ok(streamed) => prop_assert!(&streamed == frame, "read_frame decoded differently"),
        Err(e) => {
            return Err(proptest::TestCaseError::fail(format!(
                "read_frame failed: {e}"
            )))
        }
    }
    Ok(())
}

proptest! {
    /// Predict requests of arbitrary shape round-trip exactly.
    #[test]
    fn predict_requests_roundtrip(
        kind_index in 0usize..4,
        n_workloads in 1usize..6,
        workload_picks in vec(0usize..10, 8),
        id_material in vec(0u32..1_000_000, 1usize..7),
        param_material in vec(0u64..u64::MAX, 14),
    ) {
        let kind = ModelKind::ALL[kind_index];
        let workloads: Vec<Workload> = workload_picks[..n_workloads]
            .iter()
            .map(|&i| Workload::ALL[i])
            .collect();
        let configs: Vec<CpuConfig> = id_material
            .iter()
            .map(|&sel| build_config(sel, &param_material))
            .collect();
        assert_roundtrip(&Frame::PredictRequest { kind, configs, workloads })?;
    }

    /// Predict responses with every prediction resolution — and arbitrary
    /// floating-point bit patterns — round-trip exactly.
    #[test]
    fn predict_responses_roundtrip(
        variants in vec(0u8..6, 1usize..9),
        bits in vec(0u64..u64::MAX, 8),
    ) {
        let points: Vec<ServedPoint> = variants
            .iter()
            .enumerate()
            .map(|(i, &variant)| ServedPoint {
                power: build_prediction(variant, &bits),
                ipc: finite_f64(bits[i % bits.len()].rotate_right(7)),
            })
            .collect();
        assert_roundtrip(&Frame::PredictResponse { points })?;
    }

    /// Control frames (info/reload/shutdown/ping and their responses) and
    /// error frames round-trip exactly.
    #[test]
    fn control_and_error_frames_roundtrip(
        code in 1u16..7,
        message_len in 0usize..200,
        n_kinds in 0usize..5,
        workers in 0u32..64,
        max_batch in 1u32..10_000,
        max_wait_us in 0u64..10_000_000,
        queued in 0u64..1_000_000,
        in_flight in 0u64..1_000_000,
    ) {
        let kinds: Vec<ModelKind> =
            (0..n_kinds).map(|i| ModelKind::ALL[i % 4]).collect();
        let message: String = "xyzzy ".chars().cycle().take(message_len).collect();
        assert_roundtrip(&Frame::Error {
            code: ErrorCode::from_code(code).expect("sampled code is valid"),
            message,
        })?;
        assert_roundtrip(&Frame::Info)?;
        assert_roundtrip(&Frame::Reload)?;
        assert_roundtrip(&Frame::Shutdown)?;
        assert_roundtrip(&Frame::ShutdownResponse)?;
        assert_roundtrip(&Frame::Ping)?;
        assert_roundtrip(&Frame::PingResponse(ServerHealth {
            queued_points: queued,
            in_flight_points: in_flight,
            workers,
            max_queue: queued.saturating_mul(2),
        }))?;
        assert_roundtrip(&Frame::ReloadResponse { kinds: kinds.clone() })?;
        assert_roundtrip(&Frame::InfoResponse(ServerInfo {
            kinds,
            workers,
            max_batch,
            max_wait_us,
        }))?;
    }

    /// A frame cut at **any** byte is rejected as truncated — never decoded,
    /// never a panic.
    #[test]
    fn truncated_frames_are_rejected(
        n_workloads in 1usize..4,
        cut_fraction in 0u64..1_000,
    ) {
        let workloads: Vec<Workload> = Workload::ALL[..n_workloads].to_vec();
        let configs = vec![build_config(3, &[42; 14])];
        let bytes = encode_frame(&Frame::PredictRequest {
            kind: ModelKind::AutoPower,
            configs,
            workloads,
        });
        let cut = (cut_fraction as usize * (bytes.len() - 1)) / 1_000;
        match decode_frame(&bytes[..cut]) {
            Err(WireError::Truncated) => {}
            other => prop_assert!(false, "cut at {cut}/{} gave {other:?}", bytes.len()),
        }
        // The streaming reader sees the same cut as a mid-frame EOF (or, at
        // zero bytes, a clean close).
        let mut cursor = std::io::Cursor::new(&bytes[..cut]);
        match read_frame(&mut cursor) {
            Err(WireError::Truncated) => prop_assert!(cut > 0),
            Err(WireError::Closed) => prop_assert_eq!(cut, 0),
            other => prop_assert!(false, "read_frame at cut {cut} gave {other:?}"),
        }
    }

    /// Arbitrary garbage never panics the decoder; at most it decodes a
    /// frame when the bytes happen to spell one (which random bytes cannot:
    /// they would need the magic).
    #[test]
    fn garbage_bytes_never_panic(garbage in vec(0u64..u64::MAX, 0usize..64)) {
        let bytes: Vec<u8> = garbage.iter().flat_map(|v| v.to_le_bytes()).collect();
        if let Ok((_, consumed)) = decode_frame(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    /// A wrong declared version is rejected as recoverable (the stream stays
    /// aligned: the payload was fully consumed) — the server answers an
    /// error frame and the connection keeps working.
    #[test]
    fn wrong_version_is_rejected_but_recoverable(version in 0u16..u16::MAX) {
        let frame = Frame::Info;
        let mut bytes = encode_frame(&frame);
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        match decode_frame(&bytes) {
            Ok((decoded, _)) => {
                prop_assert_eq!(version, PROTOCOL_VERSION);
                prop_assert_eq!(decoded, frame);
            }
            Err(WireError::BadVersion(v)) => {
                prop_assert!(version != PROTOCOL_VERSION);
                prop_assert_eq!(v, version);
                prop_assert!(!WireError::BadVersion(v).is_fatal());
            }
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }
    }
}

#[test]
fn oversized_declared_length_is_fatal() {
    let mut bytes = encode_frame(&Frame::Info);
    let oversized = MAX_PAYLOAD + 1;
    bytes[8..12].copy_from_slice(&oversized.to_le_bytes());
    match decode_frame(&bytes) {
        Err(e @ WireError::Oversized(len)) => {
            assert_eq!(len, oversized);
            assert!(
                e.is_fatal(),
                "an oversized length must close the connection"
            );
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_fatal() {
    let mut bytes = encode_frame(&Frame::Reload);
    bytes[0] = b'X';
    match decode_frame(&bytes) {
        Err(e @ WireError::BadMagic(_)) => assert!(e.is_fatal()),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn trailing_payload_bytes_are_rejected() {
    let mut bytes = encode_frame(&Frame::Shutdown);
    bytes.push(0xEE);
    let padded_len = 1u32;
    bytes[8..12].copy_from_slice(&padded_len.to_le_bytes());
    match decode_frame(&bytes) {
        Err(e @ WireError::Malformed(_)) => {
            assert!(!e.is_fatal(), "trailing bytes are a recoverable refusal")
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn unknown_frame_type_is_recoverable() {
    let mut bytes = encode_frame(&Frame::Info);
    bytes[6..8].copy_from_slice(&999u16.to_le_bytes());
    match decode_frame(&bytes) {
        Err(e @ WireError::Malformed(_)) => assert!(!e.is_fatal()),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn out_of_range_request_shapes_are_rejected() {
    // A request whose declared counts multiply past the point limit.
    let workloads: Vec<Workload> = Workload::ALL.to_vec();
    let configs: Vec<CpuConfig> = (0..500).map(|i| build_config(i, &[7; 14])).collect();
    let bytes = encode_frame(&Frame::PredictRequest {
        kind: ModelKind::AutoPower,
        configs,
        workloads,
    });
    match decode_frame(&bytes) {
        Err(WireError::Malformed(m)) => assert!(m.contains("point limit"), "{m}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}
