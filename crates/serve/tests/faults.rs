//! Chaos tests: the hardened server and retrying client under deterministic
//! fault injection, plus the crash-safe checkpoint path.
//!
//! Everything here is seeded — fault schedules ([`FaultPlan`]) and retry
//! backoff jitter are pure functions of their seeds, so a failing case
//! replays exactly from its printed inputs.

use autopower::{
    encode_checkpoint, load_checkpoint_salvaged, load_model, save_checkpoint, save_checkpoint_with,
    ChunkCursor, ModelKind, StreamSpec, SweepAggregator, SweepCheckpoint, SweepEngine, SweepPoint,
    SweepSpec,
};
use autopower_config::{boom_configs, ConfigId, CpuConfig, DesignSpace, Workload};
use autopower_serve::client::{Client, ClientError, RetryPolicy};
use autopower_serve::faults::{io_fault_at, panic_at, torn_write_at, Fault, FaultPlan, MAX_STALL};
use autopower_serve::protocol::{ErrorCode, ServedPoint};
use autopower_serve::server::{ServeOptions, Server};
use proptest::prelude::*;
use std::io::Read as _;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

/// Trains and saves the fixture model once per test process.
fn fixture_model() -> &'static PathBuf {
    static FIXTURE: OnceLock<PathBuf> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("autopower-faults-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        let cfgs = boom_configs();
        let corpus = autopower::Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &autopower::CorpusSpec::fast(),
        );
        let path = dir.join("autopower.apm");
        let model = ModelKind::AutoPower
            .train(&corpus, &[ConfigId::new(1), ConfigId::new(15)])
            .expect("train fixture model");
        autopower::save_model(model.as_ref(), &path).expect("save fixture model");
        path
    })
}

/// The offline reference the served answers must match bit for bit.
fn offline_points(path: &Path, configs: &[CpuConfig], workloads: &[Workload]) -> Vec<SweepPoint> {
    let model = load_model(path).expect("load reference model");
    SweepEngine::new(model.as_ref(), SweepSpec::fast().threads(1)).run(configs, workloads)
}

fn assert_matches_offline(served: &[ServedPoint], reference: &[SweepPoint]) {
    assert_eq!(served.len(), reference.len());
    for (got, want) in served.iter().zip(reference) {
        assert_eq!(got.power, want.power, "prediction diverged under faults");
        assert_eq!(got.ipc.to_bits(), want.ipc.to_bits(), "ipc diverged");
    }
}

/// Drains a fault-injected server: shutdown may itself hit injected resets,
/// so keep asking (each attempt reconnects) until the drain is confirmed.
fn stop_faulty(server: Server) {
    for _ in 0..200 {
        match Client::connect(server.addr()).and_then(|mut c| c.shutdown()) {
            Ok(()) => break,
            // Connect refused after the listener closed means a previous
            // attempt's request got through even if its ack was lost.
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    server.join().expect("faulty server drains and exits");
}

proptest! {
    /// The three fault schedules are pure functions of (seed, counter): a
    /// fresh plan replays the free-function schedule exactly, torn writes
    /// always cut a strict prefix, and stalls stay bounded.
    #[test]
    fn fault_schedules_are_deterministic(seed in 0u64..1_000_000) {
        let a = FaultPlan::new(seed);
        let b = FaultPlan::new(seed);
        for op in 0..256 {
            let expected = io_fault_at(seed, op);
            prop_assert_eq!(a.next_io_fault(), expected);
            prop_assert_eq!(b.next_io_fault(), expected);
            if let Some(Fault::Stall(d)) = expected {
                prop_assert!(d <= MAX_STALL);
            }
            prop_assert_eq!(a.next_worker_panic(), panic_at(seed, op));
            let len = 1 + (op as usize % 257);
            let cut = torn_write_at(seed, op, len);
            prop_assert_eq!(a.next_torn_write(len), cut);
            if let Some(cut) = cut {
                prop_assert!(cut < len, "torn write must be a strict prefix");
            }
        }
    }

    /// End to end under an armed fault plan: short reads/writes, stalls,
    /// resets and worker panics notwithstanding, a retrying client's answer
    /// is bit-identical to the offline sweep on the same model file.
    #[test]
    fn retrying_client_is_bit_identical_under_faults(
        fault_seed in 1u64..1_000,
        n_configs in 1usize..4,
        n_workloads in 1usize..3,
        sample_seed in 0u64..100,
    ) {
        let path = fixture_model();
        let options = ServeOptions {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            fault_seed: Some(fault_seed),
            ..ServeOptions::fast()
        };
        let server = Server::start("127.0.0.1:0", vec![path.clone()], options)
            .expect("faulty server starts");
        let policy = RetryPolicy {
            attempts: 50,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            seed: fault_seed,
            timeout: Duration::from_secs(5),
        };
        let mut client = Client::connect_with(server.addr(), policy).expect("client connects");
        let configs = DesignSpace::boom().sample(n_configs, sample_seed);
        let workloads: Vec<Workload> = Workload::ALL[..n_workloads].to_vec();
        let served = client
            .predict(ModelKind::AutoPower, &configs, &workloads)
            .expect("retrying client converges through the fault schedule");
        assert_matches_offline(&served, &offline_points(path, &configs, &workloads));
        stop_faulty(server);
    }
}

#[test]
fn overload_sheds_with_a_typed_answer_and_ping_reports_the_pressure() {
    let path = fixture_model();
    // One worker, a huge merge window and a 4-point queue bound: the first
    // request parks in the queue, so the second must be shed.
    let options = ServeOptions {
        workers: 1,
        max_batch: 1_000_000,
        max_wait: Duration::from_millis(600),
        max_queue: 4,
        ..ServeOptions::fast()
    };
    let server = Server::start("127.0.0.1:0", vec![path.clone()], options).expect("server starts");
    let configs = DesignSpace::boom().sample(2, 3);
    let workloads = [Workload::Dhrystone, Workload::Qsort];
    let reference = offline_points(path, &configs, &workloads);

    let admitted = std::thread::scope(|scope| {
        let parked = {
            let configs = &configs;
            let workloads = &workloads;
            let server = &server;
            scope.spawn(move || {
                Client::connect(server.addr())
                    .expect("first client connects")
                    .predict(ModelKind::AutoPower, configs, workloads)
                    .expect("the admitted request completes")
            })
        };
        // Let the 4-point request reach the queue, then watch it through
        // ping and push one more point over the bound.
        std::thread::sleep(Duration::from_millis(150));
        let health = Client::connect(server.addr())
            .expect("ping client connects")
            .ping()
            .expect("ping answers under load");
        assert_eq!(health.queued_points, 4);
        assert_eq!(health.max_queue, 4);
        assert_eq!(health.workers, 1);

        let mut shed_client = Client::connect(server.addr()).expect("second client connects");
        match shed_client.predict(ModelKind::AutoPower, &configs[..1], &workloads[..1]) {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::Overloaded);
                assert!(message.contains("queue full"), "{message}");
            }
            other => panic!("expected overload shed, got {other:?}"),
        }
        // Answers-and-closes: the shed connection is gone server-side; the
        // client transparently re-dials once the pressure clears.
        parked.join().expect("admitted client thread")
    });
    assert_matches_offline(&admitted, &reference);

    let mut client = Client::connect(server.addr()).expect("post-shed connect");
    let served = client
        .predict(ModelKind::AutoPower, &configs, &workloads)
        .expect("server serves again after the queue drains");
    assert_matches_offline(&served, &reference);
    // The worker decrements in-flight just after sending replies, so give
    // the counters a moment to settle before pinning them to zero.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let health = client.ping().expect("ping when idle");
        if health.queued_points == 0 && health.in_flight_points == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "queue/in-flight never drained: {health:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    stop_faulty(server);
}

#[test]
fn idle_and_mid_frame_timeouts_drop_stuck_connections() {
    let path = fixture_model();
    let options = ServeOptions {
        workers: 1,
        idle_timeout: Duration::from_millis(150),
        io_timeout: Duration::from_millis(150),
        ..ServeOptions::fast()
    };
    let server = Server::start("127.0.0.1:0", vec![path.clone()], options).expect("server starts");

    // A connection that never sends a frame is dropped at the idle deadline.
    let mut silent = TcpStream::connect(server.addr()).expect("silent connect");
    silent
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(
        silent
            .read(&mut buf)
            .expect("server closes the idle socket"),
        0,
        "idle connection should see EOF"
    );

    // A half-sent frame (slowloris) is dropped at the I/O deadline, not held
    // until the idle deadline times the whole connection out.
    let mut stuck = TcpStream::connect(server.addr()).expect("slow connect");
    stuck
        .write_all(b"APSV")
        .expect("send a frame prefix, then stall");
    stuck
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert_eq!(
        stuck
            .read(&mut buf)
            .expect("server closes the stuck socket"),
        0,
        "mid-frame stall should see EOF"
    );

    // A retrying client shrugs off the idle drop: the next request re-dials.
    let policy = RetryPolicy {
        attempts: 3,
        timeout: Duration::from_secs(5),
        ..RetryPolicy::none()
    };
    let mut client = Client::connect_with(server.addr(), policy).expect("client connects");
    client.info().expect("first info");
    std::thread::sleep(Duration::from_millis(400)); // outlive the idle deadline
    client.info().expect("info after idle drop reconnects");
    stop_faulty(server);
}

#[test]
fn torn_checkpoint_writes_always_leave_a_loadable_durable_state() {
    let plan = FaultPlan::new(0xC0FF_EE00);
    let dir = std::env::temp_dir().join(format!("autopower-faults-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let path = dir.join("chaos.ckpt");
    let checkpoint_at = |offset: u64| SweepCheckpoint {
        fingerprint: 0xFEED_FACE,
        cursor: ChunkCursor { offset },
        aggregator: SweepAggregator::new(1, &StreamSpec::default()),
        audit: None,
    };

    let (mut torn, mut clean) = (0u32, 0u32);
    let mut last_durable: Option<u64> = None;
    for round in 1..=64 {
        let checkpoint = checkpoint_at(round);
        let len = encode_checkpoint(&checkpoint).len();
        match plan.next_torn_write(len) {
            // The schedule says this write dies after `cut` bytes: the
            // writer hook mirrors a process killed mid-write (partial temp
            // file, no rename).
            Some(cut) => {
                torn += 1;
                let err = save_checkpoint_with(&checkpoint, &path, |tmp, text| {
                    std::fs::write(tmp, &text[..cut])?;
                    Err(std::io::Error::other("injected torn write"))
                })
                .expect_err("a torn write must fail the save");
                assert!(err.to_string().contains("injected torn write"));
            }
            None => {
                clean += 1;
                save_checkpoint(&checkpoint, &path).expect("clean save");
                last_durable = Some(round);
            }
        }
        // After every round, resume sees exactly the last durable cursor —
        // or refuses loudly when nothing was ever durably written.
        match (
            last_durable,
            load_checkpoint_salvaged(&path, Some(0xFEED_FACE)),
        ) {
            (Some(durable), Ok((loaded, _))) => assert_eq!(loaded.cursor.offset, durable),
            (None, Err(e)) => assert!(e.to_string().contains("chaos.ckpt")),
            (expected, got) => panic!("round {round}: expected {expected:?}, got {got:?}"),
        }
    }
    assert!(
        torn > 0 && clean > 0,
        "the schedule must exercise both torn ({torn}) and clean ({clean}) writes"
    );
    std::fs::remove_dir_all(&dir).ok();
}
