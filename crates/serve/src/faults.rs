//! Deterministic fault injection: a seeded schedule of I/O mishaps.
//!
//! Robustness claims are only testable if the faults are reproducible, so a
//! [`FaultPlan`] is a *pure function* of its seed and an operation counter —
//! the same spirit as `DesignSpace::sample`: same seed, same byte-identical
//! schedule, forever.  The plan is consulted by
//!
//! * [`FaultStream`], an I/O shim the server wraps around connection
//!   [`TcpStream`]s when a plan is armed (`--fault-seed` or the
//!   `ServeOptions::fault_seed` knob): short reads/writes, bounded mid-frame
//!   stalls, connection resets;
//! * the scoring workers, which consult [`FaultPlan::next_worker_panic`] to
//!   inject a panic into the `catch_unwind`-guarded scoring path;
//! * torn-write tests of the checkpoint path, which use
//!   [`FaultPlan::next_torn_write`] with `save_checkpoint_with`'s injectable
//!   writer to cut a checkpoint write at a deterministic byte offset.
//!
//! Production servers never construct a plan: the connection loop carries a
//! plain [`TcpStream`] arm and the workers skip the (absent) plan entirely,
//! so the happy path pays nothing for the machinery being compiled in.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Longest injected stall; bounded so fault runs terminate and stay under
/// any sane `--io-timeout-ms`.
pub const MAX_STALL: Duration = Duration::from_millis(10);

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Deliver at most one byte on this read (exercises `read_exactly`
    /// loops and mid-frame resumption).
    ShortRead,
    /// Accept at most one byte on this write (exercises partial-write
    /// handling in `write_all` paths).
    ShortWrite,
    /// Sleep this long before the operation (at most [`MAX_STALL`]).
    Stall(Duration),
    /// Fail the operation with `ConnectionReset`.
    Reset,
}

/// splitmix64 — the workspace's standard cheap bit mixer.  Shared with the
/// client's jittered backoff so retry schedules are seeded the same way
/// fault schedules are.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain separators so the three decision streams (I/O, worker panics,
/// torn writes) are independent functions of the same seed.
const IO_SALT: u64 = 0x10;
const PANIC_SALT: u64 = 0x5A1C;
const TEAR_SALT: u64 = 0x7EA4;

/// The pure I/O-fault schedule: what (if anything) goes wrong on operation
/// `op` of a plan seeded with `seed`.  [`FaultPlan::next_io_fault`] is this
/// function applied to an incrementing counter; exposing it keeps the
/// determinism contract directly testable.
pub fn io_fault_at(seed: u64, op: u64) -> Option<Fault> {
    let h = mix(seed ^ mix(op.wrapping_add(IO_SALT)));
    match h % 32 {
        0 => Some(Fault::Reset),
        1 | 2 => Some(Fault::Stall(Duration::from_millis(1 + (h >> 8) % 10))),
        3..=6 => Some(Fault::ShortRead),
        7..=10 => Some(Fault::ShortWrite),
        _ => None,
    }
}

/// The pure worker-panic schedule: whether scoring batch `batch` of a plan
/// seeded with `seed` panics.
pub fn panic_at(seed: u64, batch: u64) -> bool {
    mix(seed ^ mix(batch.wrapping_add(PANIC_SALT))).is_multiple_of(16)
}

/// The pure torn-write schedule: `Some(cut)` when checkpoint write `write`
/// of a plan seeded with `seed` should be cut after `cut` bytes of a
/// `len`-byte payload (always a strict prefix), `None` for a clean write.
pub fn torn_write_at(seed: u64, write: u64, len: usize) -> Option<usize> {
    let h = mix(seed ^ mix(write.wrapping_add(TEAR_SALT)));
    if len > 0 && h.is_multiple_of(8) {
        Some(((h >> 8) % len as u64) as usize)
    } else {
        None
    }
}

/// A seeded, deterministic fault schedule with per-domain operation
/// counters.  Cloning the `Arc` shares the counters: every consulting site
/// (connections, workers) draws from one global schedule, so a run is fully
/// described by its seed.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    io_ops: AtomicU64,
    batches: AtomicU64,
    writes: AtomicU64,
}

impl FaultPlan {
    /// Creates the schedule for `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            io_ops: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// The seed this plan replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws the next I/O fault decision (advances the I/O counter).
    pub fn next_io_fault(&self) -> Option<Fault> {
        io_fault_at(self.seed, self.io_ops.fetch_add(1, Ordering::Relaxed))
    }

    /// Draws the next worker-panic decision (advances the batch counter).
    pub fn next_worker_panic(&self) -> bool {
        panic_at(self.seed, self.batches.fetch_add(1, Ordering::Relaxed))
    }

    /// Draws the next torn-write decision for a `len`-byte payload
    /// (advances the write counter).
    pub fn next_torn_write(&self, len: usize) -> Option<usize> {
        torn_write_at(self.seed, self.writes.fetch_add(1, Ordering::Relaxed), len)
    }
}

/// A [`TcpStream`] wrapper that consults a [`FaultPlan`] before every read
/// and write.  Fault kinds that do not apply to the operation at hand (a
/// `ShortWrite` drawn on a read, or vice versa) inject nothing — the
/// schedule is one stream of decisions, consumed in operation order.
#[derive(Debug)]
pub struct FaultStream {
    inner: TcpStream,
    plan: Arc<FaultPlan>,
}

impl FaultStream {
    /// Wraps a connection stream in the plan's fault schedule.
    pub fn new(inner: TcpStream, plan: Arc<FaultPlan>) -> Self {
        Self { inner, plan }
    }

    /// The wrapped stream (for socket options and `peek`, which stay
    /// fault-free: the idle poll is not an interesting place to fail).
    pub fn get_ref(&self) -> &TcpStream {
        &self.inner
    }
}

fn reset() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
}

impl Read for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.plan.next_io_fault() {
            Some(Fault::Reset) => Err(reset()),
            Some(Fault::Stall(d)) => {
                std::thread::sleep(d.min(MAX_STALL));
                self.inner.read(buf)
            }
            Some(Fault::ShortRead) if !buf.is_empty() => self.inner.read(&mut buf[..1]),
            _ => self.inner.read(buf),
        }
    }
}

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.plan.next_io_fault() {
            Some(Fault::Reset) => Err(reset()),
            Some(Fault::Stall(d)) => {
                std::thread::sleep(d.min(MAX_STALL));
                self.inner.write(buf)
            }
            Some(Fault::ShortWrite) if !buf.is_empty() => self.inner.write(&buf[..1]),
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_functions_of_seed_and_counter() {
        let a = FaultPlan::new(99);
        let b = FaultPlan::new(99);
        for op in 0..512 {
            assert_eq!(a.next_io_fault(), io_fault_at(99, op));
            assert_eq!(b.next_io_fault(), io_fault_at(99, op));
        }
    }

    #[test]
    fn every_fault_kind_appears_and_stalls_are_bounded() {
        let (mut reset, mut stall, mut short_r, mut short_w, mut clean) = (0, 0, 0, 0, 0);
        for op in 0..4096 {
            match io_fault_at(7, op) {
                Some(Fault::Reset) => reset += 1,
                Some(Fault::Stall(d)) => {
                    assert!(d <= MAX_STALL);
                    stall += 1;
                }
                Some(Fault::ShortRead) => short_r += 1,
                Some(Fault::ShortWrite) => short_w += 1,
                None => clean += 1,
            }
        }
        assert!(reset > 0 && stall > 0 && short_r > 0 && short_w > 0);
        // The happy path must dominate or nothing ever completes.
        assert!(clean > reset + stall + short_r + short_w);
    }

    #[test]
    fn torn_writes_always_cut_a_strict_prefix() {
        let mut torn = 0;
        for write in 0..1024 {
            if let Some(cut) = torn_write_at(3, write, 1000) {
                assert!(cut < 1000);
                torn += 1;
            }
        }
        assert!(torn > 0);
        assert_eq!(torn_write_at(3, 0, 0), None, "empty payloads cannot tear");
    }
}
