//! The resident server: accept loop, request-batching queue, scoring workers.
//!
//! # Thread shape (no async runtime — the workspace is offline)
//!
//! ```text
//! accept thread ──► one thread per connection ──► queue (Mutex + Condvar)
//!                                                    │
//!                                              batcher thread
//!                                         (merge compatible jobs,
//!                                          max-batch / max-wait knob)
//!                                                    │
//!                                            worker pool (N threads,
//!                                      each owns one long-lived scratch)
//! ```
//!
//! Connection threads decode frames and enqueue jobs; the batcher merges
//! jobs that score under the same model and workload list into one batch
//! (sound because batch scoring is pinned bit-identical to per-point
//! scoring); workers run each batch through
//! [`SweepEngine::run_with`] with a per-worker [`EngineScratch`] that lives
//! as long as the worker — the same reuse discipline as `parallel_map_with`
//! in the sweep, so the heavyweight buffers are materialized once per
//! worker, not once per request.
//!
//! # Hot reload and drain
//!
//! The loaded models live behind `Mutex<Arc<ModelSet>>`.  A predict request
//! captures its `Arc` at enqueue time, so a concurrent reload never changes
//! an in-flight request: reload loads every path fresh (all-or-nothing — a
//! corrupt file refuses the whole reload and the old set keeps serving),
//! then swaps the `Arc`.  Shutdown acknowledges, stops accepting, lets every
//! queued job finish, joins every thread, and returns — never a panic, never
//! a hang.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Frame, ServedPoint, ServerInfo, WireError,
    MAX_ERROR_MESSAGE,
};
use autopower::{
    load_model, AutoPowerError, EngineScratch, ModelKind, PowerModel, SweepEngine, SweepSpec,
};
use autopower_config::{CpuConfig, Workload};
use autopower_perfsim::SimConfig;
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle connection thread re-checks the drain flag.
const IDLE_TICK: Duration = Duration::from_millis(50);

/// How long a started frame may take to arrive in full before the
/// connection is declared dead (guards drain against half-frame stalls).
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Serving knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOptions {
    /// Scoring worker threads: `0` (the default) uses one per available
    /// core.  Predictions are bit-identical for every value.
    pub workers: usize,
    /// The latency/throughput knob, throughput side: once this many points
    /// are queued the batcher dispatches without waiting out the window.
    /// Larger batches amortize forest-major scoring; bit-identical either
    /// way.
    pub max_batch: usize,
    /// The latency/throughput knob, latency side: how long the batcher holds
    /// the first queued job to let mergeable jobs arrive.  Zero (the
    /// default) dispatches immediately.
    pub max_wait: Duration,
    /// Performance-simulation settings every request is scored under — must
    /// match the offline run being compared against.
    pub sim: SimConfig,
}

impl ServeOptions {
    /// Paper-scale simulation settings.
    pub fn paper() -> Self {
        Self {
            workers: 0,
            max_batch: 256,
            max_wait: Duration::ZERO,
            sim: SimConfig::paper(),
        }
    }

    /// Small, fast settings for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            sim: SimConfig::fast(),
            ..Self::paper()
        }
    }

    /// The worker count the server will actually use.
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        }
    }

    /// The sweep settings every scoring batch runs under (serial: the worker
    /// pool is the parallelism).
    fn sweep_spec(&self) -> SweepSpec {
        SweepSpec {
            sim: self.sim,
            threads: 1,
            chunk_configs: 64,
            use_sim_cache: true,
        }
    }
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self::paper()
    }
}

/// Everything that can go wrong starting or running a server.
#[derive(Debug)]
pub enum ServeError {
    /// Socket setup or accept-loop failure.
    Io(String),
    /// A model file failed to load (the message names the path).
    Model(AutoPowerError),
    /// Invalid configuration (no model files, duplicate kinds).
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "server I/O failed: {m}"),
            ServeError::Model(e) => write!(f, "model load failed: {e}"),
            ServeError::Config(m) => write!(f, "invalid server configuration: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<AutoPowerError> for ServeError {
    fn from(e: AutoPowerError) -> Self {
        ServeError::Model(e)
    }
}

/// The set of models currently serving: one per registry kind, each shared
/// behind an `Arc` so in-flight work survives a reload swap.
struct ModelSet {
    entries: Vec<(ModelKind, Arc<dyn PowerModel>)>,
}

impl ModelSet {
    /// Loads every path; refuses an empty list and duplicate kinds.
    fn load(paths: &[PathBuf]) -> Result<Self, ServeError> {
        if paths.is_empty() {
            return Err(ServeError::Config(
                "at least one --model file is required".to_owned(),
            ));
        }
        let mut entries: Vec<(ModelKind, Arc<dyn PowerModel>)> = Vec::with_capacity(paths.len());
        for path in paths {
            let model = load_model(path)?;
            let kind = model.kind();
            if entries.iter().any(|(k, _)| *k == kind) {
                return Err(ServeError::Config(format!(
                    "duplicate model kind '{kind}' (from {})",
                    path.display()
                )));
            }
            entries.push((kind, Arc::from(model)));
        }
        Ok(Self { entries })
    }

    fn get(&self, kind: ModelKind) -> Option<Arc<dyn PowerModel>> {
        self.entries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| Arc::clone(m))
    }

    fn kinds(&self) -> Vec<ModelKind> {
        self.entries.iter().map(|(k, _)| *k).collect()
    }
}

/// Where a scored (or failed) job is answered to.
type Reply = mpsc::Sender<Result<Vec<ServedPoint>, String>>;

/// One enqueued predict request.  The model `Arc` is captured here, at
/// enqueue time, so a reload between enqueue and scoring cannot change what
/// the request is answered with.
struct Job {
    model: Arc<dyn PowerModel>,
    configs: Vec<CpuConfig>,
    workloads: Vec<Workload>,
    reply: Reply,
}

impl Job {
    fn points(&self) -> usize {
        self.configs.len() * self.workloads.len()
    }
}

/// Jobs merged into one scoring batch: same model (by pointer), same
/// workload list, configurations concatenated in arrival order.
struct BatchGroup {
    model: Arc<dyn PowerModel>,
    workloads: Vec<Workload>,
    configs: Vec<CpuConfig>,
    /// `(reply channel, config count)` per merged job, in merge order.
    segments: Vec<(Reply, usize)>,
}

/// The connection threads' job queue.
struct Queue {
    jobs: VecDeque<Job>,
    /// Cleared during drain, once no connection thread can enqueue anymore.
    open: bool,
}

/// Shared server state.
struct ServerState {
    options: ServeOptions,
    addr: SocketAddr,
    /// Model files given at startup; reload re-reads exactly these.
    paths: Vec<PathBuf>,
    models: Mutex<Arc<ModelSet>>,
    queue: Mutex<Queue>,
    queue_cv: Condvar,
    draining: AtomicBool,
}

impl ServerState {
    /// Snapshot of the current model set (cheap: one `Arc` clone).
    fn model_set(&self) -> Arc<ModelSet> {
        Arc::clone(&self.models.lock().expect("models lock poisoned"))
    }

    fn info(&self) -> ServerInfo {
        ServerInfo {
            kinds: self.model_set().kinds(),
            workers: self.options.effective_workers() as u32,
            max_batch: self.options.max_batch as u32,
            max_wait_us: self.options.max_wait.as_micros() as u64,
        }
    }

    /// Re-loads every startup path and swaps the set — all-or-nothing.  The
    /// load happens outside the swap lock so serving is never blocked on
    /// disk I/O.
    fn reload(&self) -> Result<Vec<ModelKind>, ServeError> {
        let fresh = ModelSet::load(&self.paths)?;
        let kinds = fresh.kinds();
        *self.models.lock().expect("models lock poisoned") = Arc::new(fresh);
        Ok(kinds)
    }

    fn enqueue(&self, job: Job) {
        let mut queue = self.queue.lock().expect("queue lock poisoned");
        queue.jobs.push_back(job);
        drop(queue);
        self.queue_cv.notify_all();
    }

    /// Starts the drain: refuse new work, wake every sleeper, unblock the
    /// accept loop with a self-connection.
    fn start_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        // The accept loop sits in a blocking accept(); a throwaway loopback
        // connection wakes it so it can observe the flag and stop.
        drop(TcpStream::connect(self.addr));
    }
}

/// A running prediction server.
///
/// Dropping the handle does **not** stop the server; send a
/// [`Frame::Shutdown`] (e.g. via
/// [`Client::shutdown`](crate::client::Client::shutdown)) and then
/// [`Server::join`] it.
pub struct Server {
    addr: SocketAddr,
    run: JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port), cold-starts every
    /// model file via [`load_model`] — no retraining — and spawns the accept
    /// loop, batcher and worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] when a file fails to load (the message names
    /// the path), [`ServeError::Config`] for an empty path list or duplicate
    /// kinds, [`ServeError::Io`] when the socket cannot be bound.
    pub fn start(
        addr: impl ToSocketAddrs,
        model_paths: Vec<PathBuf>,
        options: ServeOptions,
    ) -> Result<Server, ServeError> {
        let models = ModelSet::load(&model_paths)?;
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::Io(format!("binding: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("resolving bound address: {e}")))?;
        let state = Arc::new(ServerState {
            options,
            addr,
            paths: model_paths,
            models: Mutex::new(Arc::new(models)),
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                open: true,
            }),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
        });

        let (group_tx, group_rx) = mpsc::channel::<BatchGroup>();
        let group_rx = Arc::new(Mutex::new(group_rx));
        let workers: Vec<JoinHandle<()>> = (0..options.effective_workers())
            .map(|_| {
                let rx = Arc::clone(&group_rx);
                let spec = options.sweep_spec();
                std::thread::spawn(move || worker_loop(&rx, spec))
            })
            .collect();
        let batcher = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || batcher_loop(&state, &group_tx))
        };

        let run = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(&listener, &state, batcher, workers))
        };
        Ok(Server { addr, run })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to drain and exit (triggered by a
    /// [`Frame::Shutdown`] request).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the server thread panicked.
    pub fn join(self) -> Result<(), ServeError> {
        self.run
            .join()
            .map_err(|_| ServeError::Io("server thread panicked".to_owned()))
    }
}

/// The accept loop; on drain it joins every thread before returning, so
/// [`Server::join`] returning means the process holds no server threads.
fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    batcher: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.draining.load(Ordering::SeqCst) {
                    // The drain wake-up (or a late client); refuse and stop.
                    drop(stream);
                    break;
                }
                // Reap finished connection threads so a long-lived server
                // does not accumulate handles.
                connections.retain(|h| !h.is_finished());
                let state = Arc::clone(state);
                connections.push(std::thread::spawn(move || {
                    handle_connection(&state, stream)
                }));
            }
            Err(_) => {
                if state.draining.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (e.g. fd exhaustion); back off.
                std::thread::sleep(IDLE_TICK);
            }
        }
    }
    // Drain: connection threads first (each finishes at most one in-flight
    // request), then close the queue so the batcher flushes what is left and
    // exits, dropping the group channel — which ends the workers.
    for h in connections {
        let _ = h.join();
    }
    {
        let mut queue = state.queue.lock().expect("queue lock poisoned");
        queue.open = false;
    }
    state.queue_cv.notify_all();
    let _ = batcher.join();
    for h in workers {
        let _ = h.join();
    }
}

/// Merges queued jobs into batch groups and dispatches them to the workers,
/// holding the first job up to [`ServeOptions::max_wait`] (or until
/// [`ServeOptions::max_batch`] points are queued) so concurrent requests can
/// ride one scoring batch.
fn batcher_loop(state: &ServerState, groups: &mpsc::Sender<BatchGroup>) {
    loop {
        let mut queue = state.queue.lock().expect("queue lock poisoned");
        while queue.jobs.is_empty() && queue.open {
            queue = state.queue_cv.wait(queue).expect("queue lock poisoned");
        }
        if queue.jobs.is_empty() && !queue.open {
            return;
        }
        // The batching window: wait for more jobs until the deadline or the
        // batch target, whichever comes first.  `max_wait == 0` skips the
        // window entirely — pure latency mode.
        let max_wait = state.options.max_wait;
        if !max_wait.is_zero() {
            let deadline = Instant::now() + max_wait;
            loop {
                let queued: usize = queue.jobs.iter().map(Job::points).sum();
                if queued >= state.options.max_batch || !queue.open {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = state
                    .queue_cv
                    .wait_timeout(queue, deadline - now)
                    .expect("queue lock poisoned");
                queue = guard;
            }
        }
        let jobs: Vec<Job> = queue.jobs.drain(..).collect();
        drop(queue);

        for group in merge_jobs(jobs, state.options.max_batch) {
            if groups.send(group).is_err() {
                // Workers are gone (shutdown path); nothing left to serve.
                return;
            }
        }
    }
}

/// Groups jobs by `(model pointer, workload list)`, concatenating their
/// configurations in arrival order.  A group stops absorbing jobs once it
/// reaches `max_batch` points (a single oversized job still forms one
/// group — the engine chunks internally).
fn merge_jobs(jobs: Vec<Job>, max_batch: usize) -> Vec<BatchGroup> {
    let mut groups: Vec<BatchGroup> = Vec::new();
    for job in jobs {
        let merged = groups.iter_mut().find(|g| {
            Arc::ptr_eq(&g.model, &job.model)
                && g.workloads == job.workloads
                && g.configs.len() * g.workloads.len() < max_batch
        });
        match merged {
            Some(group) => {
                group.configs.extend_from_slice(&job.configs);
                group.segments.push((job.reply, job.configs.len()));
            }
            None => groups.push(BatchGroup {
                model: job.model,
                workloads: job.workloads,
                segments: vec![(job.reply, job.configs.len())],
                configs: job.configs,
            }),
        }
    }
    groups
}

/// One scoring worker: owns a long-lived [`EngineScratch`] and scores batch
/// groups until the channel closes.
fn worker_loop(groups: &Mutex<mpsc::Receiver<BatchGroup>>, spec: SweepSpec) {
    let mut scratch = EngineScratch::new();
    let mut points = Vec::new();
    loop {
        let group = {
            let rx = groups.lock().expect("group channel lock poisoned");
            rx.recv()
        };
        let Ok(group) = group else {
            return; // channel closed: drain complete
        };
        // A panic while scoring (e.g. a degenerate configuration that slipped
        // through wire validation) must not kill the worker: answer every
        // merged job with a typed internal error and keep serving.
        let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let engine = SweepEngine::new(group.model.as_ref(), spec);
            engine.run_with(&group.configs, &group.workloads, &mut scratch, &mut points);
        }));
        match scored {
            Ok(()) => {
                let mut offset = 0;
                for (reply, n_configs) in &group.segments {
                    let n = n_configs * group.workloads.len();
                    let served = points[offset..offset + n]
                        .iter()
                        .map(|p| ServedPoint {
                            power: p.power.clone(),
                            ipc: p.ipc,
                        })
                        .collect();
                    offset += n;
                    let _ = reply.send(Ok(served));
                }
            }
            Err(_) => {
                // The scratch may be mid-update; rebuild it.
                scratch = EngineScratch::new();
                points = Vec::new();
                for (reply, _) in &group.segments {
                    let _ = reply.send(Err("scoring panicked on this batch".to_owned()));
                }
            }
        }
    }
}

/// Builds an error frame, truncating the message to the wire limit on a
/// character boundary.
fn error_frame(code: ErrorCode, message: &str) -> Frame {
    let mut message = message.to_owned();
    while message.len() > MAX_ERROR_MESSAGE {
        message.pop();
    }
    Frame::Error { code, message }
}

/// Whether an I/O error is a read-timeout tick rather than a dead stream.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// One connection: read frames, answer frames, until close or drain.
fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut probe = [0u8; 1];
    loop {
        if state.draining.load(Ordering::SeqCst) {
            return;
        }
        // Idle wait: peek (consuming nothing) under a short timeout so the
        // drain flag is re-checked even on a silent connection.
        if stream.set_read_timeout(Some(IDLE_TICK)).is_err() {
            return;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e) if is_timeout(&e) => continue,
            Err(_) => return,
        }
        // A frame has started; give it a generous-but-bounded window so a
        // stalled half-frame cannot hang the drain forever.
        if stream.set_read_timeout(Some(FRAME_TIMEOUT)).is_err() {
            return;
        }
        match read_frame(&mut stream) {
            Ok(frame) => {
                if !answer_frame(state, &mut stream, frame) {
                    return;
                }
            }
            Err(WireError::Closed) => return,
            Err(e) if e.is_fatal() => {
                // Framing can no longer be trusted; best-effort error frame,
                // then close.
                let _ = write_frame(
                    &mut stream,
                    &error_frame(ErrorCode::BadFrame, &e.to_string()),
                );
                return;
            }
            Err(e) => {
                // Recoverable (wrong version / malformed payload): the
                // stream is still frame-aligned — answer and keep going.
                if write_frame(
                    &mut stream,
                    &error_frame(ErrorCode::BadFrame, &e.to_string()),
                )
                .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// Handles one decoded frame; returns `false` when the connection should
/// close (write failure or shutdown).
fn answer_frame(state: &Arc<ServerState>, stream: &mut TcpStream, frame: Frame) -> bool {
    let response = match frame {
        Frame::PredictRequest {
            kind,
            configs,
            workloads,
        } => predict(state, kind, configs, workloads),
        Frame::Info => Frame::InfoResponse(state.info()),
        Frame::Reload => match state.reload() {
            Ok(kinds) => Frame::ReloadResponse { kinds },
            Err(e) => error_frame(ErrorCode::ReloadFailed, &e.to_string()),
        },
        Frame::Shutdown => {
            let _ = write_frame(stream, &Frame::ShutdownResponse);
            state.start_drain();
            return false;
        }
        // A server never expects response-type frames; refuse but keep the
        // connection usable.
        Frame::PredictResponse { .. }
        | Frame::InfoResponse(_)
        | Frame::ReloadResponse { .. }
        | Frame::ShutdownResponse
        | Frame::Error { .. } => error_frame(
            ErrorCode::BadFrame,
            "unexpected response-type frame from client",
        ),
    };
    write_frame(stream, &response).is_ok()
}

/// Scores one predict request through the batching queue.
fn predict(
    state: &Arc<ServerState>,
    kind: ModelKind,
    configs: Vec<CpuConfig>,
    workloads: Vec<Workload>,
) -> Frame {
    if state.draining.load(Ordering::SeqCst) {
        return error_frame(ErrorCode::Draining, "server is draining");
    }
    let Some(model) = state.model_set().get(kind) else {
        let loaded = state
            .model_set()
            .kinds()
            .iter()
            .map(|k| k.registry_name().to_owned())
            .collect::<Vec<_>>()
            .join(", ");
        return error_frame(
            ErrorCode::UnknownModel,
            &format!("model '{kind}' is not loaded (serving: {loaded})"),
        );
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    state.enqueue(Job {
        model,
        configs,
        workloads,
        reply: reply_tx,
    });
    match reply_rx.recv() {
        Ok(Ok(points)) => Frame::PredictResponse { points },
        Ok(Err(message)) => error_frame(ErrorCode::Internal, &message),
        Err(_) => error_frame(ErrorCode::Internal, "scoring pipeline dropped the request"),
    }
}
