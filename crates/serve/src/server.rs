//! The resident server: accept loop, request-batching queue, scoring workers.
//!
//! # Thread shape (no async runtime — the workspace is offline)
//!
//! ```text
//! accept thread ──► one thread per connection ──► queue (Mutex + Condvar)
//!                                                    │
//!                                              batcher thread
//!                                         (merge compatible jobs,
//!                                          max-batch / max-wait knob)
//!                                                    │
//!                                            worker pool (N threads,
//!                                      each owns one long-lived scratch)
//! ```
//!
//! Connection threads decode frames and enqueue jobs; the batcher merges
//! jobs that score under the same model and workload list into one batch
//! (sound because batch scoring is pinned bit-identical to per-point
//! scoring); workers run each batch through
//! [`SweepEngine::run_with`] with a per-worker [`EngineScratch`] that lives
//! as long as the worker — the same reuse discipline as `parallel_map_with`
//! in the sweep, so the heavyweight buffers are materialized once per
//! worker, not once per request.
//!
//! # Hot reload and drain
//!
//! The loaded models live behind `Mutex<Arc<ModelSet>>`.  A predict request
//! captures its `Arc` at enqueue time, so a concurrent reload never changes
//! an in-flight request: reload loads every path fresh (all-or-nothing — a
//! corrupt file refuses the whole reload and the old set keeps serving),
//! then swaps the `Arc`.  Shutdown acknowledges, stops accepting, lets every
//! queued job finish, joins every thread, and returns — never a panic, never
//! a hang.

use crate::faults::{FaultPlan, FaultStream};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, Frame, ServedPoint, ServerHealth, ServerInfo, WireError,
    MAX_ERROR_MESSAGE,
};
use autopower::{
    load_model, AutoPowerError, EngineScratch, ModelKind, PowerModel, SweepEngine, SweepSpec,
};
use autopower_config::{CpuConfig, Workload};
use autopower_perfsim::SimConfig;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// How often an idle connection thread re-checks the drain flag (and the
/// granularity at which idle timeouts and the model watcher observe drain).
const IDLE_TICK: Duration = Duration::from_millis(50);

/// Locks a mutex, recovering from poisoning: every structure guarded here
/// (model set, job queue, worker channel) is valid at rest — a panicking
/// holder can at worst lose its own in-flight job, which the panic already
/// answered or dropped — so the right response to poison is to keep serving,
/// not to cascade the whole server down.
fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serving knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOptions {
    /// Scoring worker threads: `0` (the default) uses one per available
    /// core.  Predictions are bit-identical for every value.
    pub workers: usize,
    /// The latency/throughput knob, throughput side: once this many points
    /// are queued the batcher dispatches without waiting out the window.
    /// Larger batches amortize forest-major scoring; bit-identical either
    /// way.
    pub max_batch: usize,
    /// The latency/throughput knob, latency side: how long the batcher holds
    /// the first queued job to let mergeable jobs arrive.  Zero (the
    /// default) dispatches immediately.
    pub max_wait: Duration,
    /// Load-shedding bound: the most points the job queue holds before
    /// predict requests are refused with [`ErrorCode::Overloaded`] (and the
    /// connection closed) instead of queued.  `0` disables the bound.
    pub max_queue: usize,
    /// Drop a connection that has been idle (no frame started) this long;
    /// [`Duration::ZERO`] (the default) keeps idle connections forever.
    pub idle_timeout: Duration,
    /// Per-call read/write deadline once a frame has started — bounds how
    /// long a slowloris peer can pin a connection thread mid-frame without
    /// ever dropping an idle keep-alive.  [`Duration::ZERO`] disables it.
    pub io_timeout: Duration,
    /// Poll the model files' mtimes at this interval and hot-reload
    /// (all-or-nothing, exactly like the `reload` verb) when any changes;
    /// `None` disables the watcher.
    pub watch_models: Option<Duration>,
    /// Arms deterministic fault injection ([`FaultPlan`]) on every
    /// connection and scoring batch.  `None` — the production default —
    /// leaves the plain code path untouched.
    pub fault_seed: Option<u64>,
    /// Performance-simulation settings every request is scored under — must
    /// match the offline run being compared against.
    pub sim: SimConfig,
}

impl ServeOptions {
    /// Paper-scale simulation settings.
    pub fn paper() -> Self {
        Self {
            workers: 0,
            max_batch: 256,
            max_wait: Duration::ZERO,
            max_queue: 65_536,
            idle_timeout: Duration::ZERO,
            io_timeout: Duration::from_secs(10),
            watch_models: None,
            fault_seed: None,
            sim: SimConfig::paper(),
        }
    }

    /// Small, fast settings for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            sim: SimConfig::fast(),
            ..Self::paper()
        }
    }

    /// The worker count the server will actually use.
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        }
    }

    /// The sweep settings every scoring batch runs under (serial: the worker
    /// pool is the parallelism).
    fn sweep_spec(&self) -> SweepSpec {
        SweepSpec {
            sim: self.sim,
            threads: 1,
            chunk_configs: 64,
            use_sim_cache: true,
        }
    }
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self::paper()
    }
}

/// Everything that can go wrong starting or running a server.
#[derive(Debug)]
pub enum ServeError {
    /// Socket setup or accept-loop failure.
    Io(String),
    /// A model file failed to load (the message names the path).
    Model(AutoPowerError),
    /// Invalid configuration (no model files, duplicate kinds).
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "server I/O failed: {m}"),
            ServeError::Model(e) => write!(f, "model load failed: {e}"),
            ServeError::Config(m) => write!(f, "invalid server configuration: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<AutoPowerError> for ServeError {
    fn from(e: AutoPowerError) -> Self {
        ServeError::Model(e)
    }
}

/// The set of models currently serving: one per registry kind, each shared
/// behind an `Arc` so in-flight work survives a reload swap.
struct ModelSet {
    entries: Vec<(ModelKind, Arc<dyn PowerModel>)>,
}

impl ModelSet {
    /// Loads every path; refuses an empty list and duplicate kinds.
    fn load(paths: &[PathBuf]) -> Result<Self, ServeError> {
        if paths.is_empty() {
            return Err(ServeError::Config(
                "at least one --model file is required".to_owned(),
            ));
        }
        let mut entries: Vec<(ModelKind, Arc<dyn PowerModel>)> = Vec::with_capacity(paths.len());
        for path in paths {
            let model = load_model(path)?;
            let kind = model.kind();
            if entries.iter().any(|(k, _)| *k == kind) {
                return Err(ServeError::Config(format!(
                    "duplicate model kind '{kind}' (from {})",
                    path.display()
                )));
            }
            entries.push((kind, Arc::from(model)));
        }
        Ok(Self { entries })
    }

    fn get(&self, kind: ModelKind) -> Option<Arc<dyn PowerModel>> {
        self.entries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| Arc::clone(m))
    }

    fn kinds(&self) -> Vec<ModelKind> {
        self.entries.iter().map(|(k, _)| *k).collect()
    }
}

/// Where a scored (or failed) job is answered to.
type Reply = mpsc::Sender<Result<Vec<ServedPoint>, String>>;

/// One enqueued predict request.  The model `Arc` is captured here, at
/// enqueue time, so a reload between enqueue and scoring cannot change what
/// the request is answered with.
struct Job {
    model: Arc<dyn PowerModel>,
    configs: Vec<CpuConfig>,
    workloads: Vec<Workload>,
    reply: Reply,
}

impl Job {
    fn points(&self) -> usize {
        self.configs.len() * self.workloads.len()
    }
}

/// Jobs merged into one scoring batch: same model (by pointer), same
/// workload list, configurations concatenated in arrival order.
struct BatchGroup {
    model: Arc<dyn PowerModel>,
    workloads: Vec<Workload>,
    configs: Vec<CpuConfig>,
    /// `(reply channel, config count)` per merged job, in merge order.
    segments: Vec<(Reply, usize)>,
}

/// The connection threads' job queue.
struct Queue {
    jobs: VecDeque<Job>,
    /// Points across `jobs`, maintained on push/drain so the load-shedding
    /// check and the `ping` answer are O(1).
    queued_points: usize,
    /// Cleared during drain, once no connection thread can enqueue anymore.
    open: bool,
}

/// Shared server state.
struct ServerState {
    options: ServeOptions,
    addr: SocketAddr,
    /// Model files given at startup; reload re-reads exactly these.
    paths: Vec<PathBuf>,
    models: Mutex<Arc<ModelSet>>,
    queue: Mutex<Queue>,
    queue_cv: Condvar,
    draining: AtomicBool,
    /// Points dispatched to workers and not yet answered (the `ping` verb's
    /// in-flight gauge).
    in_flight_points: AtomicU64,
    /// Armed fault schedule; `None` on every production server.
    faults: Option<Arc<FaultPlan>>,
}

impl ServerState {
    /// Snapshot of the current model set (cheap: one `Arc` clone).
    fn model_set(&self) -> Arc<ModelSet> {
        Arc::clone(&relock(&self.models))
    }

    fn info(&self) -> ServerInfo {
        ServerInfo {
            kinds: self.model_set().kinds(),
            workers: self.options.effective_workers() as u32,
            max_batch: self.options.max_batch as u32,
            max_wait_us: self.options.max_wait.as_micros() as u64,
        }
    }

    fn health(&self) -> ServerHealth {
        ServerHealth {
            queued_points: relock(&self.queue).queued_points as u64,
            in_flight_points: self.in_flight_points.load(Ordering::Relaxed),
            workers: self.options.effective_workers() as u32,
            max_queue: self.options.max_queue as u64,
        }
    }

    /// Re-loads every startup path and swaps the set — all-or-nothing.  The
    /// load happens outside the swap lock so serving is never blocked on
    /// disk I/O.
    fn reload(&self) -> Result<Vec<ModelKind>, ServeError> {
        let fresh = ModelSet::load(&self.paths)?;
        let kinds = fresh.kinds();
        *relock(&self.models) = Arc::new(fresh);
        Ok(kinds)
    }

    /// Queues a job, unless that would push the queue past
    /// [`ServeOptions::max_queue`] points — then the job is shed and
    /// `Err(queued)` reports the load that refused it.
    fn enqueue(&self, job: Job) -> Result<(), usize> {
        let mut queue = relock(&self.queue);
        let bound = self.options.max_queue;
        if bound != 0 && queue.queued_points + job.points() > bound {
            return Err(queue.queued_points);
        }
        queue.queued_points += job.points();
        queue.jobs.push_back(job);
        drop(queue);
        self.queue_cv.notify_all();
        Ok(())
    }

    /// Starts the drain: refuse new work, wake every sleeper, unblock the
    /// accept loop with a self-connection.
    fn start_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        // The accept loop sits in a blocking accept(); a throwaway loopback
        // connection wakes it so it can observe the flag and stop.
        drop(TcpStream::connect(self.addr));
    }
}

/// A running prediction server.
///
/// Dropping the handle does **not** stop the server; send a
/// [`Frame::Shutdown`] (e.g. via
/// [`Client::shutdown`](crate::client::Client::shutdown)) and then
/// [`Server::join`] it.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    run: JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port), cold-starts every
    /// model file via [`load_model`] — no retraining — and spawns the accept
    /// loop, batcher and worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] when a file fails to load (the message names
    /// the path), [`ServeError::Config`] for an empty path list or duplicate
    /// kinds, [`ServeError::Io`] when the socket cannot be bound.
    pub fn start(
        addr: impl ToSocketAddrs,
        model_paths: Vec<PathBuf>,
        options: ServeOptions,
    ) -> Result<Server, ServeError> {
        let models = ModelSet::load(&model_paths)?;
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::Io(format!("binding: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("resolving bound address: {e}")))?;
        let state = Arc::new(ServerState {
            options,
            addr,
            paths: model_paths,
            models: Mutex::new(Arc::new(models)),
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                queued_points: 0,
                open: true,
            }),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            in_flight_points: AtomicU64::new(0),
            faults: options
                .fault_seed
                .map(|seed| Arc::new(FaultPlan::new(seed))),
        });

        let (group_tx, group_rx) = mpsc::channel::<BatchGroup>();
        let group_rx = Arc::new(Mutex::new(group_rx));
        let workers: Vec<JoinHandle<()>> = (0..options.effective_workers())
            .map(|_| {
                let rx = Arc::clone(&group_rx);
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&rx, &state))
            })
            .collect();
        let batcher = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || batcher_loop(&state, &group_tx))
        };
        let watcher = options.watch_models.map(|interval| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || watcher_loop(&state, interval))
        });

        let run = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(&listener, &state, batcher, workers, watcher))
        };
        Ok(Server { addr, state, run })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Test hook: poisons the internal job-queue lock by panicking a thread
    /// that holds it.  Exists to pin the poison-recovery contract — the
    /// server must degrade to per-request errors at worst, never cascade
    /// down — without reaching into private state from the test crate.
    #[doc(hidden)]
    pub fn poison_queue_lock(&self) {
        let state = Arc::clone(&self.state);
        let _ = std::thread::spawn(move || {
            let _guard = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("deliberate poison for the recovery test");
        })
        .join();
    }

    /// Waits for the server to drain and exit (triggered by a
    /// [`Frame::Shutdown`] request).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the server thread panicked.
    pub fn join(self) -> Result<(), ServeError> {
        self.run
            .join()
            .map_err(|_| ServeError::Io("server thread panicked".to_owned()))
    }
}

/// The accept loop; on drain it joins every thread before returning, so
/// [`Server::join`] returning means the process holds no server threads.
fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    batcher: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.draining.load(Ordering::SeqCst) {
                    // The drain wake-up (or a late client); refuse and stop.
                    drop(stream);
                    break;
                }
                // Reap finished connection threads so a long-lived server
                // does not accumulate handles.
                connections.retain(|h| !h.is_finished());
                let state = Arc::clone(state);
                connections.push(std::thread::spawn(move || {
                    handle_connection(&state, stream)
                }));
            }
            Err(_) => {
                if state.draining.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (e.g. fd exhaustion); back off.
                std::thread::sleep(IDLE_TICK);
            }
        }
    }
    // Drain: connection threads first (each finishes at most one in-flight
    // request), then close the queue so the batcher flushes what is left and
    // exits, dropping the group channel — which ends the workers.
    for h in connections {
        let _ = h.join();
    }
    {
        let mut queue = relock(&state.queue);
        queue.open = false;
    }
    state.queue_cv.notify_all();
    let _ = batcher.join();
    for h in workers {
        let _ = h.join();
    }
    if let Some(h) = watcher {
        let _ = h.join();
    }
}

/// The model-file watcher: polls every startup path's mtime at the
/// configured interval and triggers the hot-reload path (all-or-nothing,
/// identical to the `reload` verb) when any changes.  A failed reload — a
/// file mid-copy, or corrupt — leaves the old set serving and the stamp
/// unadvanced, so the watcher retries on the next tick until the file
/// settles.
fn watcher_loop(state: &Arc<ServerState>, interval: Duration) {
    let stamp = |paths: &[PathBuf]| -> Vec<Option<SystemTime>> {
        paths
            .iter()
            .map(|p| std::fs::metadata(p).and_then(|m| m.modified()).ok())
            .collect()
    };
    let mut last = stamp(&state.paths);
    let mut since_poll = Duration::ZERO;
    loop {
        // Sleep in short ticks so drain is observed promptly even under a
        // long polling interval.
        std::thread::sleep(IDLE_TICK.min(interval));
        if state.draining.load(Ordering::SeqCst) {
            return;
        }
        since_poll += IDLE_TICK.min(interval);
        if since_poll < interval {
            continue;
        }
        since_poll = Duration::ZERO;
        let now = stamp(&state.paths);
        if now == last {
            continue;
        }
        match state.reload() {
            Ok(kinds) => {
                last = now;
                let names: Vec<&str> = kinds.iter().map(|k| k.registry_name()).collect();
                eprintln!(
                    "autopower-serve: model file changed on disk; reloaded {}",
                    names.join(", ")
                );
            }
            Err(e) => {
                // Keep `last` so the next tick retries; the old set serves on.
                eprintln!("autopower-serve: watched reload refused ({e}); still serving old set");
            }
        }
    }
}

/// Merges queued jobs into batch groups and dispatches them to the workers,
/// holding the first job up to [`ServeOptions::max_wait`] (or until
/// [`ServeOptions::max_batch`] points are queued) so concurrent requests can
/// ride one scoring batch.
fn batcher_loop(state: &ServerState, groups: &mpsc::Sender<BatchGroup>) {
    loop {
        let mut queue = relock(&state.queue);
        while queue.jobs.is_empty() && queue.open {
            queue = state
                .queue_cv
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if queue.jobs.is_empty() && !queue.open {
            return;
        }
        // The batching window: wait for more jobs until the deadline or the
        // batch target, whichever comes first.  `max_wait == 0` skips the
        // window entirely — pure latency mode.
        let max_wait = state.options.max_wait;
        if !max_wait.is_zero() {
            let deadline = Instant::now() + max_wait;
            loop {
                if queue.queued_points >= state.options.max_batch || !queue.open {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = state
                    .queue_cv
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        }
        let jobs: Vec<Job> = queue.jobs.drain(..).collect();
        queue.queued_points = 0;
        drop(queue);

        for group in merge_jobs(jobs, state.options.max_batch) {
            let points: usize = group.configs.len() * group.workloads.len();
            state
                .in_flight_points
                .fetch_add(points as u64, Ordering::Relaxed);
            if groups.send(group).is_err() {
                // Workers are gone (shutdown path); nothing left to serve.
                state
                    .in_flight_points
                    .fetch_sub(points as u64, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Groups jobs by `(model pointer, workload list)`, concatenating their
/// configurations in arrival order.  A group stops absorbing jobs once it
/// reaches `max_batch` points (a single oversized job still forms one
/// group — the engine chunks internally).
fn merge_jobs(jobs: Vec<Job>, max_batch: usize) -> Vec<BatchGroup> {
    let mut groups: Vec<BatchGroup> = Vec::new();
    for job in jobs {
        let merged = groups.iter_mut().find(|g| {
            Arc::ptr_eq(&g.model, &job.model)
                && g.workloads == job.workloads
                && g.configs.len() * g.workloads.len() < max_batch
        });
        match merged {
            Some(group) => {
                group.configs.extend_from_slice(&job.configs);
                group.segments.push((job.reply, job.configs.len()));
            }
            None => groups.push(BatchGroup {
                model: job.model,
                workloads: job.workloads,
                segments: vec![(job.reply, job.configs.len())],
                configs: job.configs,
            }),
        }
    }
    groups
}

/// One scoring worker: owns a long-lived [`EngineScratch`] and scores batch
/// groups until the channel closes.
fn worker_loop(groups: &Mutex<mpsc::Receiver<BatchGroup>>, state: &ServerState) {
    let spec = state.options.sweep_spec();
    let mut scratch = EngineScratch::new();
    let mut points = Vec::new();
    loop {
        let group = {
            let rx = relock(groups);
            rx.recv()
        };
        let Ok(group) = group else {
            return; // channel closed: drain complete
        };
        let group_points = group.configs.len() * group.workloads.len();
        // A panic while scoring (e.g. a degenerate configuration that slipped
        // through wire validation, or an injected fault) must not kill the
        // worker: answer every merged job with a typed internal error and
        // keep serving.
        let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(plan) = &state.faults {
                assert!(!plan.next_worker_panic(), "injected worker panic");
            }
            let engine = SweepEngine::new(group.model.as_ref(), spec);
            engine.run_with(&group.configs, &group.workloads, &mut scratch, &mut points);
        }));
        match scored {
            Ok(()) => {
                let mut offset = 0;
                for (reply, n_configs) in &group.segments {
                    let n = n_configs * group.workloads.len();
                    let served = points[offset..offset + n]
                        .iter()
                        .map(|p| ServedPoint {
                            power: p.power.clone(),
                            ipc: p.ipc,
                        })
                        .collect();
                    offset += n;
                    let _ = reply.send(Ok(served));
                }
            }
            Err(_) => {
                // The scratch may be mid-update; rebuild it.
                scratch = EngineScratch::new();
                points = Vec::new();
                for (reply, _) in &group.segments {
                    let _ = reply.send(Err("scoring panicked on this batch".to_owned()));
                }
            }
        }
        state
            .in_flight_points
            .fetch_sub(group_points as u64, Ordering::Relaxed);
    }
}

/// Builds an error frame, truncating the message to the wire limit on a
/// character boundary.
fn error_frame(code: ErrorCode, message: &str) -> Frame {
    let mut message = message.to_owned();
    while message.len() > MAX_ERROR_MESSAGE {
        message.pop();
    }
    Frame::Error { code, message }
}

/// Whether an I/O error is a read-timeout tick rather than a dead stream.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// The connection transport: a plain stream on production servers, the
/// fault-injecting shim when a plan is armed.  One enum branch per I/O call;
/// the plain arm delegates directly, so a disabled plan costs nothing
/// beyond a predictable branch.
enum Conn {
    Plain(TcpStream),
    Faulty(FaultStream),
}

impl Conn {
    fn new(stream: TcpStream, faults: Option<&Arc<FaultPlan>>) -> Self {
        match faults {
            Some(plan) => Conn::Faulty(FaultStream::new(stream, Arc::clone(plan))),
            None => Conn::Plain(stream),
        }
    }

    /// The underlying socket, for options and `peek` (both fault-free: the
    /// idle poll is not an interesting place to fail).
    fn socket(&self) -> &TcpStream {
        match self {
            Conn::Plain(s) => s,
            Conn::Faulty(f) => f.get_ref(),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Plain(s) => s.read(buf),
            Conn::Faulty(f) => f.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Plain(s) => s.write(buf),
            Conn::Faulty(f) => f.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Plain(s) => s.flush(),
            Conn::Faulty(f) => f.flush(),
        }
    }
}

/// One connection: read frames, answer frames, until close, drain, or a
/// deadline.  Two distinct timeouts keep slowloris peers and idle keep-alive
/// connections apart: `idle_timeout` bounds how long the connection may sit
/// *between* frames (zero = forever, the keep-alive default), `io_timeout`
/// bounds every read/write call once a frame has *started* — a peer trickling
/// a half-frame is dropped, a quiet-but-healthy one is not.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let idle_timeout = state.options.idle_timeout;
    let io_timeout = (!state.options.io_timeout.is_zero()).then_some(state.options.io_timeout);
    // Response writes run under the same deadline as mid-frame reads, so a
    // peer that stops reading cannot pin the thread on a full send buffer.
    if stream.set_write_timeout(io_timeout).is_err() {
        return;
    }
    let mut conn = Conn::new(stream, state.faults.as_ref());
    let mut probe = [0u8; 1];
    let mut idle_since = Instant::now();
    loop {
        if state.draining.load(Ordering::SeqCst) {
            return;
        }
        if !idle_timeout.is_zero() && idle_since.elapsed() >= idle_timeout {
            return; // idle deadline expired with no frame started
        }
        // Idle wait: peek (consuming nothing) under a short timeout so the
        // drain flag and the idle deadline are re-checked even on a silent
        // connection.
        if conn.socket().set_read_timeout(Some(IDLE_TICK)).is_err() {
            return;
        }
        match conn.socket().peek(&mut probe) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e) if is_timeout(&e) => continue,
            Err(_) => return,
        }
        // A frame has started; every read is now individually bounded so a
        // stalled half-frame cannot hang the thread (or the drain) forever.
        if conn.socket().set_read_timeout(io_timeout).is_err() {
            return;
        }
        match read_frame(&mut conn) {
            Ok(frame) => {
                if !answer_frame(state, &mut conn, frame) {
                    return;
                }
                idle_since = Instant::now();
            }
            Err(WireError::Closed) => return,
            // The transport itself failed (reset, mid-frame deadline): there
            // is no one reliable to answer — close and let the peer's retry
            // logic classify it as the reconnectable error it is.
            Err(WireError::Io(_)) => return,
            Err(e) if e.is_fatal() => {
                // Framing can no longer be trusted; best-effort error frame,
                // then close.
                let _ = write_frame(&mut conn, &error_frame(ErrorCode::BadFrame, &e.to_string()));
                return;
            }
            Err(e) => {
                // Recoverable (wrong version / malformed payload): the
                // stream is still frame-aligned — answer and keep going.
                if write_frame(&mut conn, &error_frame(ErrorCode::BadFrame, &e.to_string()))
                    .is_err()
                {
                    return;
                }
                idle_since = Instant::now();
            }
        }
    }
}

/// Handles one decoded frame; returns `false` when the connection should
/// close (write failure, shutdown, or an overload shed — answering *and
/// closing* keeps a saturated server's connection count bounded along with
/// its queue).
fn answer_frame(state: &Arc<ServerState>, stream: &mut Conn, frame: Frame) -> bool {
    let response = match frame {
        Frame::PredictRequest {
            kind,
            configs,
            workloads,
        } => predict(state, kind, configs, workloads),
        Frame::Info => Frame::InfoResponse(state.info()),
        Frame::Ping => Frame::PingResponse(state.health()),
        Frame::Reload => match state.reload() {
            Ok(kinds) => Frame::ReloadResponse { kinds },
            Err(e) => error_frame(ErrorCode::ReloadFailed, &e.to_string()),
        },
        Frame::Shutdown => {
            let _ = write_frame(stream, &Frame::ShutdownResponse);
            state.start_drain();
            return false;
        }
        // A server never expects response-type frames; refuse but keep the
        // connection usable.
        Frame::PredictResponse { .. }
        | Frame::InfoResponse(_)
        | Frame::ReloadResponse { .. }
        | Frame::ShutdownResponse
        | Frame::PingResponse(_)
        | Frame::Error { .. } => error_frame(
            ErrorCode::BadFrame,
            "unexpected response-type frame from client",
        ),
    };
    let shed = matches!(
        &response,
        Frame::Error {
            code: ErrorCode::Overloaded,
            ..
        }
    );
    write_frame(stream, &response).is_ok() && !shed
}

/// Scores one predict request through the batching queue.
fn predict(
    state: &Arc<ServerState>,
    kind: ModelKind,
    configs: Vec<CpuConfig>,
    workloads: Vec<Workload>,
) -> Frame {
    if state.draining.load(Ordering::SeqCst) {
        return error_frame(ErrorCode::Draining, "server is draining");
    }
    let Some(model) = state.model_set().get(kind) else {
        let loaded = state
            .model_set()
            .kinds()
            .iter()
            .map(|k| k.registry_name().to_owned())
            .collect::<Vec<_>>()
            .join(", ");
        return error_frame(
            ErrorCode::UnknownModel,
            &format!("model '{kind}' is not loaded (serving: {loaded})"),
        );
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    if let Err(queued) = state.enqueue(Job {
        model,
        configs,
        workloads,
        reply: reply_tx,
    }) {
        // Shed instead of queueing without bound: the caller gets an honest
        // "try later" answer while the already-admitted points keep their
        // latency; the connection closes after the reply (see answer_frame).
        return error_frame(
            ErrorCode::Overloaded,
            &format!(
                "queue full ({queued} points queued, bound {}); retry with backoff",
                state.options.max_queue
            ),
        );
    }
    match reply_rx.recv() {
        Ok(Ok(points)) => Frame::PredictResponse { points },
        Ok(Err(message)) => error_frame(ErrorCode::Internal, &message),
        Err(_) => error_frame(ErrorCode::Internal, "scoring pipeline dropped the request"),
    }
}
