//! The resident prediction service: saved models in, batched predictions out.
//!
//! Everything built through the sweep path — trained registry models, bit-exact
//! [`load_model`](autopower::load_model), the allocation-free scoring loop —
//! runs here as a long-lived process instead of a batch CLI.  The server
//! ([`server::Server`]) cold-starts from saved model files (no retraining),
//! owns one `Box<dyn PowerModel>` per loaded [`ModelKind`](autopower::ModelKind),
//! and answers predict requests over a hand-rolled length-prefixed binary
//! protocol ([`protocol`]) on [`std::net::TcpListener`] — the workspace is
//! offline, so there is no async runtime; the concurrency substrate is the
//! same thread-per-worker shape as the sweep's `parallel_map_with`, with each
//! scoring worker holding a long-lived [`EngineScratch`](autopower::EngineScratch)
//! (and, inside it, the `FeatureScratch` the predictors reuse).
//!
//! # Correctness bar
//!
//! For **any** request batch size, connection count, worker thread count and
//! batching-knob setting, a served prediction is bit-identical to the offline
//! `predict_batch` path ([`SweepEngine::run`](autopower::SweepEngine::run)) on
//! the same loaded model file.  Three pinned invariants make that composable:
//!
//! 1. The sweep engine is bit-identical across thread counts, chunk sizes and
//!    simulation-cache settings (pinned since PR 2/6), so *where* a point is
//!    scored cannot matter.
//! 2. Batching is bit-identical to per-point scoring (pinned in PR 5), so the
//!    server may merge concurrent requests into one scoring batch.
//! 3. The wire codec round-trips every [`Prediction`](autopower::Prediction)
//!    exactly: group and component values travel as raw IEEE-754 bits and the
//!    totals are re-derived through the same constructors the models use
//!    (pinned by the protocol proptests).
//!
//! The integration tests and the CI smoke step pin the end-to-end composition:
//! `predict-remote` output diffs byte-for-byte against the offline
//! `predict-local` path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod faults;
pub mod protocol;
pub mod server;
