//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Hand-rolled because the workspace is offline — no serde-the-real-crate, no
//! protobuf.  The shape is deliberately boring:
//!
//! ```text
//! +-------+---------+-----------+-------------+----------------------+
//! | magic | version | frame type| payload len | payload (len bytes)  |
//! | APSV  | u16 LE  | u16 LE    | u32 LE      |                      |
//! +-------+---------+-----------+-------------+----------------------+
//! ```
//!
//! Every multi-byte integer is little-endian; every `f64` travels as its raw
//! IEEE-754 bits, so predictions cross the wire **exactly** — the protocol
//! round-trip is bit-lossless (pinned by proptests in `tests/protocol.rs`).
//!
//! # Framing discipline
//!
//! [`read_frame`] distinguishes *fatal* stream corruption from *recoverable*
//! bad requests, and [`WireError::is_fatal`] encodes the policy:
//!
//! * Bad magic, an oversized declared length, a mid-frame EOF or an I/O error
//!   mean the stream can no longer be trusted to be frame-aligned — the
//!   server answers an [`ErrorCode::BadFrame`] error frame where possible and
//!   closes the connection.
//! * A wrong version or a well-framed payload that fails to parse
//!   ([`WireError::Malformed`]) is consumed in full, so the stream stays
//!   aligned: the server answers an error frame and the connection remains
//!   usable.  Never a panic, never a hang.
//!
//! Responses re-derive every [`Prediction`] total through the same
//! constructors the models use ([`Prediction::grouped`] sums the groups,
//! [`Prediction::per_component`] folds the breakdown), so a decoded
//! prediction is not merely close to the served one — it is the same value,
//! bit for bit.

use autopower::{ComponentBreakdown, ComponentPower, ModelKind, Prediction, Resolution};
use autopower_config::{
    Component, ConfigId, CpuConfig, HardwareParams, Workload, SEED_CONFIG_COUNT,
};
use autopower_powersim::PowerGroups;
use std::io::{Read, Write};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"APSV";

/// Protocol version; bumped on any layout change so a stale peer fails
/// loudly instead of decoding garbage.
pub const PROTOCOL_VERSION: u16 = 1;

/// Bytes of the fixed header (magic + version + frame type + payload length).
pub const HEADER_LEN: usize = 12;

/// Upper bound on a frame's declared payload length.  A per-component
/// response for [`MAX_POINTS`] points is ~3.7 MiB; anything past this bound
/// is a corrupt or hostile length field, not a real frame.
pub const MAX_PAYLOAD: u32 = 8 * 1024 * 1024;

/// Upper bound on `configs × workloads` per predict request — bounds both
/// the response payload and the scoring work a single frame can demand.
pub const MAX_POINTS: usize = 4096;

/// Upper bound on configurations per predict request.
pub const MAX_CONFIGS: usize = 4096;

/// Upper bound on workloads per predict request (repeats allowed, as in the
/// offline sweep).
pub const MAX_WORKLOADS: usize = 64;

/// Upper bound on an error frame's message, in bytes.
pub const MAX_ERROR_MESSAGE: usize = 1024;

/// Upper bound on hardware-parameter values accepted off the wire.  The BOOM
/// design space tops out orders of magnitude below this; the bound only
/// rejects nonsense (zero-width pipelines, 4-billion-entry ROBs) before it
/// reaches the simulator.
pub const MAX_PARAM_VALUE: u32 = 1 << 20;

/// One scored point of a predict response: the typed prediction plus the
/// simulated IPC — the same payload as an offline
/// [`SweepPoint`](autopower::SweepPoint), minus the echoed config/workload
/// (the client knows its own request order).
#[derive(Debug, Clone, PartialEq)]
pub struct ServedPoint {
    /// The typed power prediction (total + whatever structure the model
    /// resolves), bit-identical to the offline sweep's.
    pub power: Prediction,
    /// Simulated instructions per cycle.
    pub ipc: f64,
}

/// What an `Info` request answers: the loaded models and the serving knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerInfo {
    /// Registry kinds loaded and servable, in load order.
    pub kinds: Vec<ModelKind>,
    /// Scoring worker threads.
    pub workers: u32,
    /// Max points merged into one scoring batch.
    pub max_batch: u32,
    /// Batching window in microseconds (0 = dispatch immediately).
    pub max_wait_us: u64,
}

/// What a `Ping` request answers: an instantaneous health snapshot, so load
/// and saturation are observable in-band without a side channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerHealth {
    /// Points sitting in the job queue, not yet dispatched to a worker.
    pub queued_points: u64,
    /// Points dispatched to workers and not yet answered.
    pub in_flight_points: u64,
    /// Scoring worker threads.
    pub workers: u32,
    /// The load-shedding bound: queued points are capped here (`0` =
    /// unbounded); past it predict requests are refused with
    /// [`ErrorCode::Overloaded`].
    pub max_queue: u64,
}

/// Typed error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame itself was malformed (bad framing, bad payload,
    /// unknown frame type, or a response-type frame sent to the server).
    BadFrame,
    /// The requested model kind is not loaded on this server.
    UnknownModel,
    /// A hot reload failed; the previous models keep serving.
    ReloadFailed,
    /// The server is draining and no longer accepts predict requests.
    Draining,
    /// The server failed internally while scoring the request.
    Internal,
    /// The job queue hit its `--max-queue` bound; the request was shed
    /// instead of queued.  Retry with backoff.
    Overloaded,
}

impl ErrorCode {
    /// The stable wire value.
    pub fn code(self) -> u16 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::UnknownModel => 2,
            ErrorCode::ReloadFailed => 3,
            ErrorCode::Draining => 4,
            ErrorCode::Internal => 5,
            ErrorCode::Overloaded => 6,
        }
    }

    /// Inverse of [`ErrorCode::code`].
    pub fn from_code(code: u16) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::BadFrame),
            2 => Some(ErrorCode::UnknownModel),
            3 => Some(ErrorCode::ReloadFailed),
            4 => Some(ErrorCode::Draining),
            5 => Some(ErrorCode::Internal),
            6 => Some(ErrorCode::Overloaded),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::UnknownModel => "unknown-model",
            ErrorCode::ReloadFailed => "reload-failed",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
            ErrorCode::Overloaded => "overloaded",
        };
        f.write_str(name)
    }
}

/// Every frame either peer can send.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: score `configs × workloads` under the named model.
    PredictRequest {
        /// The registry model to score under.
        kind: ModelKind,
        /// Configurations to score, `1..=MAX_CONFIGS`.
        configs: Vec<CpuConfig>,
        /// Workloads per configuration, `1..=MAX_WORKLOADS`.
        workloads: Vec<Workload>,
    },
    /// Server → client: one [`ServedPoint`] per requested pair,
    /// configuration-major in request order.
    PredictResponse {
        /// The scored points.
        points: Vec<ServedPoint>,
    },
    /// Server → client: a typed refusal.
    Error {
        /// What went wrong, as a stable code.
        code: ErrorCode,
        /// Human-readable detail, at most [`MAX_ERROR_MESSAGE`] bytes.
        message: String,
    },
    /// Client → server: describe yourself.
    Info,
    /// Server → client: answer to [`Frame::Info`].
    InfoResponse(ServerInfo),
    /// Client → server: re-read every model file from disk and swap the set
    /// atomically (all-or-nothing; in-flight requests finish on the old set).
    Reload,
    /// Server → client: the reload succeeded; these kinds now serve.
    ReloadResponse {
        /// Registry kinds of the freshly loaded set, in load order.
        kinds: Vec<ModelKind>,
    },
    /// Client → server: drain and exit — finish in-flight work, answer this
    /// with [`Frame::ShutdownResponse`], stop accepting, exit cleanly.
    Shutdown,
    /// Server → client: drain acknowledged.
    ShutdownResponse,
    /// Client → server: health check — answered instantly, never queued.
    Ping,
    /// Server → client: answer to [`Frame::Ping`].
    PingResponse(ServerHealth),
}

impl Frame {
    /// The stable wire value of the frame type.
    fn type_code(&self) -> u16 {
        match self {
            Frame::PredictRequest { .. } => 1,
            Frame::PredictResponse { .. } => 2,
            Frame::Error { .. } => 3,
            Frame::Info => 4,
            Frame::InfoResponse(_) => 5,
            Frame::Reload => 6,
            Frame::ReloadResponse { .. } => 7,
            Frame::Shutdown => 8,
            Frame::ShutdownResponse => 9,
            Frame::Ping => 10,
            Frame::PingResponse(_) => 11,
        }
    }
}

/// Everything that can go wrong reading a frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The stream ended mid-frame.
    Truncated,
    /// The frame did not open with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame declared a protocol version this build does not speak.
    /// Recoverable: the payload was drained, the stream is still aligned.
    BadVersion(u16),
    /// The frame declared a payload longer than [`MAX_PAYLOAD`].
    Oversized(u32),
    /// A well-framed payload that does not parse.  Recoverable: the payload
    /// was consumed in full, the stream is still aligned.
    Malformed(String),
}

impl WireError {
    /// Whether the stream can no longer be trusted to be frame-aligned
    /// (close the connection) or the next frame can still be read (answer an
    /// error frame and continue).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, WireError::Malformed(_) | WireError::BadVersion(_))
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "stream I/O failed: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::BadMagic(bytes) => write!(f, "bad frame magic {bytes:02x?}"),
            WireError::BadVersion(v) => write!(
                f,
                "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
            ),
            WireError::Oversized(len) => write!(
                f,
                "declared payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte limit"
            ),
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// --- encoding --------------------------------------------------------------

/// Byte-buffer writer for payloads; everything little-endian.
#[derive(Default)]
struct Enc {
    bytes: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    /// Raw IEEE-754 bits — the exactness of the whole protocol rests here.
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    /// Length-prefixed UTF-8 (u16 length).
    fn str(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize);
        self.u16(s.len() as u16);
        self.bytes.extend_from_slice(s.as_bytes());
    }
    fn groups(&mut self, g: &PowerGroups) {
        self.f64(g.clock);
        self.f64(g.sram);
        self.f64(g.register);
        self.f64(g.combinational);
    }
    fn config(&mut self, config: &CpuConfig) {
        match config.id.generated_index() {
            Some(n) => {
                self.u8(1);
                self.u32(n);
            }
            None => {
                self.u8(0);
                self.u32(config.id.index());
            }
        }
        for &v in config.params.values() {
            self.u32(v);
        }
    }
    fn prediction(&mut self, p: &Prediction) {
        match p.resolution() {
            Resolution::TotalOnly => {
                self.u8(0);
                self.f64(p.total());
            }
            Resolution::Grouped(groups) => {
                self.u8(1);
                self.groups(groups);
            }
            Resolution::PerComponent(breakdown) => {
                self.u8(2);
                self.u8(Component::ALL.len() as u8);
                for (_, entry) in breakdown.iter() {
                    match &entry.groups {
                        Some(groups) => {
                            self.u8(1);
                            self.f64(entry.total);
                            self.groups(groups);
                        }
                        None => {
                            self.u8(0);
                            self.f64(entry.total);
                        }
                    }
                }
            }
        }
    }
}

/// Encodes a frame — header and payload — into one byte vector.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Enc::default();
    match frame {
        Frame::PredictRequest {
            kind,
            configs,
            workloads,
        } => {
            payload.str(kind.registry_name());
            payload.u16(workloads.len() as u16);
            payload.u32(configs.len() as u32);
            for &w in workloads {
                payload.u8(w.index() as u8);
            }
            for config in configs {
                payload.config(config);
            }
        }
        Frame::PredictResponse { points } => {
            payload.u32(points.len() as u32);
            for point in points {
                payload.f64(point.ipc);
                payload.prediction(&point.power);
            }
        }
        Frame::Error { code, message } => {
            payload.u16(code.code());
            payload.str(message);
        }
        Frame::Info | Frame::Reload | Frame::Shutdown | Frame::ShutdownResponse | Frame::Ping => {}
        Frame::PingResponse(health) => {
            payload.u64(health.queued_points);
            payload.u64(health.in_flight_points);
            payload.u32(health.workers);
            payload.u64(health.max_queue);
        }
        Frame::InfoResponse(info) => {
            payload.u16(info.kinds.len() as u16);
            for kind in &info.kinds {
                payload.str(kind.registry_name());
            }
            payload.u32(info.workers);
            payload.u32(info.max_batch);
            payload.u64(info.max_wait_us);
        }
        Frame::ReloadResponse { kinds } => {
            payload.u16(kinds.len() as u16);
            for kind in kinds {
                payload.str(kind.registry_name());
            }
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.bytes.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&frame.type_code().to_le_bytes());
    out.extend_from_slice(&(payload.bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload.bytes);
    out
}

/// Writes one frame to a stream.
///
/// # Errors
///
/// Propagates the stream's I/O error.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()
}

// --- decoding --------------------------------------------------------------

/// Bounds-checked little-endian cursor over a received payload.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(WireError::Malformed(format!(
                "payload ends inside {what} (need {n} bytes at offset {}, have {})",
                self.pos,
                self.bytes.len() - self.pos
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &str) -> Result<&'a str, WireError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes)
            .map_err(|_| WireError::Malformed(format!("{what} is not valid UTF-8")))
    }

    fn kind(&mut self, what: &str) -> Result<ModelKind, WireError> {
        let name = self.str(what)?;
        name.parse::<ModelKind>()
            .map_err(|e| WireError::Malformed(format!("{what}: {e}")))
    }

    fn groups(&mut self, what: &str) -> Result<PowerGroups, WireError> {
        Ok(PowerGroups {
            clock: self.f64(what)?,
            sram: self.f64(what)?,
            register: self.f64(what)?,
            combinational: self.f64(what)?,
        })
    }

    fn config(&mut self) -> Result<CpuConfig, WireError> {
        let tag = self.u8("config id kind")?;
        let index = self.u32("config id")?;
        let id = match tag {
            0 => {
                let n = u8::try_from(index)
                    .ok()
                    .filter(|&n| (1..=SEED_CONFIG_COUNT as u8).contains(&n))
                    .ok_or_else(|| {
                        WireError::Malformed(format!("seed config index {index} out of range"))
                    })?;
                ConfigId::new(n)
            }
            1 => {
                if index == 0 || index >= u32::MAX - SEED_CONFIG_COUNT {
                    return Err(WireError::Malformed(format!(
                        "generated config index {index} out of range"
                    )));
                }
                ConfigId::generated(index)
            }
            other => {
                return Err(WireError::Malformed(format!(
                    "unknown config id tag {other}"
                )))
            }
        };
        let mut values = [0u32; 14];
        for slot in &mut values {
            let v = self.u32("config parameter")?;
            if v == 0 || v > MAX_PARAM_VALUE {
                return Err(WireError::Malformed(format!(
                    "config parameter value {v} out of range (1..={MAX_PARAM_VALUE})"
                )));
            }
            *slot = v;
        }
        Ok(CpuConfig::new(id, HardwareParams::new(values)))
    }

    fn prediction(&mut self) -> Result<Prediction, WireError> {
        match self.u8("prediction tag")? {
            0 => Ok(Prediction::total_only(self.f64("total")?)),
            1 => Ok(Prediction::grouped(self.groups("group values")?)),
            2 => {
                let count = self.u8("component count")? as usize;
                if count != Component::ALL.len() {
                    return Err(WireError::Malformed(format!(
                        "breakdown carries {count} components, expected {}",
                        Component::ALL.len()
                    )));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let has_groups = match self.u8("component flags")? {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(WireError::Malformed(format!(
                                "unknown component flags {other}"
                            )))
                        }
                    };
                    let total = self.f64("component total")?;
                    let groups = if has_groups {
                        Some(self.groups("component groups")?)
                    } else {
                        None
                    };
                    entries.push(ComponentPower { total, groups });
                }
                Ok(Prediction::per_component(ComponentBreakdown::new(entries)))
            }
            other => Err(WireError::Malformed(format!(
                "unknown prediction tag {other}"
            ))),
        }
    }

    /// Rejects trailing bytes: a frame that parses but carries extra payload
    /// is a peer disagreement, not something to silently ignore.
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing byte(s) after the payload",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// Decodes a payload whose framing (type + length) was already validated.
fn decode_payload(type_code: u16, payload: &[u8]) -> Result<Frame, WireError> {
    let mut d = Dec::new(payload);
    let frame = match type_code {
        1 => {
            let kind = d.kind("model kind")?;
            let n_workloads = d.u16("workload count")? as usize;
            let n_configs = d.u32("config count")? as usize;
            if n_workloads == 0 || n_workloads > MAX_WORKLOADS {
                return Err(WireError::Malformed(format!(
                    "workload count {n_workloads} out of range (1..={MAX_WORKLOADS})"
                )));
            }
            if n_configs == 0 || n_configs > MAX_CONFIGS {
                return Err(WireError::Malformed(format!(
                    "config count {n_configs} out of range (1..={MAX_CONFIGS})"
                )));
            }
            if n_configs * n_workloads > MAX_POINTS {
                return Err(WireError::Malformed(format!(
                    "{n_configs} configs x {n_workloads} workloads exceeds the \
                     {MAX_POINTS}-point limit"
                )));
            }
            let mut workloads = Vec::with_capacity(n_workloads);
            for _ in 0..n_workloads {
                let index = d.u8("workload index")? as usize;
                let workload = Workload::ALL.get(index).copied().ok_or_else(|| {
                    WireError::Malformed(format!("unknown workload index {index}"))
                })?;
                workloads.push(workload);
            }
            let mut configs = Vec::with_capacity(n_configs);
            for _ in 0..n_configs {
                configs.push(d.config()?);
            }
            Frame::PredictRequest {
                kind,
                configs,
                workloads,
            }
        }
        2 => {
            let n = d.u32("point count")? as usize;
            if n > MAX_POINTS {
                return Err(WireError::Malformed(format!(
                    "point count {n} exceeds the {MAX_POINTS}-point limit"
                )));
            }
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let ipc = d.f64("point ipc")?;
                let power = d.prediction()?;
                points.push(ServedPoint { power, ipc });
            }
            Frame::PredictResponse { points }
        }
        3 => {
            let raw = d.u16("error code")?;
            let code = ErrorCode::from_code(raw)
                .ok_or_else(|| WireError::Malformed(format!("unknown error code {raw}")))?;
            let message = d.str("error message")?;
            if message.len() > MAX_ERROR_MESSAGE {
                return Err(WireError::Malformed(format!(
                    "error message of {} bytes exceeds the {MAX_ERROR_MESSAGE}-byte limit",
                    message.len()
                )));
            }
            Frame::Error {
                code,
                message: message.to_owned(),
            }
        }
        4 => Frame::Info,
        5 => {
            let n = d.u16("kind count")? as usize;
            let mut kinds = Vec::with_capacity(n.min(ModelKind::ALL.len()));
            for _ in 0..n {
                kinds.push(d.kind("model kind")?);
            }
            Frame::InfoResponse(ServerInfo {
                kinds,
                workers: d.u32("worker count")?,
                max_batch: d.u32("max batch")?,
                max_wait_us: d.u64("max wait")?,
            })
        }
        6 => Frame::Reload,
        7 => {
            let n = d.u16("kind count")? as usize;
            let mut kinds = Vec::with_capacity(n.min(ModelKind::ALL.len()));
            for _ in 0..n {
                kinds.push(d.kind("model kind")?);
            }
            Frame::ReloadResponse { kinds }
        }
        8 => Frame::Shutdown,
        9 => Frame::ShutdownResponse,
        10 => Frame::Ping,
        11 => Frame::PingResponse(ServerHealth {
            queued_points: d.u64("queued points")?,
            in_flight_points: d.u64("in-flight points")?,
            workers: d.u32("worker count")?,
            max_queue: d.u64("max queue")?,
        }),
        other => return Err(WireError::Malformed(format!("unknown frame type {other}"))),
    };
    d.finish()?;
    Ok(frame)
}

/// Decodes one full frame from a byte slice (header + payload); the test
/// suite's entry point.  Returns the frame and the bytes consumed.
///
/// # Errors
///
/// Same taxonomy as [`read_frame`], with [`WireError::Truncated`] for a
/// slice that ends mid-frame.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    let type_code = u16::from_le_bytes([bytes[6], bytes[7]]);
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let end = HEADER_LEN + len as usize;
    if bytes.len() < end {
        return Err(WireError::Truncated);
    }
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let frame = decode_payload(type_code, &bytes[HEADER_LEN..end])?;
    Ok((frame, end))
}

/// Reads exactly `buf.len()` bytes, reporting a clean close ([`WireError::Closed`])
/// only when zero bytes were read *and* the caller said a boundary EOF is fine.
fn read_exactly(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && at_boundary {
                    WireError::Closed
                } else {
                    WireError::Truncated
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame from a stream.
///
/// The payload is always consumed before validation verdicts are returned,
/// so every non-fatal error ([`WireError::is_fatal`] == `false`) leaves the
/// stream aligned on the next frame boundary.
///
/// # Errors
///
/// * [`WireError::Closed`] — clean EOF between frames.
/// * [`WireError::Truncated`] / [`WireError::Io`] — the stream died mid-frame.
/// * [`WireError::BadMagic`] / [`WireError::Oversized`] — framing cannot be
///   trusted; close the connection.
/// * [`WireError::BadVersion`] / [`WireError::Malformed`] — recoverable; the
///   peer should answer an error frame and keep reading.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    read_exactly(r, &mut header, true)?;
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    let type_code = u16::from_le_bytes([header[6], header[7]]);
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exactly(r, &mut payload, false)?;
    // Version is checked only after the payload is drained: a
    // wrong-version frame is then recoverable — the stream is still aligned.
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    decode_payload(type_code, &payload)
}
