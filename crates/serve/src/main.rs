//! Command-line entry point of the prediction service.
//!
//! ```text
//! autopower-serve serve          --model FILE [--model FILE ...] [--addr HOST:PORT]
//!                                [--workers N] [--max-batch N] [--max-wait-us N] [--fast]
//! autopower-serve predict-remote --addr HOST:PORT [--kind NAME] [--count N]
//!                                [--seed N] [--workloads a,b,c]
//! autopower-serve predict-local  --model FILE [--fast] [--count N] [--seed N]
//!                                [--workloads a,b,c]
//! autopower-serve info|reload|shutdown --addr HOST:PORT
//! ```
//!
//! `serve` cold-starts from saved model files (written by
//! `autopower-experiments save-model`) and prints the bound address —
//! `--addr 127.0.0.1:0` picks an ephemeral port, which is how the CI smoke
//! runs it.  `predict-remote` and `predict-local` print the **same report
//! for the same inputs**: every value is rendered with its raw IEEE-754 bit
//! pattern, so a byte-for-byte `diff` of the two outputs proves the served
//! predictions are bit-identical to the offline sweep, not merely close.
//! The sampled configurations are deterministic in `--count`/`--seed`, so
//! client and offline runs agree on the inputs without sharing state.

use autopower::{load_model, ModelKind, SweepEngine, SweepSpec};
use autopower_config::{CpuConfig, DesignSpace, Workload};
use autopower_serve::client::{Client, RetryPolicy};
use autopower_serve::protocol::ServedPoint;
use autopower_serve::server::{ServeOptions, Server};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Default configurations sampled by the predict verbs.
const DEFAULT_COUNT: usize = 8;

/// Default design-space sampling seed of the predict verbs.
const DEFAULT_SEED: u64 = 7;

/// Default workload list of the predict verbs.
const DEFAULT_WORKLOADS: &str = "dhrystone,qsort";

/// The usage string, with model and workload names derived from the
/// registries so help text cannot drift.
fn usage() -> String {
    let models: Vec<&str> = ModelKind::ALL
        .iter()
        .map(|kind| kind.registry_name())
        .collect();
    let workloads: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
    format!(
        "usage: autopower-serve serve --model FILE [--model FILE ...] [--addr HOST:PORT] \
         [--workers N] [--max-batch N] [--max-wait-us N] [--max-queue N] \
         [--idle-timeout-ms N] [--io-timeout-ms N] [--watch-models-ms N] [--fast]\n\
         \x20      autopower-serve predict-remote --addr HOST:PORT [--kind NAME] [--count N] \
         [--seed N] [--workloads a,b,c] [--retries N] [--timeout-ms N]\n\
         \x20      autopower-serve predict-local --model FILE [--fast] [--count N] [--seed N] \
         [--workloads a,b,c]\n\
         \x20      autopower-serve info|ping|reload|shutdown --addr HOST:PORT\n\
         serve loads saved models (autopower-experiments save-model) and answers predict \
         requests until a shutdown request drains it; --addr defaults to 127.0.0.1:0 (an \
         ephemeral port; the bound address is printed), --workers 0 means one per core, \
         --max-wait-us 0 dispatches each request immediately, --max-queue bounds queued \
         points before requests are shed as overloaded (0 = unbounded), --idle-timeout-ms \
         drops idle connections (0 = keep forever), --io-timeout-ms bounds each mid-frame \
         read/write (0 = no deadline), --watch-models-ms hot-reloads when a model file's \
         mtime changes\n\
         predict-remote retries transient failures (resets, overload, draining) --retries \
         times with jittered exponential backoff; --timeout-ms bounds each attempt's socket \
         I/O\n\
         ping prints a live health snapshot (queued points, in-flight points, workers)\n\
         predict-remote and predict-local print bit-exact reports over the same \
         deterministically sampled configurations, so their outputs diff clean when the \
         server serves the same model file under the same (--fast or paper) settings\n\
         kinds: {}\n\
         workloads: {} (default: {DEFAULT_WORKLOADS})",
        models.join(", "),
        workloads.join(", "),
    )
}

/// One parsed invocation.
#[derive(Debug, PartialEq)]
enum Command {
    /// Run the server until drained.
    Serve {
        models: Vec<PathBuf>,
        addr: String,
        workers: usize,
        max_batch: usize,
        max_wait_us: u64,
        max_queue: usize,
        idle_timeout_ms: u64,
        io_timeout_ms: u64,
        watch_models_ms: Option<u64>,
        fault_seed: Option<u64>,
        fast: bool,
    },
    /// Score sampled configurations against a running server.
    PredictRemote {
        addr: String,
        kind: Option<ModelKind>,
        count: usize,
        seed: u64,
        workloads: Vec<Workload>,
        retries: u32,
        timeout_ms: u64,
    },
    /// Score the same sampled configurations offline — the diff reference.
    PredictLocal {
        model: PathBuf,
        fast: bool,
        count: usize,
        seed: u64,
        workloads: Vec<Workload>,
    },
    /// Print what a running server serves.
    Info { addr: String },
    /// Print a running server's live health snapshot.
    Ping { addr: String },
    /// Ask a running server to re-read its model files.
    Reload { addr: String },
    /// Ask a running server to drain and exit.
    Shutdown { addr: String },
    /// Print usage.
    Help,
}

fn parse_number<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value.parse::<T>().map_err(|_| {
        format!(
            "{flag} needs a non-negative integer, got '{value}'\n{}",
            usage()
        )
    })
}

/// Parses a comma-separated workload list against [`Workload::ALL`] names.
fn parse_workloads(list: &str) -> Result<Vec<Workload>, String> {
    list.split(',')
        .map(|name| {
            let name = name.trim();
            Workload::ALL
                .iter()
                .copied()
                .find(|w| w.name() == name)
                .ok_or_else(|| format!("unknown workload '{name}'\n{}", usage()))
        })
        .collect()
}

/// Parses the argument list (verb first, flags after, `--flag value` form).
fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Command, String> {
    let mut iter = args.into_iter();
    let verb = match iter.next() {
        Some(v) => v,
        None => return Ok(Command::Help),
    };
    if verb == "--help" || verb == "-h" {
        return Ok(Command::Help);
    }

    // Flag accumulators shared across verbs; each verb validates what it
    // consumes and rejects what it does not.
    let mut models: Vec<PathBuf> = Vec::new();
    let mut addr: Option<String> = None;
    let mut workers = 0usize;
    let mut max_batch = ServeOptions::paper().max_batch;
    let mut max_wait_us = 0u64;
    let mut max_queue = ServeOptions::paper().max_queue;
    let mut idle_timeout_ms = ServeOptions::paper().idle_timeout.as_millis() as u64;
    let mut io_timeout_ms = ServeOptions::paper().io_timeout.as_millis() as u64;
    let mut watch_models_ms: Option<u64> = None;
    let mut fault_seed: Option<u64> = None;
    let mut fast = false;
    let mut kind: Option<ModelKind> = None;
    let mut count = DEFAULT_COUNT;
    let mut seed = DEFAULT_SEED;
    let mut workloads = parse_workloads(DEFAULT_WORKLOADS).expect("default workloads parse");
    let mut retries = 0u32;
    let mut timeout_ms = 0u64;
    let mut seen: Vec<String> = Vec::new();

    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| -> Result<String, String> {
            iter.next()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(Command::Help),
            "--fast" => fast = true,
            "--model" => models.push(PathBuf::from(value_for("--model")?)),
            "--addr" => addr = Some(value_for("--addr")?),
            "--workers" => workers = parse_number(&value_for("--workers")?, "--workers")?,
            "--max-batch" => {
                max_batch = parse_number(&value_for("--max-batch")?, "--max-batch")?;
                if max_batch == 0 {
                    return Err(format!("--max-batch must be at least 1\n{}", usage()));
                }
            }
            "--max-wait-us" => {
                max_wait_us = parse_number(&value_for("--max-wait-us")?, "--max-wait-us")?;
            }
            "--max-queue" => {
                max_queue = parse_number(&value_for("--max-queue")?, "--max-queue")?;
            }
            "--idle-timeout-ms" => {
                idle_timeout_ms =
                    parse_number(&value_for("--idle-timeout-ms")?, "--idle-timeout-ms")?;
            }
            "--io-timeout-ms" => {
                io_timeout_ms = parse_number(&value_for("--io-timeout-ms")?, "--io-timeout-ms")?;
            }
            "--watch-models-ms" => {
                let interval: u64 =
                    parse_number(&value_for("--watch-models-ms")?, "--watch-models-ms")?;
                if interval == 0 {
                    return Err(format!("--watch-models-ms must be at least 1\n{}", usage()));
                }
                watch_models_ms = Some(interval);
            }
            // Deliberately undocumented: arms deterministic fault injection
            // for chaos tests and the CI chaos smoke.
            "--fault-seed" => {
                fault_seed = Some(parse_number(&value_for("--fault-seed")?, "--fault-seed")?);
            }
            "--retries" => retries = parse_number(&value_for("--retries")?, "--retries")?,
            "--timeout-ms" => {
                timeout_ms = parse_number(&value_for("--timeout-ms")?, "--timeout-ms")?;
            }
            "--kind" => {
                let name = value_for("--kind")?;
                kind = Some(
                    name.parse::<ModelKind>()
                        .map_err(|e| format!("{e}\n{}", usage()))?,
                );
            }
            "--count" => {
                count = parse_number(&value_for("--count")?, "--count")?;
                if count == 0 {
                    return Err(format!("--count must be at least 1\n{}", usage()));
                }
            }
            "--seed" => seed = parse_number(&value_for("--seed")?, "--seed")?,
            "--workloads" => workloads = parse_workloads(&value_for("--workloads")?)?,
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
        seen.push(arg);
    }

    let reject = |allowed: &[&str], seen: &[String]| -> Result<(), String> {
        for flag in seen {
            if !allowed.contains(&flag.as_str()) {
                return Err(format!("'{flag}' does not apply to '{verb}'\n{}", usage()));
            }
        }
        Ok(())
    };
    let required_addr = |addr: Option<String>| -> Result<String, String> {
        addr.ok_or_else(|| format!("'{verb}' needs --addr HOST:PORT\n{}", usage()))
    };

    match verb.as_str() {
        "serve" => {
            reject(
                &[
                    "--model",
                    "--addr",
                    "--workers",
                    "--max-batch",
                    "--max-wait-us",
                    "--max-queue",
                    "--idle-timeout-ms",
                    "--io-timeout-ms",
                    "--watch-models-ms",
                    "--fault-seed",
                    "--fast",
                ],
                &seen,
            )?;
            if models.is_empty() {
                return Err(format!(
                    "serve needs at least one --model FILE\n{}",
                    usage()
                ));
            }
            Ok(Command::Serve {
                models,
                addr: addr.unwrap_or_else(|| "127.0.0.1:0".to_owned()),
                workers,
                max_batch,
                max_wait_us,
                max_queue,
                idle_timeout_ms,
                io_timeout_ms,
                watch_models_ms,
                fault_seed,
                fast,
            })
        }
        "predict-remote" => {
            reject(
                &[
                    "--addr",
                    "--kind",
                    "--count",
                    "--seed",
                    "--workloads",
                    "--retries",
                    "--timeout-ms",
                ],
                &seen,
            )?;
            Ok(Command::PredictRemote {
                addr: required_addr(addr)?,
                kind,
                count,
                seed,
                workloads,
                retries,
                timeout_ms,
            })
        }
        "predict-local" => {
            reject(
                &["--model", "--fast", "--count", "--seed", "--workloads"],
                &seen,
            )?;
            if models.len() != 1 {
                return Err(format!(
                    "predict-local needs exactly one --model FILE\n{}",
                    usage()
                ));
            }
            Ok(Command::PredictLocal {
                model: models.remove(0),
                fast,
                count,
                seed,
                workloads,
            })
        }
        "info" => {
            reject(&["--addr"], &seen)?;
            Ok(Command::Info {
                addr: required_addr(addr)?,
            })
        }
        "ping" => {
            reject(&["--addr"], &seen)?;
            Ok(Command::Ping {
                addr: required_addr(addr)?,
            })
        }
        "reload" => {
            reject(&["--addr"], &seen)?;
            Ok(Command::Reload {
                addr: required_addr(addr)?,
            })
        }
        "shutdown" => {
            reject(&["--addr"], &seen)?;
            Ok(Command::Shutdown {
                addr: required_addr(addr)?,
            })
        }
        other => Err(format!("unknown verb '{other}'\n{}", usage())),
    }
}

/// The deterministic inputs both predict verbs score: `count` generated
/// configurations sampled at `seed` from the BOOM design space.
fn sampled_configs(count: usize, seed: u64) -> Vec<CpuConfig> {
    DesignSpace::boom().sample(count, seed)
}

/// Renders one prediction report.  Every floating-point value carries its
/// raw bit pattern, so two reports diff byte-for-byte equal **iff** the
/// predictions are bit-identical.
fn render_report(
    kind: ModelKind,
    configs: &[CpuConfig],
    workloads: &[Workload],
    points: &[ServedPoint],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "model {kind}: {} configs x {} workloads ({} points)",
        configs.len(),
        workloads.len(),
        points.len()
    );
    for (i, config) in configs.iter().enumerate() {
        for (j, workload) in workloads.iter().enumerate() {
            let point = &points[i * workloads.len() + j];
            let total = point.power.total();
            let _ = write!(
                out,
                "{} {} ipc {:016x} total {:016x} ({:.6} mW)",
                config.id,
                workload.name(),
                point.ipc.to_bits(),
                total.to_bits(),
                total
            );
            if let Some(groups) = point.power.groups() {
                let _ = write!(
                    out,
                    " groups {:016x} {:016x} {:016x} {:016x}",
                    groups.clock.to_bits(),
                    groups.sram.to_bits(),
                    groups.register.to_bits(),
                    groups.combinational.to_bits()
                );
            }
            if let Some(breakdown) = point.power.components() {
                let _ = write!(out, " components");
                for (_, entry) in breakdown.iter() {
                    let _ = write!(out, " {:016x}", entry.total.to_bits());
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            println!("{}", usage());
            Ok(())
        }
        Command::Serve {
            models,
            addr,
            workers,
            max_batch,
            max_wait_us,
            max_queue,
            idle_timeout_ms,
            io_timeout_ms,
            watch_models_ms,
            fault_seed,
            fast,
        } => {
            let base = if fast {
                ServeOptions::fast()
            } else {
                ServeOptions::paper()
            };
            let options = ServeOptions {
                workers,
                max_batch,
                max_wait: Duration::from_micros(max_wait_us),
                max_queue,
                idle_timeout: Duration::from_millis(idle_timeout_ms),
                io_timeout: Duration::from_millis(io_timeout_ms),
                watch_models: watch_models_ms.map(Duration::from_millis),
                fault_seed,
                ..base
            };
            if let Some(seed) = fault_seed {
                eprintln!(
                    "autopower-serve: deterministic fault injection armed (seed {seed}) — \
                     test mode, not for production"
                );
            }
            let server =
                Server::start(addr.as_str(), models, options).map_err(|e| e.to_string())?;
            println!(
                "autopower-serve listening on {} ({} workers, max-batch {}, max-wait {}us)",
                server.addr(),
                options.effective_workers(),
                options.max_batch,
                max_wait_us
            );
            server.join().map_err(|e| e.to_string())
        }
        Command::PredictRemote {
            addr,
            kind,
            count,
            seed,
            workloads,
            retries,
            timeout_ms,
        } => {
            // Jitter is seeded from the sampling seed so a retried run is
            // reproducible end to end.
            let policy = RetryPolicy {
                attempts: retries.saturating_add(1),
                seed,
                timeout: Duration::from_millis(timeout_ms),
                ..RetryPolicy::none()
            };
            let mut client =
                Client::connect_with(addr.as_str(), policy).map_err(|e| e.to_string())?;
            let kind = match kind {
                Some(kind) => kind,
                None => {
                    // No --kind: take the server's word, but only when it is
                    // unambiguous.
                    let info = client.info().map_err(|e| e.to_string())?;
                    match info.kinds.as_slice() {
                        [only] => *only,
                        many => {
                            let names: Vec<&str> = many.iter().map(|k| k.registry_name()).collect();
                            return Err(format!(
                                "server serves several models ({}); pick one with --kind",
                                names.join(", ")
                            ));
                        }
                    }
                }
            };
            let configs = sampled_configs(count, seed);
            let points = client
                .predict(kind, &configs, &workloads)
                .map_err(|e| e.to_string())?;
            print!("{}", render_report(kind, &configs, &workloads, &points));
            Ok(())
        }
        Command::PredictLocal {
            model,
            fast,
            count,
            seed,
            workloads,
        } => {
            let model = load_model(&model).map_err(|e| e.to_string())?;
            let spec = if fast {
                SweepSpec::fast()
            } else {
                SweepSpec::paper()
            };
            let configs = sampled_configs(count, seed);
            let engine = SweepEngine::new(model.as_ref(), spec);
            let points: Vec<ServedPoint> = engine
                .run(&configs, &workloads)
                .into_iter()
                .map(|p| ServedPoint {
                    power: p.power,
                    ipc: p.ipc,
                })
                .collect();
            print!(
                "{}",
                render_report(model.kind(), &configs, &workloads, &points)
            );
            Ok(())
        }
        Command::Info { addr } => {
            let mut client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
            let info = client.info().map_err(|e| e.to_string())?;
            let kinds: Vec<&str> = info.kinds.iter().map(|k| k.registry_name()).collect();
            println!(
                "serving: {} ({} workers, max-batch {}, max-wait {}us)",
                kinds.join(", "),
                info.workers,
                info.max_batch,
                info.max_wait_us
            );
            Ok(())
        }
        Command::Ping { addr } => {
            let mut client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
            let health = client.ping().map_err(|e| e.to_string())?;
            let bound = if health.max_queue == 0 {
                "unbounded".to_owned()
            } else {
                health.max_queue.to_string()
            };
            println!(
                "healthy: {} points queued (bound {}), {} in flight, {} workers",
                health.queued_points, bound, health.in_flight_points, health.workers
            );
            Ok(())
        }
        Command::Reload { addr } => {
            let mut client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
            let kinds = client.reload().map_err(|e| e.to_string())?;
            let names: Vec<&str> = kinds.iter().map(|k| k.registry_name()).collect();
            println!("reloaded: {}", names.join(", "));
            Ok(())
        }
        Command::Shutdown { addr } => {
            let mut client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
            client.shutdown().map_err(|e| e.to_string())?;
            println!("shutdown acknowledged; server is draining");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(command) => match run(command) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn serve_parses_with_defaults_and_repeated_models() {
        let parsed = parse(&["serve", "--model", "a.apm", "--model", "b.apm", "--fast"]).unwrap();
        assert_eq!(
            parsed,
            Command::Serve {
                models: vec![PathBuf::from("a.apm"), PathBuf::from("b.apm")],
                addr: "127.0.0.1:0".to_owned(),
                workers: 0,
                max_batch: ServeOptions::paper().max_batch,
                max_wait_us: 0,
                max_queue: ServeOptions::paper().max_queue,
                idle_timeout_ms: 0,
                io_timeout_ms: 10_000,
                watch_models_ms: None,
                fault_seed: None,
                fast: true,
            }
        );
    }

    #[test]
    fn serve_parses_hardening_flags_and_hidden_fault_seed() {
        let parsed = parse(&[
            "serve",
            "--model",
            "a.apm",
            "--max-queue",
            "128",
            "--idle-timeout-ms",
            "30000",
            "--io-timeout-ms",
            "2500",
            "--watch-models-ms",
            "200",
            "--fault-seed",
            "77",
        ])
        .unwrap();
        assert_eq!(
            parsed,
            Command::Serve {
                models: vec![PathBuf::from("a.apm")],
                addr: "127.0.0.1:0".to_owned(),
                workers: 0,
                max_batch: ServeOptions::paper().max_batch,
                max_wait_us: 0,
                max_queue: 128,
                idle_timeout_ms: 30_000,
                io_timeout_ms: 2_500,
                watch_models_ms: Some(200),
                fault_seed: Some(77),
                fast: false,
            }
        );
        // Hidden: armed via the flag, absent from the help text.
        assert!(!usage().contains("--fault-seed"));
        assert!(parse(&["serve", "--model", "a.apm", "--watch-models-ms", "0"]).is_err());
    }

    #[test]
    fn serve_without_models_is_rejected() {
        assert!(parse(&["serve"]).unwrap_err().contains("--model"));
    }

    #[test]
    fn predict_remote_parses_kind_and_workloads() {
        let parsed = parse(&[
            "predict-remote",
            "--addr",
            "127.0.0.1:9000",
            "--kind",
            "mcpat-calib",
            "--count",
            "3",
            "--seed",
            "11",
            "--workloads",
            "gemm,vvadd",
        ])
        .unwrap();
        assert_eq!(
            parsed,
            Command::PredictRemote {
                addr: "127.0.0.1:9000".to_owned(),
                kind: Some(ModelKind::McpatCalib),
                count: 3,
                seed: 11,
                workloads: vec![Workload::Gemm, Workload::Vvadd],
                retries: 0,
                timeout_ms: 0,
            }
        );
    }

    #[test]
    fn predict_remote_parses_retry_flags() {
        let parsed = parse(&[
            "predict-remote",
            "--addr",
            "x:1",
            "--retries",
            "5",
            "--timeout-ms",
            "1500",
        ])
        .unwrap();
        match parsed {
            Command::PredictRemote {
                retries,
                timeout_ms,
                ..
            } => {
                assert_eq!(retries, 5);
                assert_eq!(timeout_ms, 1500);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Retry flags are client-side: the server verbs reject them.
        let err = parse(&["serve", "--model", "a.apm", "--retries", "2"]).unwrap_err();
        assert!(err.contains("does not apply"));
    }

    #[test]
    fn ping_parses_and_requires_addr() {
        assert_eq!(
            parse(&["ping", "--addr", "x:1"]).unwrap(),
            Command::Ping {
                addr: "x:1".to_owned()
            }
        );
        assert!(parse(&["ping"]).unwrap_err().contains("--addr"));
    }

    #[test]
    fn predict_remote_requires_addr() {
        assert!(parse(&["predict-remote"]).unwrap_err().contains("--addr"));
    }

    #[test]
    fn unknown_workload_and_kind_fail_at_parse_time() {
        let err = parse(&[
            "predict-remote",
            "--addr",
            "x:1",
            "--workloads",
            "dhrystone,nope",
        ])
        .unwrap_err();
        assert!(err.contains("unknown workload 'nope'"));
        let err = parse(&["predict-remote", "--addr", "x:1", "--kind", "nope"]).unwrap_err();
        assert!(err.to_lowercase().contains("unknown model"));
    }

    #[test]
    fn flags_are_scoped_to_their_verb() {
        let err = parse(&["info", "--addr", "x:1", "--count", "3"]).unwrap_err();
        assert!(err.contains("does not apply"));
        let err = parse(&["serve", "--model", "a.apm", "--kind", "autopower"]).unwrap_err();
        assert!(err.contains("does not apply"));
    }

    #[test]
    fn predict_local_needs_exactly_one_model() {
        let err = parse(&["predict-local"]).unwrap_err();
        assert!(err.contains("exactly one --model"));
        let parsed = parse(&["predict-local", "--model", "a.apm", "--fast"]).unwrap();
        assert_eq!(
            parsed,
            Command::PredictLocal {
                model: PathBuf::from("a.apm"),
                fast: true,
                count: DEFAULT_COUNT,
                seed: DEFAULT_SEED,
                workloads: vec![Workload::Dhrystone, Workload::Qsort],
            }
        );
    }

    #[test]
    fn zero_counts_are_rejected() {
        assert!(parse(&["predict-remote", "--addr", "x:1", "--count", "0"]).is_err());
        assert!(parse(&["serve", "--model", "a.apm", "--max-batch", "0"]).is_err());
    }
}
