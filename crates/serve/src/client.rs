//! The client library: one blocking connection, typed request/response pairs.
//!
//! Used by the `predict-remote` CLI verb, the serve load-generator bench and
//! the integration tests — anything that talks to a running
//! [`Server`](crate::server::Server).  One [`Client`] owns one TCP
//! connection and pipelines nothing: every method writes one frame and reads
//! one frame, so errors map one-to-one onto requests.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Frame, ServedPoint, ServerInfo, WireError, MAX_CONFIGS,
    MAX_POINTS, MAX_WORKLOADS,
};
use autopower::ModelKind;
use autopower_config::{CpuConfig, Workload};
use std::net::{TcpStream, ToSocketAddrs};

/// Everything a request can fail with, client-side.
#[derive(Debug)]
pub enum ClientError {
    /// The connection could not be opened or died mid-request.
    Io(std::io::Error),
    /// The server's bytes did not parse as a frame.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The request was refused locally before anything hit the wire
    /// (empty batch, protocol limits exceeded).
    Request(String),
    /// The server answered with a frame type this request does not expect.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Wire(e) => write!(f, "bad response: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused ({code}): {message}")
            }
            ClientError::Request(m) => write!(f, "invalid request: {m}"),
            ClientError::Unexpected(what) => {
                write!(f, "unexpected response frame: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            other => ClientError::Wire(other),
        }
    }
}

/// A blocking connection to a prediction server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connection cannot be opened.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// One request/response exchange.
    fn roundtrip(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.stream, request)?;
        Ok(read_frame(&mut self.stream)?)
    }

    /// Scores `configs × workloads` under `kind` on the server.  The points
    /// come back configuration-major in request order — the same order as an
    /// offline [`SweepEngine::run`](autopower::SweepEngine::run) over the
    /// same slices — and bit-identical to it.
    ///
    /// # Errors
    ///
    /// [`ClientError::Request`] for an empty or over-limit batch (checked
    /// locally), [`ClientError::Server`] for a typed server refusal
    /// (unknown model, draining, internal failure), [`ClientError::Io`] /
    /// [`ClientError::Wire`] for transport trouble.
    pub fn predict(
        &mut self,
        kind: ModelKind,
        configs: &[CpuConfig],
        workloads: &[Workload],
    ) -> Result<Vec<ServedPoint>, ClientError> {
        if configs.is_empty() || configs.len() > MAX_CONFIGS {
            return Err(ClientError::Request(format!(
                "config count {} out of range (1..={MAX_CONFIGS})",
                configs.len()
            )));
        }
        if workloads.is_empty() || workloads.len() > MAX_WORKLOADS {
            return Err(ClientError::Request(format!(
                "workload count {} out of range (1..={MAX_WORKLOADS})",
                workloads.len()
            )));
        }
        let expected = configs.len() * workloads.len();
        if expected > MAX_POINTS {
            return Err(ClientError::Request(format!(
                "{} configs x {} workloads exceeds the {MAX_POINTS}-point limit",
                configs.len(),
                workloads.len()
            )));
        }
        let request = Frame::PredictRequest {
            kind,
            configs: configs.to_vec(),
            workloads: workloads.to_vec(),
        };
        match self.roundtrip(&request)? {
            Frame::PredictResponse { points } => {
                if points.len() != expected {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "expected {expected} points, server sent {}",
                        points.len()
                    ))));
                }
                Ok(points)
            }
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("wanted predict-response")),
        }
    }

    /// Asks the server what it is serving and under which knobs.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`Client::predict`].
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        match self.roundtrip(&Frame::Info)? {
            Frame::InfoResponse(info) => Ok(info),
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("wanted info-response")),
        }
    }

    /// Asks the server to re-read its model files and swap them in
    /// atomically; returns the freshly loaded kinds.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::ReloadFailed`] when any
    /// file refuses to load (the message names the file; the old models
    /// keep serving).
    pub fn reload(&mut self) -> Result<Vec<ModelKind>, ClientError> {
        match self.roundtrip(&Frame::Reload)? {
            Frame::ReloadResponse { kinds } => Ok(kinds),
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("wanted reload-response")),
        }
    }

    /// Asks the server to drain and exit.  Returns once the server has
    /// acknowledged; pair with [`Server::join`](crate::server::Server::join)
    /// to wait for the exit itself.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`Client::predict`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Frame::Shutdown)? {
            Frame::ShutdownResponse => Ok(()),
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("wanted shutdown-response")),
        }
    }
}
