//! The client library: one logical connection, typed request/response pairs,
//! optional retry with deterministic backoff.
//!
//! Used by the `predict-remote` CLI verb, the serve load-generator bench and
//! the integration tests — anything that talks to a running
//! [`Server`](crate::server::Server).  One [`Client`] owns one TCP
//! connection and pipelines nothing: every method writes one frame and reads
//! one frame, so errors map one-to-one onto requests.
//!
//! # Retry semantics
//!
//! A [`RetryPolicy`] makes the *idempotent* verbs ([`Client::predict`],
//! [`Client::info`], [`Client::ping`]) transparent over transient trouble:
//! connection resets reconnect, [`ErrorCode::Overloaded`] and
//! [`ErrorCode::Draining`] refusals (and [`ErrorCode::Internal`] scoring
//! failures) back off and try again, and each attempt runs under its own
//! socket deadline.  Backoff is exponential with *deterministic* seeded
//! jitter — same policy, same seed, same delays, so chaos tests replay
//! exactly.  The non-idempotent verbs ([`Client::reload`],
//! [`Client::shutdown`]) retry only the *connect* step: once the request has
//! hit the wire the server may have acted on it, and replaying it is not the
//! client's call to make.

use crate::faults::mix;
use crate::protocol::{
    read_frame, write_frame, ErrorCode, Frame, ServedPoint, ServerHealth, ServerInfo, WireError,
    MAX_CONFIGS, MAX_POINTS, MAX_WORKLOADS,
};
use autopower::ModelKind;
use autopower_config::{CpuConfig, Workload};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How (and whether) a [`Client`] retries.  `attempts` counts *total* tries:
/// `1` means fail on the first error, the [`RetryPolicy::none`] default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (minimum 1).
    pub attempts: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the jitter stream — same seed, same delays.
    pub seed: u64,
    /// Per-attempt socket read/write deadline; [`Duration::ZERO`] disables.
    pub timeout: Duration,
}

impl RetryPolicy {
    /// No retries, no per-attempt deadline — the pre-PR-10 behaviour.
    pub fn none() -> Self {
        Self {
            attempts: 1,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            seed: 0,
            timeout: Duration::ZERO,
        }
    }

    /// `attempts` total tries with the default backoff shape.
    pub fn with_attempts(attempts: u32) -> Self {
        Self {
            attempts: attempts.max(1),
            ..Self::none()
        }
    }

    /// The deterministic sleep before retry number `retry` (1-based):
    /// exponential growth from `base_backoff`, capped at `max_backoff`,
    /// jittered into `[50%, 100%]` of the capped value by a pure function
    /// of `seed` and `retry`.
    pub fn backoff_before(&self, retry: u32) -> Duration {
        let doublings = retry.saturating_sub(1).min(16);
        let full = self
            .base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff);
        let h = mix(self.seed ^ mix(u64::from(retry)));
        // 512..=1023 over 1024 keeps the fraction in [50%, 100%).
        let num = 512 + (h % 512) as u32;
        full.saturating_mul(num) / 1024
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Everything a request can fail with, client-side.
#[derive(Debug)]
pub enum ClientError {
    /// The connection could not be opened or died mid-request.
    Io(std::io::Error),
    /// The server's bytes did not parse as a frame.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The request was refused locally before anything hit the wire
    /// (empty batch, protocol limits exceeded).
    Request(String),
    /// The server answered with a frame type this request does not expect.
    Unexpected(&'static str),
}

impl ClientError {
    /// Whether a retry might change the outcome: transport failures, framing
    /// desync, and the server's own "try later" answers (overloaded,
    /// draining) or transient scoring failures.  Local validation errors and
    /// typed refusals like `UnknownModel` are deterministic — retrying them
    /// only wastes the budget.
    fn retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Wire(e) => e.is_fatal(),
            ClientError::Server { code, .. } => matches!(
                code,
                ErrorCode::Overloaded | ErrorCode::Draining | ErrorCode::Internal
            ),
            ClientError::Request(_) | ClientError::Unexpected(_) => false,
        }
    }

    /// Whether the connection can no longer be trusted after this error —
    /// either the transport broke mid-frame or the server answers-and-closes
    /// for this code (overload shed, drain refusal).
    fn poisons_connection(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Wire(e) => e.is_fatal(),
            ClientError::Server { code, .. } => {
                matches!(code, ErrorCode::Overloaded | ErrorCode::Draining)
            }
            ClientError::Request(_) | ClientError::Unexpected(_) => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Wire(e) => write!(f, "bad response: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused ({code}): {message}")
            }
            ClientError::Request(m) => write!(f, "invalid request: {m}"),
            ClientError::Unexpected(what) => {
                write!(f, "unexpected response frame: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            other => ClientError::Wire(other),
        }
    }
}

/// A blocking connection to a prediction server.  Remembers the resolved
/// address so a broken connection can be re-dialled mid-retry.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    policy: RetryPolicy,
    stream: Option<TcpStream>,
}

impl Client {
    /// Connects to a running server with no retries ([`RetryPolicy::none`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connection cannot be opened.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, RetryPolicy::none())
    }

    /// Connects with an explicit retry policy.  The initial dial itself is
    /// retried under the policy, like any other connect step.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connection cannot be opened within the
    /// policy's attempt budget.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> Result<Self, ClientError> {
        // Resolve once so retries re-dial the same endpoint the first
        // attempt reached (or was aiming at).
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Request("address resolved to nothing".to_owned()))?;
        let mut client = Self {
            addr,
            policy,
            stream: None,
        };
        let mut retry = 0;
        loop {
            match client.ensure_stream() {
                Ok(()) => return Ok(client),
                Err(e) => {
                    retry += 1;
                    if retry >= client.policy.attempts.max(1) {
                        return Err(e);
                    }
                    std::thread::sleep(client.policy.backoff_before(retry));
                }
            }
        }
    }

    /// The resolved server address this client dials.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Dials the remembered address if no live connection is held.
    fn ensure_stream(&mut self) -> Result<(), ClientError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        let deadline = (!self.policy.timeout.is_zero()).then_some(self.policy.timeout);
        stream.set_read_timeout(deadline)?;
        stream.set_write_timeout(deadline)?;
        self.stream = Some(stream);
        Ok(())
    }

    /// One request/response exchange on the held connection.
    fn roundtrip(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        let result = (|| -> Result<Frame, ClientError> {
            self.ensure_stream()?;
            let stream = self.stream.as_mut().expect("ensure_stream just connected");
            write_frame(stream, request)?;
            Ok(read_frame(stream)?)
        })();
        if let Err(e) = &result {
            if e.poisons_connection() {
                self.stream = None;
            }
        }
        result
    }

    /// Runs `request` under the retry policy.  When `idempotent` is false
    /// only the connect step is retried: a request that already hit the wire
    /// is never replayed.
    fn with_retries<T>(
        &mut self,
        idempotent: bool,
        request: impl Fn(&mut Self) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let attempts = self.policy.attempts.max(1);
        let mut retry = 0;
        loop {
            let error = match self.ensure_stream() {
                // Connect failures are always safe to retry.
                Err(e) => e,
                Ok(()) => match request(self) {
                    Ok(value) => return Ok(value),
                    Err(e) => {
                        if e.poisons_connection() {
                            self.stream = None;
                        }
                        if !idempotent || !e.retryable() {
                            return Err(e);
                        }
                        e
                    }
                },
            };
            retry += 1;
            if retry >= attempts {
                return Err(error);
            }
            std::thread::sleep(self.policy.backoff_before(retry));
        }
    }

    /// Scores `configs × workloads` under `kind` on the server.  The points
    /// come back configuration-major in request order — the same order as an
    /// offline [`SweepEngine::run`](autopower::SweepEngine::run) over the
    /// same slices — and bit-identical to it.  Idempotent: retried
    /// transparently under the policy, reconnecting as needed.
    ///
    /// # Errors
    ///
    /// [`ClientError::Request`] for an empty or over-limit batch (checked
    /// locally), [`ClientError::Server`] for a typed server refusal
    /// (unknown model, draining, internal failure), [`ClientError::Io`] /
    /// [`ClientError::Wire`] for transport trouble — the latter three only
    /// after the retry budget is spent.
    pub fn predict(
        &mut self,
        kind: ModelKind,
        configs: &[CpuConfig],
        workloads: &[Workload],
    ) -> Result<Vec<ServedPoint>, ClientError> {
        if configs.is_empty() || configs.len() > MAX_CONFIGS {
            return Err(ClientError::Request(format!(
                "config count {} out of range (1..={MAX_CONFIGS})",
                configs.len()
            )));
        }
        if workloads.is_empty() || workloads.len() > MAX_WORKLOADS {
            return Err(ClientError::Request(format!(
                "workload count {} out of range (1..={MAX_WORKLOADS})",
                workloads.len()
            )));
        }
        let expected = configs.len() * workloads.len();
        if expected > MAX_POINTS {
            return Err(ClientError::Request(format!(
                "{} configs x {} workloads exceeds the {MAX_POINTS}-point limit",
                configs.len(),
                workloads.len()
            )));
        }
        let request = Frame::PredictRequest {
            kind,
            configs: configs.to_vec(),
            workloads: workloads.to_vec(),
        };
        self.with_retries(true, |client| match client.roundtrip(&request)? {
            Frame::PredictResponse { points } => {
                if points.len() != expected {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "expected {expected} points, server sent {}",
                        points.len()
                    ))));
                }
                Ok(points)
            }
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("wanted predict-response")),
        })
    }

    /// Asks the server what it is serving and under which knobs.
    /// Idempotent: retried transparently under the policy.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`Client::predict`].
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        self.with_retries(true, |client| match client.roundtrip(&Frame::Info)? {
            Frame::InfoResponse(info) => Ok(info),
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("wanted info-response")),
        })
    }

    /// Asks the server for a live health snapshot: queue depth, in-flight
    /// points, worker count, queue bound.  Idempotent: retried transparently
    /// under the policy.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`Client::predict`].
    pub fn ping(&mut self) -> Result<ServerHealth, ClientError> {
        self.with_retries(true, |client| match client.roundtrip(&Frame::Ping)? {
            Frame::PingResponse(health) => Ok(health),
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("wanted ping-response")),
        })
    }

    /// Asks the server to re-read its model files and swap them in
    /// atomically; returns the freshly loaded kinds.  **Not idempotent**:
    /// only the connect step is retried — once the reload request has hit
    /// the wire a failure is reported, never silently replayed.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::ReloadFailed`] when any
    /// file refuses to load (the message names the file; the old models
    /// keep serving).
    pub fn reload(&mut self) -> Result<Vec<ModelKind>, ClientError> {
        self.with_retries(false, |client| match client.roundtrip(&Frame::Reload)? {
            Frame::ReloadResponse { kinds } => Ok(kinds),
            Frame::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("wanted reload-response")),
        })
    }

    /// Asks the server to drain and exit.  Returns once the server has
    /// acknowledged; pair with [`Server::join`](crate::server::Server::join)
    /// to wait for the exit itself.  **Not idempotent**: only the connect
    /// step is retried.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`Client::predict`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.with_retries(false, |client| {
            match client.roundtrip(&Frame::Shutdown)? {
                Frame::ShutdownResponse => Ok(()),
                Frame::Error { code, message } => Err(ClientError::Server { code, message }),
                _ => Err(ClientError::Unexpected("wanted shutdown-response")),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            seed: 42,
            timeout: Duration::ZERO,
        };
        let replay = policy;
        for retry in 1..=16 {
            let d = policy.backoff_before(retry);
            assert_eq!(d, replay.backoff_before(retry), "same seed, same delay");
            assert!(d <= policy.max_backoff);
            // Jitter floor: at least half the capped exponential value.
            let full = policy
                .base_backoff
                .saturating_mul(1u32 << (retry - 1).min(16))
                .min(policy.max_backoff);
            assert!(d >= full / 2);
        }
        let other_seed = RetryPolicy { seed: 43, ..policy };
        assert!(
            (1..=16).any(|r| policy.backoff_before(r) != other_seed.backoff_before(r)),
            "different seeds should jitter differently"
        );
    }
}
