//! End-to-end invariance of the design-space sweep: the simulation cache and
//! the worker count are pure performance knobs — every combination scores the
//! exact same points, bit for bit.

use autopower::{AutoPower, Corpus, CorpusSpec, SweepEngine, SweepPoint, SweepSpec};
use autopower_config::{boom_configs, ConfigId, DesignSpace, Workload};

fn trained_model() -> AutoPower {
    let cfgs = boom_configs();
    let corpus = Corpus::generate(
        &[cfgs[0], cfgs[14]],
        &[Workload::Dhrystone, Workload::Vvadd],
        &CorpusSpec::fast(),
    );
    AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)]).unwrap()
}

fn run_sweep(model: &AutoPower, spec: SweepSpec) -> Vec<SweepPoint> {
    // A generated space plus the paper's named configurations, so the sweep
    // crosses both sampled and hand-picked parameter combinations.
    let mut configs = DesignSpace::boom().sample(8, 2025);
    configs.extend_from_slice(&boom_configs()[..4]);
    let workloads = [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];
    SweepEngine::new(model, spec).run(&configs, &workloads)
}

#[test]
fn sweep_is_bit_identical_with_and_without_cache_at_any_thread_count() {
    let model = trained_model();
    // Cache off, serial, single-configuration shards: the historical
    // reference behaviour every other combination must reproduce exactly.
    let reference = run_sweep(
        &model,
        SweepSpec {
            chunk_configs: 1,
            ..SweepSpec::fast().threads(1).sim_cache(false)
        },
    );
    for threads in [1, 2, 8] {
        for cached in [false, true] {
            let points = run_sweep(&model, SweepSpec::fast().threads(threads).sim_cache(cached));
            assert_eq!(
                reference, points,
                "sweep diverged at threads={threads}, cache={cached}"
            );
        }
    }
}
