//! Property tests of the streaming sweep path: for ANY chunking, stop point,
//! top-k and sketch capacity, the bounded-memory aggregation reproduces the
//! materialized `summarize` + `rank_by_efficiency` results bit for bit, and a
//! sweep interrupted at a chunk boundary — its state round-tripped through the
//! checkpoint codec — resumes to the exact one-shot aggregate.
//!
//! The scored points are generated once (training and simulating in every one
//! of the 48 property cases would be prohibitively slow) — the properties vary
//! only the aggregation knobs, which is exactly the surface streaming adds on
//! top of the already-pinned scoring path.

use autopower::codec::{Codec, Reader, Writer};
use autopower::{
    rank_by_efficiency, summarize, AutoPower, Corpus, CorpusSpec, PowerSeries, StreamSpec,
    SweepAggregator, SweepEngine, SweepPoint, SweepSpec,
};
use autopower_config::{boom_configs, ConfigId, DesignSpace, Workload};
use proptest::prelude::*;
use std::sync::OnceLock;

const WORKLOADS: [Workload; 2] = [Workload::Dhrystone, Workload::Qsort];
const CONFIGS: usize = 24;

/// The one-time-scored point set every property case slices: 24 generated
/// configurations x 2 workloads under a model trained on C1+C15.
fn points() -> &'static [SweepPoint] {
    static POINTS: OnceLock<Vec<SweepPoint>> = OnceLock::new();
    POINTS.get_or_init(|| {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        let model = AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let configs = DesignSpace::boom().sample(CONFIGS, 0x5EED);
        let points =
            SweepEngine::new(&model, SweepSpec::fast().threads(1)).run(&configs, &WORKLOADS);
        assert_eq!(points.len(), CONFIGS * WORKLOADS.len());
        points
    })
}

/// Nearest-rank quantile over an ascending series — the materialized report's
/// rule, restated independently of the sketch.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

proptest! {
    /// Streaming aggregation over any prefix of the sweep, at any top-k and
    /// sketch capacity, matches the materialized summaries: same top-k table
    /// (bit for bit), exact quantiles equal to nearest-rank over the totals.
    #[test]
    fn streaming_matches_materialized_for_any_knobs(
        n_configs in 1usize..25,
        top_k in 1usize..12,
        level_capacity in 8usize..200,
    ) {
        let per_config = WORKLOADS.len();
        let slice = &points()[..n_configs * per_config];
        let summaries = summarize(slice, per_config);

        let spec = StreamSpec { top_k, sketch_level_capacity: level_capacity };
        let mut agg = SweepAggregator::new(per_config, &spec);
        for point in slice {
            agg.push(point.clone());
        }
        prop_assert_eq!(agg.configs_folded(), n_configs as u64);
        prop_assert_eq!(agg.pending_points(), 0);

        // Top-k is the stable efficiency ranking truncated to k.
        let expected: Vec<_> = rank_by_efficiency(&summaries)
            .into_iter()
            .take(top_k)
            .collect();
        let got = agg.top();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g.config.id, e.config.id);
            prop_assert_eq!(
                g.energy_per_instruction.to_bits(),
                e.energy_per_instruction.to_bits()
            );
        }

        // While the sketch is exact (guaranteed here: n_configs < capacity),
        // its quantiles equal the materialized nearest-rank table and the
        // extrema are exact.
        let mut totals: Vec<f64> = summaries.iter().map(|s| s.mean_total).collect();
        totals.sort_by(f64::total_cmp);
        let series = agg.series(PowerSeries::Total);
        if series.sketch().is_exact() {
            for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let got = series.quantile(q).unwrap();
                prop_assert_eq!(got.to_bits(), nearest_rank(&totals, q).to_bits());
            }
        }
        prop_assert_eq!(series.min(), Some(totals[0]));
        prop_assert_eq!(series.max(), Some(*totals.last().unwrap()));
    }

    /// Killing the fold at ANY configuration boundary, serializing the
    /// aggregator through the checkpoint codec, and resuming in a fresh
    /// aggregator reproduces the uninterrupted aggregate exactly — top table,
    /// sketches, Pareto frontier, the works.
    #[test]
    fn resume_from_any_chunk_boundary_is_bit_identical(
        n_configs in 1usize..25,
        split in 0usize..25,
        top_k in 1usize..8,
    ) {
        prop_assume!(split <= n_configs);
        let per_config = WORKLOADS.len();
        let slice = &points()[..n_configs * per_config];
        let spec = StreamSpec { top_k, sketch_level_capacity: 16 };

        let mut one_shot = SweepAggregator::new(per_config, &spec);
        for point in slice {
            one_shot.push(point.clone());
        }

        // Fold the head, round-trip through the text codec ("the process
        // died; the checkpoint is all that survives"), fold the tail.
        let mut head = SweepAggregator::new(per_config, &spec);
        for point in &slice[..split * per_config] {
            head.push(point.clone());
        }
        let mut w = Writer::new();
        head.encode(&mut w);
        let text = w.finish();
        let mut r = Reader::new(&text);
        let mut resumed = SweepAggregator::decode(&mut r).expect("checkpoint decodes");
        r.expect_eof().expect("no trailing checkpoint bytes");
        for point in &slice[split * per_config..] {
            resumed.push(point.clone());
        }

        prop_assert_eq!(resumed, one_shot);
    }
}
