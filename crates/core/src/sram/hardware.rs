//! The scaling-pattern-based SRAM Block hardware model.
//!
//! The model's insight (Section II-B): SRAM Blocks scale with hardware parameters in two
//! general patterns — *capacity scaling* (total bits grow linearly with some parameter
//! product) and *throughput scaling* (width × count grows linearly with some parameter
//! product).  To find the pattern, the model tries every combination of the component's
//! hardware parameters, fits a directly-proportional function on the known
//! configurations, and keeps the combination with minimal error (Table I walks through
//! the IFU metadata-table example).

use crate::dataset::Corpus;
use crate::error::AutoPowerError;
use crate::serialize::{decode_hw_param, decode_position, encode_hw_param, encode_position};
use autopower_config::{ConfigId, CpuConfig, HwParam, SramPositionId};
use serde::codec::{Codec, CodecError, Reader, Writer};
use serde::Serialize;

/// A fitted directly-proportional scaling rule: `target ≈ coefficient · Π params`.
///
/// An empty parameter list models a constant target (the product over an empty set is 1).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScalingRule {
    /// The hardware parameters whose product the target scales with.
    pub params: Vec<HwParam>,
    /// The proportionality coefficient `k`.
    pub coefficient: f64,
    /// Maximum relative error over the training configurations.
    pub relative_error: f64,
}

impl ScalingRule {
    /// Evaluates the rule for a configuration.
    pub fn predict(&self, config: &CpuConfig) -> f64 {
        let product: f64 = self
            .params
            .iter()
            .map(|&p| config.params.value(p) as f64)
            .product();
        self.coefficient * product
    }

    /// Fits one candidate combination on `(config, target)` samples.
    fn fit_combo(combo: &[HwParam], samples: &[(&CpuConfig, f64)]) -> ScalingRule {
        // Least-squares through the origin on the products: k = Σ x·y / Σ x².
        let mut num = 0.0;
        let mut den = 0.0;
        for (config, target) in samples {
            let x: f64 = combo
                .iter()
                .map(|&p| config.params.value(p) as f64)
                .product();
            num += x * target;
            den += x * x;
        }
        let coefficient = if den > 0.0 { num / den } else { 0.0 };
        let relative_error = samples
            .iter()
            .map(|(config, target)| {
                let x: f64 = combo
                    .iter()
                    .map(|&p| config.params.value(p) as f64)
                    .product();
                if *target != 0.0 {
                    ((coefficient * x - target) / target).abs()
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max);
        ScalingRule {
            params: combo.to_vec(),
            coefficient,
            relative_error,
        }
    }

    /// Fits the best scaling rule over all non-empty combinations of `candidates`.
    ///
    /// Combinations are tried in order of increasing size and, within a size, in the
    /// order the parameters appear in the component's Table III list; the first
    /// combination achieving the minimal error wins, so simpler rules are preferred.
    pub fn fit_best(candidates: &[HwParam], samples: &[(&CpuConfig, f64)]) -> Option<ScalingRule> {
        if candidates.is_empty() || samples.is_empty() {
            return None;
        }
        // The empty combination models a constant target (e.g. a fixed tag width); it is
        // the simplest candidate and is tried first.
        let mut combos: Vec<Vec<HwParam>> = vec![Vec::new()];
        let n = candidates.len();
        for mask in 1u32..(1 << n) {
            let combo: Vec<HwParam> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| candidates[i])
                .collect();
            combos.push(combo);
        }
        combos.sort_by_key(|c| c.len());
        let mut best: Option<ScalingRule> = None;
        for combo in combos {
            let rule = Self::fit_combo(&combo, samples);
            let better = match &best {
                None => true,
                Some(b) => rule.relative_error < b.relative_error - 1e-9,
            };
            if better {
                best = Some(rule);
            }
        }
        best
    }
}

impl Codec for ScalingRule {
    fn encode(&self, w: &mut Writer) {
        w.begin("scaling-rule");
        w.begin_list("params", self.params.len());
        for &param in &self.params {
            encode_hw_param(w, param);
        }
        w.end();
        w.f64("coefficient", self.coefficient);
        w.f64("relative_error", self.relative_error);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("scaling-rule")?;
        let len = r.begin_list("params")?;
        let mut params = Vec::with_capacity(len);
        for _ in 0..len {
            params.push(decode_hw_param(r)?);
        }
        r.end()?;
        let coefficient = r.f64("coefficient")?;
        let relative_error = r.f64("relative_error")?;
        r.end()?;
        Ok(Self {
            params,
            coefficient,
            relative_error,
        })
    }
}

/// Predicted shape of the SRAM Blocks of one position for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PredictedBlock {
    /// Predicted block width in bits.
    pub width: u32,
    /// Predicted block depth in words.
    pub depth: u32,
    /// Predicted number of identical blocks.
    pub count: u32,
}

impl PredictedBlock {
    /// Predicted capacity in bits.
    pub fn bits(&self) -> u64 {
        self.width as u64 * self.depth as u64 * self.count as u64
    }
}

/// The hardware model of one SRAM Position: fitted scaling rules for capacity,
/// throughput and width, from which width/depth/count are derived.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PositionHardwareModel {
    position: SramPositionId,
    /// Rule for the total capacity (width × depth × count).
    pub capacity: ScalingRule,
    /// Rule for the throughput (width × count).
    pub throughput: ScalingRule,
    /// Rule for the block width.
    pub width: ScalingRule,
}

impl PositionHardwareModel {
    /// Fits the hardware model of `position` from the training configurations' netlists.
    ///
    /// # Errors
    ///
    /// Returns [`AutoPowerError::NoScalingRule`] if no rule can be fitted (no training
    /// configurations or the position has no blocks).
    pub fn fit(
        position: SramPositionId,
        corpus: &Corpus,
        train_configs: &[ConfigId],
    ) -> Result<Self, AutoPowerError> {
        let mut capacity_samples = Vec::new();
        let mut throughput_samples = Vec::new();
        let mut width_samples = Vec::new();
        for &id in train_configs {
            let runs = corpus.runs_for(id);
            let Some(run) = runs.first() else { continue };
            let Some(block) = run
                .netlist
                .component(position.component)
                .blocks_of(position)
            else {
                continue;
            };
            capacity_samples.push((&run.config, block.bits() as f64));
            throughput_samples.push((&run.config, block.throughput_bits() as f64));
            width_samples.push((&run.config, block.width as f64));
        }
        let candidates = position.component.hw_params();
        let capacity = ScalingRule::fit_best(candidates, &capacity_samples)
            .ok_or(AutoPowerError::NoScalingRule(position))?;
        let throughput = ScalingRule::fit_best(candidates, &throughput_samples)
            .ok_or(AutoPowerError::NoScalingRule(position))?;
        let width = ScalingRule::fit_best(candidates, &width_samples)
            .ok_or(AutoPowerError::NoScalingRule(position))?;
        Ok(Self {
            position,
            capacity,
            throughput,
            width,
        })
    }

    /// The position this model describes.
    pub fn position(&self) -> SramPositionId {
        self.position
    }

    /// Predicts the block shape for a configuration.
    ///
    /// Count is the throughput divided by the width, depth is the capacity divided by
    /// the throughput (as in the paper's Table I walk-through); all three are rounded to
    /// the nearest positive integer.
    pub fn predict_block(&self, config: &CpuConfig) -> PredictedBlock {
        let capacity = self.capacity.predict(config).max(1.0);
        let throughput = self.throughput.predict(config).max(1.0);
        let width = self.width.predict(config).max(1.0);
        let count = (throughput / width).round().max(1.0);
        let depth = (capacity / throughput).round().max(1.0);
        PredictedBlock {
            width: width.round().max(1.0) as u32,
            depth: depth as u32,
            count: count as u32,
        }
    }
}

impl Codec for PositionHardwareModel {
    fn encode(&self, w: &mut Writer) {
        w.begin("position-hardware");
        encode_position(w, self.position);
        self.capacity.encode(w);
        self.throughput.encode(w);
        self.width.encode(w);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("position-hardware")?;
        let position = decode_position(r)?;
        let capacity = ScalingRule::decode(r)?;
        let throughput = ScalingRule::decode(r)?;
        let width = ScalingRule::decode(r)?;
        r.end()?;
        Ok(Self {
            position,
            capacity,
            throughput,
            width,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use autopower_config::{boom_configs, Component, Workload};

    #[test]
    fn fit_best_reproduces_the_table_i_example() {
        // Table I: metadata table of the IFU; known configurations C1 and C15.
        let cfgs = boom_configs();
        let c1 = cfgs[0];
        let c15 = cfgs[14];
        // Capacities: width*depth*count with width = 30*FW, depth = 8*DW.
        let samples = vec![(&c1, 120.0 * 8.0), (&c15, 240.0 * 40.0)];
        let rule = ScalingRule::fit_best(Component::Ifu.hw_params(), &samples).unwrap();
        // The capacity scales with FetchWidth * DecodeWidth with coefficient 240.
        assert_eq!(rule.params, vec![HwParam::FetchWidth, HwParam::DecodeWidth]);
        assert!((rule.coefficient - 240.0).abs() < 1e-9);
        assert!(rule.relative_error < 1e-9);
    }

    #[test]
    fn simpler_combinations_win_ties() {
        let cfgs = boom_configs();
        // A target proportional to FetchWidth alone; {FetchWidth} and any superset fit
        // with zero error, the single-parameter rule must be chosen.
        let samples: Vec<(&autopower_config::CpuConfig, f64)> =
            vec![(&cfgs[0], 4.0 * 7.0), (&cfgs[14], 8.0 * 7.0)];
        let rule =
            ScalingRule::fit_best(&[HwParam::FetchWidth, HwParam::DecodeWidth], &samples).unwrap();
        assert_eq!(rule.params, vec![HwParam::FetchWidth]);
    }

    #[test]
    fn hardware_model_generalises_across_the_design_space() {
        // With three known configurations every scaling ambiguity of the evaluated design
        // space resolves and the model recovers every block capacity exactly; with only
        // two, positions whose candidate parameters are identical on both training
        // configurations (e.g. IntPhyRegister vs FpPhyRegister on C1/C15) stay within a
        // small relative error.
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[4], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone],
            &CorpusSpec::fast(),
        );
        let run = corpus.run(ConfigId::new(8), Workload::Dhrystone).unwrap();
        let three = [ConfigId::new(1), ConfigId::new(5), ConfigId::new(15)];
        let two = [ConfigId::new(1), ConfigId::new(15)];
        for position in autopower_config::sram_positions() {
            let truth = run
                .netlist
                .component(position.id.component)
                .blocks_of(position.id)
                .unwrap();
            let model3 = PositionHardwareModel::fit(position.id, &corpus, &three).unwrap();
            assert_eq!(
                model3.predict_block(&run.config).bits(),
                truth.bits(),
                "{}",
                position.id
            );
            let model2 = PositionHardwareModel::fit(position.id, &corpus, &two).unwrap();
            let predicted = model2.predict_block(&run.config).bits() as f64;
            let rel = (predicted - truth.bits() as f64).abs() / truth.bits() as f64;
            assert!(rel < 0.2, "{}: relative capacity error {rel}", position.id);
        }
    }

    #[test]
    fn missing_training_data_is_an_error() {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(&[cfgs[0]], &[Workload::Dhrystone], &CorpusSpec::fast());
        let pos = autopower_config::sram_positions()[0].id;
        let err = PositionHardwareModel::fit(pos, &corpus, &[]);
        assert!(matches!(err, Err(AutoPowerError::NoScalingRule(_))));
    }

    #[test]
    fn predicted_blocks_are_always_positive() {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone],
            &CorpusSpec::fast(),
        );
        let train = [ConfigId::new(1), ConfigId::new(15)];
        for position in autopower_config::sram_positions() {
            let model = PositionHardwareModel::fit(position.id, &corpus, &train).unwrap();
            for cfg in &boom_configs() {
                let b = model.predict_block(cfg);
                assert!(b.width >= 1 && b.depth >= 1 && b.count >= 1);
            }
        }
    }
}
