//! The SRAM power model (Section II-B of the paper).
//!
//! SRAM power is modelled top-down along the four-level hierarchy
//! `Component → SRAM Position → SRAM Block → SRAM Macro`:
//!
//! 1. features are transferred from the component to each of its SRAM Positions,
//! 2. a scaling-pattern [`PositionHardwareModel`] estimates the width/depth/count of the
//!    SRAM Blocks implementing the position,
//! 3. an ML [`SramActivityModel`] estimates the block-level read/write frequencies,
//! 4. the macro-level mapping of the VLSI flow converts block shapes and frequencies into
//!    macro shapes and frequencies (Eq. 9), and the technology library's read/write
//!    energies give the power (Eq. 10).

mod activity;
mod hardware;
mod mapping;

pub use activity::SramActivityModel;
pub use hardware::{PositionHardwareModel, PredictedBlock, ScalingRule};
pub use mapping::predicted_block_power_mw;

use crate::dataset::Corpus;
use crate::error::AutoPowerError;
use crate::features::{batch_feature_matrix, FeatureScratch, ModelFeatures};
use crate::power_model::PredictInput;
use autopower_config::{Component, ConfigId, CpuConfig, SramPositionId, Workload};
use autopower_perfsim::EventParams;
use autopower_techlib::TechLibrary;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// Sub-models of one SRAM Position.
#[derive(Debug, Clone)]
struct PositionModel {
    hardware: PositionHardwareModel,
    activity: SramActivityModel,
}

/// The SRAM power model: one hardware + activity model per SRAM Position, plus the
/// pin-toggling constant `C` of Eq. 10 calibrated from golden power.
#[derive(Debug, Clone)]
pub struct SramPowerModel {
    positions: Vec<PositionModel>,
    pin_constant_mw: f64,
    feature_mode: ModelFeatures,
}

impl SramPowerModel {
    /// Trains the SRAM model on the runs of `train_configs` with the paper's full
    /// feature set (hardware + events + program-level features).
    ///
    /// # Errors
    ///
    /// Returns an error if training data is missing or a sub-model cannot be fitted.
    pub fn train(corpus: &Corpus, train_configs: &[ConfigId]) -> Result<Self, AutoPowerError> {
        Self::train_with_features(corpus, train_configs, ModelFeatures::HW_EVENTS_PROGRAM)
    }

    /// Trains the SRAM model with an explicit feature mode (used by the program-level
    /// feature ablation).
    ///
    /// # Errors
    ///
    /// Returns an error if training data is missing or a sub-model cannot be fitted.
    pub fn train_with_features(
        corpus: &Corpus,
        train_configs: &[ConfigId],
        feature_mode: ModelFeatures,
    ) -> Result<Self, AutoPowerError> {
        if train_configs.is_empty() {
            return Err(AutoPowerError::NoTrainingConfigs);
        }
        for id in train_configs {
            if corpus.runs_for(*id).is_empty() {
                return Err(AutoPowerError::MissingConfig(*id));
            }
        }

        let mut positions = Vec::new();
        for position in autopower_config::sram_positions() {
            let hardware = PositionHardwareModel::fit(position.id, corpus, train_configs)?;
            let activity =
                SramActivityModel::train(position.id, corpus, train_configs, feature_mode)?;
            positions.push(PositionModel { hardware, activity });
        }

        let pin_constant_mw = Self::calibrate_pin_constant(corpus, train_configs);

        Ok(Self {
            positions,
            pin_constant_mw,
            feature_mode,
        })
    }

    /// Calibrates the pin-toggling constant `C` of Eq. 10 from the golden SRAM power of
    /// the training runs: the average per-block-instance residual between golden SRAM
    /// power and the read/write/leakage part reconstructed from true blocks and true
    /// activity.
    fn calibrate_pin_constant(corpus: &Corpus, train_configs: &[ConfigId]) -> f64 {
        let library = corpus.library();
        let mut residual_sum = 0.0;
        let mut instance_sum = 0.0;
        for run in corpus.training_runs(train_configs) {
            for component in Component::ALL {
                let netlist = run.netlist.component(component);
                if netlist.sram_blocks.is_empty() {
                    continue;
                }
                let golden = run.golden.component(component).sram;
                let mut modeled = 0.0;
                let mut instances = 0.0;
                for block in &netlist.sram_blocks {
                    let act = run
                        .sim
                        .activity
                        .position(block.position)
                        .expect("catalogue positions always have activity");
                    let predicted = PredictedBlock {
                        width: block.width,
                        depth: block.depth,
                        count: block.count,
                    };
                    modeled += mapping::predicted_block_power_mw(
                        &predicted,
                        act.reads_per_cycle / block.count as f64,
                        act.writes_per_cycle / block.count as f64,
                        0.0,
                        library,
                    );
                    instances += block.count as f64;
                }
                residual_sum += (golden - modeled).max(0.0);
                instance_sum += instances;
            }
        }
        if instance_sum > 0.0 {
            residual_sum / instance_sum
        } else {
            0.0
        }
    }

    fn position_model(&self, position: SramPositionId) -> Option<&PositionModel> {
        self.positions
            .iter()
            .find(|p| p.hardware.position() == position)
    }

    /// The calibrated pin-toggling constant `C` of Eq. 10, in mW per block instance.
    pub fn pin_constant_mw(&self) -> f64 {
        self.pin_constant_mw
    }

    /// The feature mode the activity models were trained with.
    pub fn feature_mode(&self) -> ModelFeatures {
        self.feature_mode
    }

    /// Predicted SRAM Block shape of one position (the hardware-model output).
    ///
    /// Returns `None` for positions that are not in the catalogue.
    pub fn predict_block(
        &self,
        position: SramPositionId,
        config: &CpuConfig,
    ) -> Option<PredictedBlock> {
        self.position_model(position)
            .map(|m| m.hardware.predict_block(config))
    }

    /// Predicted power of one SRAM Position in mW.
    ///
    /// Returns `None` for positions that are not in the catalogue.
    pub fn predict_position(
        &self,
        position: SramPositionId,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        library: &TechLibrary,
    ) -> Option<f64> {
        self.predict_position_with(
            position,
            config,
            events,
            workload,
            library,
            &mut FeatureScratch::new(),
        )
    }

    /// [`SramPowerModel::predict_position`] with a reusable feature scratch
    /// (the allocation-free batch-inference path).
    pub fn predict_position_with(
        &self,
        position: SramPositionId,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        library: &TechLibrary,
        scratch: &mut FeatureScratch,
    ) -> Option<f64> {
        let model = self.position_model(position)?;
        Some(Self::predict_model_with(
            model,
            self.pin_constant_mw,
            config,
            events,
            workload,
            library,
            scratch,
        ))
    }

    /// Predicted SRAM power of one component in mW (sum over its SRAM Positions).
    pub fn predict_component(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        library: &TechLibrary,
    ) -> f64 {
        self.predict_component_with(
            component,
            config,
            events,
            workload,
            library,
            &mut FeatureScratch::new(),
        )
    }

    /// [`SramPowerModel::predict_component`] with a reusable feature scratch.
    ///
    /// Iterates the fitted position models directly (they are stored in
    /// catalogue order, the same order [`sram_positions_for`](autopower_config::sram_positions_for) yields), so the
    /// hot sweep path does no per-call catalogue filtering or allocation.
    pub fn predict_component_with(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        library: &TechLibrary,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        self.positions
            .iter()
            .filter(|m| m.hardware.position().component == component)
            .map(|m| {
                Self::predict_model_with(
                    m,
                    self.pin_constant_mw,
                    config,
                    events,
                    workload,
                    library,
                    scratch,
                )
            })
            .sum()
    }

    /// Predicted power of one fitted position model in mW.
    fn predict_model_with(
        model: &PositionModel,
        pin_constant_mw: f64,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        library: &TechLibrary,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        let block = model.hardware.predict_block(config);
        let (reads, writes) = model
            .activity
            .predict_with(config, events, workload, scratch);
        mapping::predicted_block_power_mw(&block, reads, writes, pin_constant_mw, library)
    }

    /// Predicted SRAM power of the whole core in mW.
    pub fn predict(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        library: &TechLibrary,
    ) -> f64 {
        self.predict_with(
            config,
            events,
            workload,
            library,
            &mut FeatureScratch::new(),
        )
    }

    /// [`SramPowerModel::predict`] with a reusable feature scratch.
    pub fn predict_with(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        library: &TechLibrary,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        Component::ALL
            .iter()
            .map(|&c| self.predict_component_with(c, config, events, workload, library, scratch))
            .sum()
    }

    /// Accumulates the whole-core SRAM power of every point into `acc`
    /// (`acc[i] += P_sram(points[i])`), scoring forest-major: per component,
    /// one shared feature matrix feeds every position's read and write
    /// ensembles over the entire batch, keeping each ensemble's nodes
    /// cache-resident.  Bit-identical to [`SramPowerModel::predict_with`] per
    /// point: per-component subtotals are folded position by position from
    /// `0.0` and then added to `acc` in [`Component::ALL`] order — exactly the
    /// nested left-to-right summation of the per-point path.
    pub(crate) fn predict_batch_into(
        &self,
        points: &[PredictInput<'_>],
        library: &TechLibrary,
        scratch: &mut FeatureScratch,
        acc: &mut [f64],
    ) {
        debug_assert_eq!(points.len(), acc.len());
        if points.is_empty() {
            return;
        }
        let mut subtotal = vec![0.0; points.len()];
        let mut reads = Vec::with_capacity(points.len());
        let mut writes = Vec::with_capacity(points.len());
        for &component in Component::ALL.iter() {
            subtotal.fill(0.0);
            // Built lazily: components without SRAM positions never pay for
            // feature assembly.
            let mut matrix = None;
            for model in self
                .positions
                .iter()
                .filter(|m| m.hardware.position().component == component)
            {
                if model.activity.feature_mode() == self.feature_mode {
                    let x = matrix.get_or_insert_with(|| {
                        batch_feature_matrix(self.feature_mode, component, points)
                    });
                    model
                        .activity
                        .predict_batch_into(x, &mut reads, &mut writes);
                    for (i, p) in points.iter().enumerate() {
                        let block = model.hardware.predict_block(p.config);
                        subtotal[i] += mapping::predicted_block_power_mw(
                            &block,
                            reads[i].max(0.0),
                            writes[i].max(0.0),
                            self.pin_constant_mw,
                            library,
                        );
                    }
                } else {
                    // A position whose activity model carries a different
                    // feature mode than the model-level one (only reachable
                    // through hand-edited serialized models): score it point
                    // by point on the exact per-point path.
                    for (i, p) in points.iter().enumerate() {
                        subtotal[i] += Self::predict_model_with(
                            model,
                            self.pin_constant_mw,
                            p.config,
                            p.events,
                            p.workload,
                            library,
                            scratch,
                        );
                    }
                }
            }
            for (a, s) in acc.iter_mut().zip(&subtotal) {
                *a += *s;
            }
        }
    }
}

impl Codec for PositionModel {
    fn encode(&self, w: &mut Writer) {
        w.begin("position-model");
        self.hardware.encode(w);
        self.activity.encode(w);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("position-model")?;
        let hardware = PositionHardwareModel::decode(r)?;
        let activity = SramActivityModel::decode(r)?;
        r.end()?;
        Ok(Self { hardware, activity })
    }
}

impl Codec for SramPowerModel {
    fn encode(&self, w: &mut Writer) {
        w.begin("sram");
        w.f64("pin_constant_mw", self.pin_constant_mw);
        self.feature_mode.encode(w);
        w.begin_list("positions", self.positions.len());
        for position in &self.positions {
            position.encode(w);
        }
        w.end();
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("sram")?;
        let pin_constant_mw = r.f64("pin_constant_mw")?;
        let feature_mode = ModelFeatures::decode(r)?;
        let len = r.begin_list("positions")?;
        let mut positions = Vec::with_capacity(len);
        for _ in 0..len {
            positions.push(PositionModel::decode(r)?);
        }
        r.end()?;
        r.end()?;
        Ok(Self {
            positions,
            pin_constant_mw,
            feature_mode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use autopower_config::{boom_configs, sram_positions_for, Workload};
    use autopower_ml::metrics;

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn hardware_model_recovers_block_capacities() {
        let c = corpus();
        let model = SramPowerModel::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        // On the held-out configuration the predicted block capacities should match the
        // true netlist capacities (the paper reports "nearly 0 MAPE" for the hardware
        // model); a small number of positions whose candidate parameters coincide on the
        // two training configurations may carry a bounded relative error.
        let run = c.run(ConfigId::new(8), Workload::Dhrystone).unwrap();
        let mut exact = 0usize;
        let mut total = 0usize;
        for component in Component::ALL {
            for block in &run.netlist.component(component).sram_blocks {
                let predicted = model.predict_block(block.position, &run.config).unwrap();
                total += 1;
                if predicted.bits() == block.bits() {
                    exact += 1;
                } else {
                    let rel =
                        (predicted.bits() as f64 - block.bits() as f64).abs() / block.bits() as f64;
                    assert!(rel < 0.2, "{}: relative error {rel}", block.position);
                }
            }
        }
        assert!(
            exact * 10 >= total * 8,
            "only {exact}/{total} positions exact"
        );
    }

    #[test]
    fn sram_power_prediction_tracks_golden_power() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let model = SramPowerModel::train(&c, &train).unwrap();
        let mut truths = Vec::new();
        let mut preds = Vec::new();
        for run in c.test_runs(&train) {
            truths.push(run.golden.total.sram);
            preds.push(model.predict(&run.config, &run.sim.events, run.workload, c.library()));
        }
        let mape = metrics::mape(&truths, &preds);
        assert!(mape < 0.30, "SRAM power MAPE {mape}");
    }

    #[test]
    fn pin_constant_is_close_to_the_golden_flow_constant() {
        // The golden flow uses 0.012 mW per block instance; calibration from golden
        // power should land near it.
        let c = corpus();
        let model = SramPowerModel::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let calibrated = model.pin_constant_mw();
        assert!(
            (calibrated - 0.012).abs() < 0.006,
            "calibrated C = {calibrated}"
        );
    }

    #[test]
    fn component_prediction_sums_positions() {
        let c = corpus();
        let model = SramPowerModel::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let run = c.run(ConfigId::new(8), Workload::Vvadd).unwrap();
        let by_positions: f64 = sram_positions_for(Component::Ifu)
            .into_iter()
            .map(|p| {
                model
                    .predict_position(
                        p.id,
                        &run.config,
                        &run.sim.events,
                        run.workload,
                        c.library(),
                    )
                    .unwrap()
            })
            .sum();
        let by_component = model.predict_component(
            Component::Ifu,
            &run.config,
            &run.sim.events,
            run.workload,
            c.library(),
        );
        assert!((by_positions - by_component).abs() < 1e-9);
        // Components without SRAM predict exactly zero.
        assert_eq!(
            model.predict_component(
                Component::FuPool,
                &run.config,
                &run.sim.events,
                run.workload,
                c.library()
            ),
            0.0
        );
    }

    #[test]
    fn ablation_feature_modes_are_respected() {
        let c = corpus();
        let full = SramPowerModel::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let no_prog = SramPowerModel::train_with_features(
            &c,
            &[ConfigId::new(1), ConfigId::new(15)],
            ModelFeatures::HW_EVENTS,
        )
        .unwrap();
        assert_eq!(full.feature_mode(), ModelFeatures::HW_EVENTS_PROGRAM);
        assert_eq!(no_prog.feature_mode(), ModelFeatures::HW_EVENTS);
    }
}
