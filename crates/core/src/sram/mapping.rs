//! Macro-level mapping and the final SRAM power calculation (Eqs. 9 and 10).

use crate::sram::hardware::PredictedBlock;
use autopower_techlib::TechLibrary;

/// Power of one SRAM Position in mW, computed from a *predicted* block shape and
/// *predicted* per-block read/write frequencies.
///
/// The mapping rule of the VLSI flow decomposes the block into a grid of supported
/// macros; a block access activates one horizontal row of macros, so each macro sees the
/// block frequency divided by the number of macros stacked in the depth direction
/// (`N_col`, Eq. 9).  The power is then the macro read/write energies weighted by the
/// macro frequencies, plus leakage, plus the calibrated pin-toggling constant
/// `pin_constant_mw` per block instance (the `C` of Eq. 10).
pub fn predicted_block_power_mw(
    block: &PredictedBlock,
    reads_per_cycle_per_block: f64,
    writes_per_cycle_per_block: f64,
    pin_constant_mw: f64,
    library: &TechLibrary,
) -> f64 {
    let mapping = library.sram().map_block(block.width, block.depth);
    let rows = mapping.rows as f64;
    // Eq. 9: per-macro frequencies are the block frequencies divided by N_col; summing
    // the per-macro power over the `rows * cols` macros is equivalent to multiplying the
    // block frequency by the number of macros in one activated row.
    let read_mw = reads_per_cycle_per_block.max(0.0) * rows * mapping.macro_spec.read_energy_pj;
    let write_mw = writes_per_cycle_per_block.max(0.0) * rows * mapping.macro_spec.write_energy_pj;
    let leakage_mw = library.sram().mapping_leakage_mw(&mapping);
    block.count as f64 * (read_mw + write_mw + leakage_mw + pin_constant_mw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> TechLibrary {
        TechLibrary::tsmc40_like()
    }

    #[test]
    fn power_grows_with_activity() {
        let block = PredictedBlock {
            width: 64,
            depth: 256,
            count: 2,
        };
        let idle = predicted_block_power_mw(&block, 0.0, 0.0, 0.01, &lib());
        let busy = predicted_block_power_mw(&block, 0.5, 0.2, 0.01, &lib());
        assert!(busy > idle);
        assert!(idle > 0.0, "leakage and pin constant remain");
    }

    #[test]
    fn power_scales_with_block_count() {
        let one = PredictedBlock {
            width: 32,
            depth: 128,
            count: 1,
        };
        let four = PredictedBlock { count: 4, ..one };
        let p1 = predicted_block_power_mw(&one, 0.25, 0.1, 0.01, &lib());
        let p4 = predicted_block_power_mw(&four, 0.25, 0.1, 0.01, &lib());
        assert!((p4 - 4.0 * p1).abs() < 1e-9);
    }

    #[test]
    fn negative_frequencies_are_clamped() {
        let block = PredictedBlock {
            width: 16,
            depth: 64,
            count: 1,
        };
        let p = predicted_block_power_mw(&block, -1.0, -1.0, 0.0, &lib());
        let leak_only = predicted_block_power_mw(&block, 0.0, 0.0, 0.0, &lib());
        assert_eq!(p, leak_only);
    }

    #[test]
    fn wide_blocks_activate_more_macros_per_access() {
        let narrow = PredictedBlock {
            width: 32,
            depth: 256,
            count: 1,
        };
        let wide = PredictedBlock {
            width: 256,
            depth: 256,
            count: 1,
        };
        let p_narrow = predicted_block_power_mw(&narrow, 1.0, 0.0, 0.0, &lib());
        let p_wide = predicted_block_power_mw(&wide, 1.0, 0.0, 0.0, &lib());
        assert!(p_wide > 2.0 * p_narrow);
    }
}
