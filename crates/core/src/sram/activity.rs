//! The SRAM Block activity model.
//!
//! Predicts the average per-block read and write frequencies of one SRAM Position from
//! the component's hardware parameters, its event parameters, and — unlike prior work —
//! microarchitecture-independent program-level features (Section II-B argues these make
//! the model robust to performance-simulator inaccuracy).

use crate::dataset::Corpus;
use crate::error::AutoPowerError;
use crate::features::{model_features_into, FeatureScratch, ModelFeatures};
use crate::serialize::{decode_position, encode_position};
use autopower_config::{ConfigId, CpuConfig, SramPositionId, Workload};
use autopower_ml::{GradientBoosting, Matrix, Regressor};
use autopower_perfsim::EventParams;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// Read/write frequency model of one SRAM Position.
#[derive(Debug, Clone)]
pub struct SramActivityModel {
    position: SramPositionId,
    feature_mode: ModelFeatures,
    read_model: GradientBoosting,
    write_model: GradientBoosting,
}

impl SramActivityModel {
    /// Trains the activity model of `position` on the training runs.
    ///
    /// Labels are the *block-level* read/write frequencies of the training netlists:
    /// the position-level access rates observed in RTL-level (here: golden activity)
    /// simulation divided by the true block count.
    ///
    /// # Errors
    ///
    /// Returns an error if the training set is empty or malformed.
    pub fn train(
        position: SramPositionId,
        corpus: &Corpus,
        train_configs: &[ConfigId],
        feature_mode: ModelFeatures,
    ) -> Result<Self, AutoPowerError> {
        let component = position.component;
        // One flat row-major matrix feeds both the read and the write fit.
        let mut data = Vec::new();
        let mut samples = 0usize;
        let mut read_targets = Vec::new();
        let mut write_targets = Vec::new();
        for run in corpus.training_runs(train_configs) {
            let Some(block) = run.netlist.component(component).blocks_of(position) else {
                continue;
            };
            let Some(activity) = run.sim.activity.position(position) else {
                continue;
            };
            let count = block.count as f64;
            model_features_into(
                feature_mode,
                component,
                &run.config,
                &run.sim.events,
                run.workload,
                &mut data,
            );
            samples += 1;
            read_targets.push(activity.reads_per_cycle / count);
            write_targets.push(activity.writes_per_cycle / count);
        }
        if samples == 0 {
            return Err(AutoPowerError::fit(component, "SRAM read frequency")(
                autopower_ml::FitError::EmptyTrainingSet,
            ));
        }
        let matrix = Matrix::from_flat(samples, data.len() / samples, data);
        let mut read_model = GradientBoosting::default();
        read_model
            .fit_matrix(&matrix, &read_targets)
            .map_err(AutoPowerError::fit(component, "SRAM read frequency"))?;
        let mut write_model = GradientBoosting::default();
        write_model
            .fit_matrix(&matrix, &write_targets)
            .map_err(AutoPowerError::fit(component, "SRAM write frequency"))?;
        Ok(Self {
            position,
            feature_mode,
            read_model,
            write_model,
        })
    }

    /// The position this model describes.
    pub fn position(&self) -> SramPositionId {
        self.position
    }

    /// The feature mode this model was trained with.
    pub fn feature_mode(&self) -> ModelFeatures {
        self.feature_mode
    }

    /// Scores a whole feature matrix (rows assembled exactly as
    /// [`SramActivityModel::predict_with`] assembles them) through the read
    /// and write ensembles.  Outputs are the *raw* ensemble predictions —
    /// bit-identical per row to `predict_row` — so the caller applies the
    /// same `.max(0.0)` clamp the per-point path does.
    pub(crate) fn predict_batch_into(
        &self,
        x: &Matrix,
        reads: &mut Vec<f64>,
        writes: &mut Vec<f64>,
    ) {
        self.read_model.forest().predict_into(x, reads);
        self.write_model.forest().predict_into(x, writes);
    }

    /// Predicts `(reads_per_cycle, writes_per_cycle)` per SRAM Block.
    pub fn predict(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> (f64, f64) {
        self.predict_with(config, events, workload, &mut FeatureScratch::new())
    }

    /// [`SramActivityModel::predict`] with a reusable feature scratch (the
    /// allocation-free batch-inference path).
    pub fn predict_with(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> (f64, f64) {
        let row = scratch.row_mut();
        model_features_into(
            self.feature_mode,
            self.position.component,
            config,
            events,
            workload,
            row,
        );
        (
            self.read_model.predict(row).max(0.0),
            self.write_model.predict(row).max(0.0),
        )
    }
}

impl Codec for SramActivityModel {
    fn encode(&self, w: &mut Writer) {
        w.begin("sram-activity");
        encode_position(w, self.position);
        self.feature_mode.encode(w);
        self.read_model.encode(w);
        self.write_model.encode(w);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("sram-activity")?;
        let position = decode_position(r)?;
        let feature_mode = ModelFeatures::decode(r)?;
        let read_model = GradientBoosting::decode(r)?;
        let write_model = GradientBoosting::decode(r)?;
        r.end()?;
        Ok(Self {
            position,
            feature_mode,
            read_model,
            write_model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use autopower_config::{boom_configs, sram_positions_for, Component};

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn predictions_are_non_negative_and_finite() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let pos = sram_positions_for(Component::ICacheDataArray)[0].id;
        let m =
            SramActivityModel::train(pos, &c, &train, ModelFeatures::HW_EVENTS_PROGRAM).unwrap();
        for run in c.runs() {
            let (r, w) = m.predict(&run.config, &run.sim.events, run.workload);
            assert!(r >= 0.0 && r.is_finite());
            assert!(w >= 0.0 && w.is_finite());
        }
    }

    #[test]
    fn read_frequency_prediction_correlates_with_truth() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let pos = sram_positions_for(Component::ICacheDataArray)[0].id;
        let m =
            SramActivityModel::train(pos, &c, &train, ModelFeatures::HW_EVENTS_PROGRAM).unwrap();
        let mut truth = Vec::new();
        let mut pred = Vec::new();
        for run in c.test_runs(&train) {
            let block = run
                .netlist
                .component(Component::ICacheDataArray)
                .blocks_of(pos)
                .unwrap();
            let act = run.sim.activity.position(pos).unwrap();
            truth.push(act.reads_per_cycle / block.count as f64);
            pred.push(m.predict(&run.config, &run.sim.events, run.workload).0);
        }
        // With one held-out configuration and three workloads we only ask for a sane
        // relative error, not a tight one.
        for (t, p) in truth.iter().zip(&pred) {
            assert!(
                (p - t).abs() <= t.max(0.01) * 1.2 + 0.05,
                "pred {p} truth {t}"
            );
        }
    }

    #[test]
    fn untrained_position_data_is_an_error() {
        let c = corpus();
        let pos = sram_positions_for(Component::ICacheDataArray)[0].id;
        assert!(SramActivityModel::train(pos, &c, &[], ModelFeatures::HW_EVENTS_PROGRAM).is_err());
    }
}
