//! The clock power model (Section II-A of the paper).
//!
//! Clock power is decoupled as `P_clk = R·(1−g)·p_reg + α′·R·g` (Eq. 7): the register
//! count `R` and gating rate `g` are predicted from hardware parameters with ridge
//! regression, the effective active rate `α′` (which folds in the per-register pin power
//! and the clock-gating-cell overhead of Eq. 6) is predicted from hardware *and* event
//! parameters with gradient-boosted trees, and `p_reg` is looked up from the technology
//! library.

use crate::dataset::{Corpus, RunData};
use crate::error::AutoPowerError;
use crate::features::{
    batch_feature_matrix, hw_features, hw_features_into, model_feature_matrix, model_features_into,
    FeatureScratch, ModelFeatures,
};
use crate::power_model::PredictInput;
use autopower_config::{Component, ConfigId, CpuConfig, Workload};
use autopower_ml::{GradientBoosting, Regressor, RidgeRegression};
use autopower_perfsim::EventParams;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// Per-component sub-models of the clock power model.
#[derive(Debug, Clone)]
struct ComponentClockModel {
    /// Register-count model `F_reg(H)`.
    freg: RidgeRegression,
    /// Gating-rate model `F_gate(H)`.
    fgate: RidgeRegression,
    /// Effective-active-rate model `F_α′(H, E)` (the α′ of Eq. 6, in mW per gated
    /// register, i.e. with `p_reg` and the gating-cell overhead folded in).
    falpha: GradientBoosting,
}

/// The clock power model: one set of decoupled sub-models per component.
#[derive(Debug, Clone)]
pub struct ClockPowerModel {
    per_component: Vec<ComponentClockModel>,
    /// Clock-pin power per register, looked up from the technology library.
    preg_mw: f64,
}

impl ClockPowerModel {
    /// Trains the clock model on the runs of `train_configs`.
    ///
    /// Register-count and gating-rate labels are read from the training netlists (one
    /// sample per configuration); effective-active-rate labels are derived from the
    /// golden clock power of every training `(configuration, workload)` run.
    ///
    /// # Errors
    ///
    /// Returns an error if a sub-model cannot be fitted (e.g. no training runs).
    pub fn train(corpus: &Corpus, train_configs: &[ConfigId]) -> Result<Self, AutoPowerError> {
        if train_configs.is_empty() {
            return Err(AutoPowerError::NoTrainingConfigs);
        }
        for id in train_configs {
            if corpus.runs_for(*id).is_empty() {
                return Err(AutoPowerError::MissingConfig(*id));
            }
        }
        let preg_mw = corpus.library().cells().register_clock_pin_mw;
        let runs = corpus.training_runs(train_configs);

        let per_component = Component::ALL
            .iter()
            .map(|&component| {
                Self::train_component(component, corpus, train_configs, &runs, preg_mw)
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(Self {
            per_component,
            preg_mw,
        })
    }

    fn train_component(
        component: Component,
        corpus: &Corpus,
        train_configs: &[ConfigId],
        runs: &[&RunData],
        preg_mw: f64,
    ) -> Result<ComponentClockModel, AutoPowerError> {
        // One structural sample per training configuration.
        let mut hw_rows = Vec::new();
        let mut reg_targets = Vec::new();
        let mut gate_targets = Vec::new();
        for &id in train_configs {
            let run = corpus.runs_for(id)[0];
            let netlist = run.netlist.component(component);
            hw_rows.push(hw_features(component, &run.config));
            reg_targets.push(netlist.registers as f64);
            gate_targets.push(netlist.gating_rate());
        }
        let mut freg = RidgeRegression::default();
        freg.fit(&hw_rows, &reg_targets)
            .map_err(AutoPowerError::fit(component, "register count"))?;
        let mut fgate = RidgeRegression::default();
        fgate
            .fit(&hw_rows, &gate_targets)
            .map_err(AutoPowerError::fit(component, "gating rate"))?;

        // One activity sample per training (configuration, workload) run.
        let mut alpha_targets = Vec::with_capacity(runs.len());
        for run in runs {
            let netlist = run.netlist.component(component);
            let r = netlist.registers as f64;
            let g = netlist.gating_rate();
            let gated = r * g;
            let golden_clock = run.golden.component(component).clock;
            let ungated_part = r * (1.0 - g) * preg_mw;
            let alpha_eff = if gated > 1e-9 {
                ((golden_clock - ungated_part) / gated).max(0.0)
            } else {
                0.0
            };
            alpha_targets.push(alpha_eff);
        }
        let he_matrix = model_feature_matrix(ModelFeatures::HW_EVENTS, component, runs)
            .ok_or_else(|| {
                AutoPowerError::fit(component, "effective active rate")(
                    autopower_ml::FitError::EmptyTrainingSet,
                )
            })?;
        let mut falpha = GradientBoosting::default();
        falpha
            .fit_matrix(&he_matrix, &alpha_targets)
            .map_err(AutoPowerError::fit(component, "effective active rate"))?;

        Ok(ComponentClockModel {
            freg,
            fgate,
            falpha,
        })
    }

    /// Predicted register count of one component.
    pub fn predict_register_count(&self, component: Component, config: &CpuConfig) -> f64 {
        self.predict_register_count_with(component, config, &mut FeatureScratch::new())
    }

    /// [`ClockPowerModel::predict_register_count`] with a reusable scratch.
    pub fn predict_register_count_with(
        &self,
        component: Component,
        config: &CpuConfig,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        let row = scratch.row_mut();
        hw_features_into(component, config, row);
        self.per_component[component.index()]
            .freg
            .predict(row)
            .max(1.0)
    }

    /// Predicted gating rate of one component.
    pub fn predict_gating_rate(&self, component: Component, config: &CpuConfig) -> f64 {
        self.predict_gating_rate_with(component, config, &mut FeatureScratch::new())
    }

    /// [`ClockPowerModel::predict_gating_rate`] with a reusable scratch.
    pub fn predict_gating_rate_with(
        &self,
        component: Component,
        config: &CpuConfig,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        let row = scratch.row_mut();
        hw_features_into(component, config, row);
        self.per_component[component.index()]
            .fgate
            .predict(row)
            .clamp(0.0, 0.99)
    }

    /// Predicted effective active rate α′ of one component (mW per gated register).
    pub fn predict_effective_active_rate(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> f64 {
        self.predict_effective_active_rate_with(
            component,
            config,
            events,
            workload,
            &mut FeatureScratch::new(),
        )
    }

    /// [`ClockPowerModel::predict_effective_active_rate`] with a reusable
    /// scratch.
    pub fn predict_effective_active_rate_with(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        let row = scratch.row_mut();
        model_features_into(
            ModelFeatures::HW_EVENTS,
            component,
            config,
            events,
            workload,
            row,
        );
        self.per_component[component.index()]
            .falpha
            .predict(row)
            .max(0.0)
    }

    /// Predicted clock power of one component in mW (Eq. 7).
    pub fn predict_component(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> f64 {
        self.predict_component_with(
            component,
            config,
            events,
            workload,
            &mut FeatureScratch::new(),
        )
    }

    /// [`ClockPowerModel::predict_component`] with feature rows assembled in a
    /// reusable scratch (the allocation-free batch-inference path).
    pub fn predict_component_with(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        let r = self.predict_register_count_with(component, config, scratch);
        let g = self.predict_gating_rate_with(component, config, scratch);
        let alpha_eff =
            self.predict_effective_active_rate_with(component, config, events, workload, scratch);
        r * (1.0 - g) * self.preg_mw + alpha_eff * r * g
    }

    /// Predicted clock power of the whole core in mW.
    pub fn predict(&self, config: &CpuConfig, events: &EventParams, workload: Workload) -> f64 {
        self.predict_with(config, events, workload, &mut FeatureScratch::new())
    }

    /// [`ClockPowerModel::predict`] with a reusable feature scratch.
    pub fn predict_with(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        Component::ALL
            .iter()
            .map(|&c| self.predict_component_with(c, config, events, workload, scratch))
            .sum()
    }

    /// Accumulates the whole-core clock power of every point into `acc`
    /// (`acc[i] += P_clk(points[i])`), scoring forest-major: each component's
    /// α′ ensemble walks the entire batch before the next component's, so an
    /// ensemble's nodes stay cache-resident across the batch instead of being
    /// evicted between points.  Bit-identical to calling
    /// [`ClockPowerModel::predict_with`] per point — same feature rows, same
    /// per-component evaluation order, same left-to-right summation.
    pub(crate) fn predict_batch_into(
        &self,
        points: &[PredictInput<'_>],
        scratch: &mut FeatureScratch,
        acc: &mut [f64],
    ) {
        debug_assert_eq!(points.len(), acc.len());
        if points.is_empty() {
            return;
        }
        let mut alphas = Vec::with_capacity(points.len());
        for &component in Component::ALL.iter() {
            let matrix = batch_feature_matrix(ModelFeatures::HW_EVENTS, component, points);
            self.per_component[component.index()]
                .falpha
                .forest()
                .predict_into(&matrix, &mut alphas);
            for (i, p) in points.iter().enumerate() {
                let r = self.predict_register_count_with(component, p.config, scratch);
                let g = self.predict_gating_rate_with(component, p.config, scratch);
                let alpha_eff = alphas[i].max(0.0);
                acc[i] += r * (1.0 - g) * self.preg_mw + alpha_eff * r * g;
            }
        }
    }

    /// The register clock-pin power used by the model (from the technology library).
    pub fn preg_mw(&self) -> f64 {
        self.preg_mw
    }
}

impl Codec for ComponentClockModel {
    fn encode(&self, w: &mut Writer) {
        w.begin("clock-component");
        self.freg.encode(w);
        self.fgate.encode(w);
        self.falpha.encode(w);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("clock-component")?;
        let freg = RidgeRegression::decode(r)?;
        let fgate = RidgeRegression::decode(r)?;
        let falpha = GradientBoosting::decode(r)?;
        r.end()?;
        Ok(Self {
            freg,
            fgate,
            falpha,
        })
    }
}

impl Codec for ClockPowerModel {
    fn encode(&self, w: &mut Writer) {
        w.begin("clock");
        w.f64("preg_mw", self.preg_mw);
        w.begin_list("components", self.per_component.len());
        for component in &self.per_component {
            component.encode(w);
        }
        w.end();
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("clock")?;
        let preg_mw = r.f64("preg_mw")?;
        let len = r.begin_list("components")?;
        if len != Component::ALL.len() {
            return Err(CodecError::new(
                r.line(),
                format!(
                    "clock model has {len} components, expected {}",
                    Component::ALL.len()
                ),
            ));
        }
        let mut per_component = Vec::with_capacity(len);
        for _ in 0..len {
            per_component.push(ComponentClockModel::decode(r)?);
        }
        r.end()?;
        r.end()?;
        Ok(Self {
            per_component,
            preg_mw,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use autopower_config::{boom_configs, Workload};
    use autopower_ml::metrics;

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn training_requires_configs_present_in_the_corpus() {
        let c = corpus();
        assert!(matches!(
            ClockPowerModel::train(&c, &[]),
            Err(AutoPowerError::NoTrainingConfigs)
        ));
        assert!(matches!(
            ClockPowerModel::train(&c, &[ConfigId::new(3)]),
            Err(AutoPowerError::MissingConfig(_))
        ));
    }

    #[test]
    fn register_count_prediction_is_accurate_on_held_out_config() {
        let c = corpus();
        let model = ClockPowerModel::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let test_run = c.run(ConfigId::new(8), Workload::Dhrystone).unwrap();
        let mut truths = Vec::new();
        let mut preds = Vec::new();
        for comp in Component::ALL {
            truths.push(test_run.netlist.component(comp).registers as f64);
            preds.push(model.predict_register_count(comp, &test_run.config));
        }
        let mape = metrics::mape(&truths, &preds);
        // The paper reports ~6.9 % MAPE for R and g with 2 known configurations.
        assert!(mape < 0.20, "register count MAPE {mape}");
    }

    #[test]
    fn gating_rate_stays_in_range_and_close_to_truth() {
        let c = corpus();
        let model = ClockPowerModel::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let test_run = c.run(ConfigId::new(8), Workload::Vvadd).unwrap();
        for comp in Component::ALL {
            let g = model.predict_gating_rate(comp, &test_run.config);
            assert!((0.0..=0.99).contains(&g));
            let truth = test_run.netlist.component(comp).gating_rate();
            assert!((g - truth).abs() < 0.15, "{comp}: {g} vs {truth}");
        }
    }

    #[test]
    fn clock_power_prediction_tracks_golden_clock_power() {
        let c = corpus();
        let model = ClockPowerModel::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let mut truths = Vec::new();
        let mut preds = Vec::new();
        for run in c.test_runs(&[ConfigId::new(1), ConfigId::new(15)]) {
            truths.push(run.golden.total.clock);
            preds.push(model.predict(&run.config, &run.sim.events, run.workload));
        }
        let mape = metrics::mape(&truths, &preds);
        assert!(mape < 0.30, "clock power MAPE {mape}");
    }

    #[test]
    fn in_sample_prediction_is_tight() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let model = ClockPowerModel::train(&c, &train).unwrap();
        for run in c.training_runs(&train) {
            let pred = model.predict(&run.config, &run.sim.events, run.workload);
            let truth = run.golden.total.clock;
            assert!(
                ((pred - truth) / truth).abs() < 0.15,
                "in-sample clock power {pred} vs {truth}"
            );
        }
    }
}
