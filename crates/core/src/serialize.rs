//! Trained-model persistence: a registry-tagged, bit-exact text format.
//!
//! A design-space sweep service should not retrain its models in every
//! process: training reads the (expensive) corpus, while inference only needs
//! the fitted parameter tables.  All four registry models bottom out in plain
//! `f64` tables — ridge coefficients, boosted-tree splits and leaf weights,
//! scaling-rule coefficients — so they serialize naturally over the
//! [`serde::codec`] substrate, with every `f64` stored as its exact IEEE-754
//! bits.  A model saved with [`save_model`] and restored with [`load_model`]
//! reproduces the original model's predictions **bit for bit** (pinned by the
//! `model_serialization` integration tests).
//!
//! # Format
//!
//! ```text
//! autopower-model {
//!   version 1
//!   kind mcpat-calib          ; the ModelKind registry tag
//!   mcpat-calib { ... }       ; the body written by PowerModel::serialize
//! }
//! ```
//!
//! The registry tag makes the file self-describing: [`load_model`] restores
//! the concrete type behind a `Box<dyn PowerModel>` without the caller naming
//! it, exactly like [`ModelKind::train`] does for training.

use crate::error::AutoPowerError;
use crate::power_model::{ModelKind, PowerModel};
use autopower_config::{
    sram_positions, Component, ConfigId, CpuConfig, HardwareParams, HwParam, SramPositionId,
    SEED_CONFIG_COUNT,
};
use autopower_techlib::{SramCompiler, SramMacro, TechLibrary};
use serde::codec::{CodecError, Reader, Writer};
use std::path::Path;

/// Version tag of the serialized model format; bumped on layout changes so a
/// stale file fails loudly instead of deserializing garbage.
pub const MODEL_FORMAT_VERSION: u64 = 1;

/// Serializes a trained model (any registry kind) to the registry-tagged text
/// format.
pub fn encode_model(model: &dyn PowerModel) -> String {
    let mut w = Writer::new();
    w.begin("autopower-model");
    w.u64("version", MODEL_FORMAT_VERSION);
    w.str("kind", model.kind().registry_name());
    model.serialize(&mut w);
    w.end();
    w.finish()
}

/// Restores a trained model from [`encode_model`] text.
///
/// # Errors
///
/// Returns [`AutoPowerError::ModelFormat`] on a malformed stream, a version
/// mismatch, or an unknown registry tag.
pub fn decode_model(text: &str) -> Result<Box<dyn PowerModel>, AutoPowerError> {
    let mut r = Reader::new(text);
    let model = (|| -> Result<Box<dyn PowerModel>, AutoPowerError> {
        r.begin("autopower-model").map_err(format_err)?;
        let version = r.u64("version").map_err(format_err)?;
        if version != MODEL_FORMAT_VERSION {
            return Err(AutoPowerError::ModelFormat(format!(
                "unsupported format version {version} (this build reads version \
                 {MODEL_FORMAT_VERSION})"
            )));
        }
        let kind: ModelKind = r.str("kind").map_err(format_err)?.parse()?;
        let model = kind.decode_trained(&mut r)?;
        r.end().map_err(format_err)?;
        r.expect_eof().map_err(format_err)?;
        Ok(model)
    })()?;
    Ok(model)
}

/// Saves a trained model to `path` (see [`encode_model`] for the format).
///
/// # Errors
///
/// Returns [`AutoPowerError::ModelIo`] if the file cannot be written.
pub fn save_model(model: &dyn PowerModel, path: impl AsRef<Path>) -> Result<(), AutoPowerError> {
    let path = path.as_ref();
    // Temp file + rename: a crash mid-save can never leave a torn model file
    // where a serving process (hot reload, `--watch-models-ms`) would read it.
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    std::fs::write(tmp, encode_model(model))
        .map_err(|e| AutoPowerError::ModelIo(format!("writing {}: {e}", tmp.display())))?;
    std::fs::rename(tmp, path)
        .map_err(|e| AutoPowerError::ModelIo(format!("renaming into {}: {e}", path.display())))
}

/// Loads a trained model saved by [`save_model`].
///
/// # Errors
///
/// Returns [`AutoPowerError::ModelIo`] if the file cannot be read and
/// [`AutoPowerError::ModelFormat`] if it does not parse.  Both name the
/// offending path: a server cold-starting from several model files (or hot
/// reloading them) must be able to say *which* file is broken.
pub fn load_model(path: impl AsRef<Path>) -> Result<Box<dyn PowerModel>, AutoPowerError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| AutoPowerError::ModelIo(format!("reading {}: {e}", path.display())))?;
    decode_model(&text).map_err(|e| match e {
        AutoPowerError::ModelFormat(message) => {
            AutoPowerError::ModelFormat(format!("{}: {message}", path.display()))
        }
        other => other,
    })
}

impl From<CodecError> for AutoPowerError {
    fn from(e: CodecError) -> Self {
        format_err(e)
    }
}

fn format_err(e: CodecError) -> AutoPowerError {
    AutoPowerError::ModelFormat(e.to_string())
}

// --- codec helpers for foreign types (config / techlib) -------------------
//
// `Codec` and these types both live outside this crate, so the orphan rule
// forbids trait impls; plain functions do the same job.

/// Writes a component by its stable registry name.
pub(crate) fn encode_component(w: &mut Writer, component: Component) {
    w.str("component", component.name());
}

/// Reads a component written by [`encode_component`].
pub(crate) fn decode_component(r: &mut Reader<'_>) -> Result<Component, CodecError> {
    let name = r.str("component")?;
    Component::ALL
        .into_iter()
        .find(|c| c.name() == name)
        .ok_or_else(|| CodecError::new(r.line(), format!("unknown component '{name}'")))
}

/// Writes a hardware parameter by its stable Table II name.
pub(crate) fn encode_hw_param(w: &mut Writer, param: HwParam) {
    w.str("param", param.name());
}

/// Reads a hardware parameter written by [`encode_hw_param`].
pub(crate) fn decode_hw_param(r: &mut Reader<'_>) -> Result<HwParam, CodecError> {
    let name = r.str("param")?;
    HwParam::ALL
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| CodecError::new(r.line(), format!("unknown hardware parameter '{name}'")))
}

/// Writes a full configuration: identifier kind + index and all 14 parameter
/// values (used by the streaming-sweep checkpoint format).
pub(crate) fn encode_config(w: &mut Writer, config: &CpuConfig) {
    w.begin("config");
    match config.id.generated_index() {
        Some(n) => {
            w.str("id_kind", "generated");
            w.u64("id", u64::from(n));
        }
        None => {
            w.str("id_kind", "seed");
            w.u64("id", u64::from(config.id.index()));
        }
    }
    w.begin_list("params", config.params.values().len());
    for &v in config.params.values() {
        w.u64("v", u64::from(v));
    }
    w.end();
    w.end();
}

/// Reads a configuration written by [`encode_config`].
pub(crate) fn decode_config(r: &mut Reader<'_>) -> Result<CpuConfig, CodecError> {
    r.begin("config")?;
    let kind = r.str("id_kind")?.to_owned();
    let id_line = r.line();
    let index = r.u64("id")?;
    let id = match kind.as_str() {
        "generated" => {
            let n = u32::try_from(index)
                .ok()
                .filter(|&n| n > 0 && n < u32::MAX - SEED_CONFIG_COUNT)
                .ok_or_else(|| {
                    CodecError::new(
                        id_line,
                        format!("generated config index {index} out of range"),
                    )
                })?;
            ConfigId::generated(n)
        }
        "seed" => {
            let n = u8::try_from(index)
                .ok()
                .filter(|&n| (1..=SEED_CONFIG_COUNT as u8).contains(&n))
                .ok_or_else(|| {
                    CodecError::new(id_line, format!("seed config index {index} out of range"))
                })?;
            ConfigId::new(n)
        }
        other => {
            return Err(CodecError::new(
                id_line,
                format!("unknown config id kind '{other}'"),
            ))
        }
    };
    let count = r.begin_list("params")?;
    let mut values = [0u32; 14];
    if count != values.len() {
        return Err(CodecError::new(
            r.line(),
            format!("expected {} parameter values, found {count}", values.len()),
        ));
    }
    for slot in &mut values {
        let line = r.line();
        let v = r.u64("v")?;
        *slot = u32::try_from(v)
            .map_err(|_| CodecError::new(line, format!("parameter value {v} exceeds u32")))?;
    }
    r.end()?;
    r.end()?;
    Ok(CpuConfig::new(id, HardwareParams::new(values)))
}

/// Writes an SRAM position as its owning component plus short name.
pub(crate) fn encode_position(w: &mut Writer, position: SramPositionId) {
    w.begin("position");
    encode_component(w, position.component);
    w.str("name", position.name);
    w.end();
}

/// Reads a position written by [`encode_position`] and re-resolves it against
/// the catalogue (positions are architecture-level facts, not file payload).
pub(crate) fn decode_position(r: &mut Reader<'_>) -> Result<SramPositionId, CodecError> {
    r.begin("position")?;
    let component = decode_component(r)?;
    let name = r.str("name")?;
    let position_line = r.line();
    r.end()?;
    sram_positions()
        .iter()
        .map(|p| p.id)
        .find(|id| id.component == component && id.name == name)
        .ok_or_else(|| {
            CodecError::new(
                position_line,
                format!("unknown SRAM position '{component}.{name}'"),
            )
        })
}

/// Writes the full technology library (cells + macro catalogue), so a loaded
/// model predicts with exactly the library it was trained with even if the
/// default library ever changes.
pub(crate) fn encode_library(w: &mut Writer, library: &TechLibrary) {
    w.begin("library");
    w.str("node", &library.node);
    w.f64("clock_ghz", library.clock_ghz);
    let cells = library.cells();
    w.begin("cells");
    w.f64("register_clock_pin_mw", cells.register_clock_pin_mw);
    w.f64("gating_cell_latch_mw", cells.gating_cell_latch_mw);
    w.f64("register_toggle_pj", cells.register_toggle_pj);
    w.f64("register_leakage_mw", cells.register_leakage_mw);
    w.f64("comb_dynamic_mw_per_gate", cells.comb_dynamic_mw_per_gate);
    w.f64("comb_leakage_mw_per_gate", cells.comb_leakage_mw_per_gate);
    w.f64("gating_cell_fanout", cells.gating_cell_fanout);
    w.end();
    let macros = library.sram().supported_macros();
    w.begin_list("macros", macros.len());
    for m in macros {
        w.begin("macro");
        w.u64("width", m.width as u64);
        w.u64("depth", m.depth as u64);
        w.f64("read_energy_pj", m.read_energy_pj);
        w.f64("write_energy_pj", m.write_energy_pj);
        w.f64("leakage_mw", m.leakage_mw);
        w.f64("area", m.area);
        w.end();
    }
    w.end();
    w.end();
}

/// Reads a library written by [`encode_library`].
pub(crate) fn decode_library(r: &mut Reader<'_>) -> Result<TechLibrary, CodecError> {
    r.begin("library")?;
    let node = r.str("node")?.to_owned();
    let clock_ghz = r.f64("clock_ghz")?;
    r.begin("cells")?;
    let cells = autopower_techlib::CellParams {
        register_clock_pin_mw: r.f64("register_clock_pin_mw")?,
        gating_cell_latch_mw: r.f64("gating_cell_latch_mw")?,
        register_toggle_pj: r.f64("register_toggle_pj")?,
        register_leakage_mw: r.f64("register_leakage_mw")?,
        comb_dynamic_mw_per_gate: r.f64("comb_dynamic_mw_per_gate")?,
        comb_leakage_mw_per_gate: r.f64("comb_leakage_mw_per_gate")?,
        gating_cell_fanout: r.f64("gating_cell_fanout")?,
    };
    r.end()?;
    let len = r.begin_list("macros")?;
    let mut macros = Vec::with_capacity(len);
    for _ in 0..len {
        r.begin("macro")?;
        macros.push(SramMacro {
            width: r.u64("width")? as u32,
            depth: r.u64("depth")? as u32,
            read_energy_pj: r.f64("read_energy_pj")?,
            write_energy_pj: r.f64("write_energy_pj")?,
            leakage_mw: r.f64("leakage_mw")?,
            area: r.f64("area")?,
        });
        r.end()?;
    }
    r.end()?;
    r.end()?;
    if macros.is_empty() || clock_ghz <= 0.0 || clock_ghz.is_nan() {
        return Err(CodecError::new(
            r.line(),
            "library must carry a positive clock and at least one macro",
        ));
    }
    Ok(TechLibrary::with_parts(
        node,
        clock_ghz,
        cells,
        SramCompiler::from_macros(macros),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::codec::Codec as _;

    #[test]
    fn library_round_trips_bit_for_bit() {
        let lib = TechLibrary::tsmc40_like();
        let mut w = Writer::new();
        encode_library(&mut w, &lib);
        let text = w.finish();
        let mut r = Reader::new(&text);
        let back = decode_library(&mut r).unwrap();
        assert_eq!(back, lib);
    }

    #[test]
    fn components_params_and_positions_round_trip() {
        for component in Component::ALL {
            let mut w = Writer::new();
            encode_component(&mut w, component);
            let text = w.finish();
            assert_eq!(
                decode_component(&mut Reader::new(&text)).unwrap(),
                component
            );
        }
        for param in HwParam::ALL {
            let mut w = Writer::new();
            encode_hw_param(&mut w, param);
            let text = w.finish();
            assert_eq!(decode_hw_param(&mut Reader::new(&text)).unwrap(), param);
        }
        for position in sram_positions() {
            let mut w = Writer::new();
            encode_position(&mut w, position.id);
            let text = w.finish();
            assert_eq!(
                decode_position(&mut Reader::new(&text)).unwrap(),
                position.id
            );
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        let mut w = Writer::new();
        w.str("component", "FluxCapacitor");
        let text = w.finish();
        assert!(decode_component(&mut Reader::new(&text)).is_err());
    }

    #[test]
    fn version_and_kind_tags_are_enforced() {
        let err = decode_model("autopower-model {\n version 999\n}\n").unwrap_err();
        assert!(matches!(err, AutoPowerError::ModelFormat(_)));
        assert!(err.to_string().contains("version 999"));

        let err = decode_model("autopower-model {\n version 1\n kind xgboost\n}\n").unwrap_err();
        assert!(matches!(err, AutoPowerError::UnknownModel(_)));

        let err = decode_model("not-a-model {\n}\n").unwrap_err();
        assert!(matches!(err, AutoPowerError::ModelFormat(_)));
    }

    #[test]
    fn save_and_load_round_trip_through_the_filesystem() {
        use crate::dataset::{Corpus, CorpusSpec};
        use autopower_config::{boom_configs, ConfigId, Workload};

        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let model = ModelKind::McpatCalib.train(&corpus, &train).unwrap();

        let dir = std::env::temp_dir().join("autopower-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mcpat-calib.apm");
        save_model(model.as_ref(), &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.kind(), ModelKind::McpatCalib);
        for run in corpus.runs() {
            assert_eq!(
                loaded.predict_total(run).to_bits(),
                model.predict_total(run).to_bits()
            );
        }
        std::fs::remove_file(&path).ok();

        let err = load_model(dir.join("does-not-exist.apm")).unwrap_err();
        assert!(matches!(err, AutoPowerError::ModelIo(_)));
    }

    #[test]
    fn load_errors_name_the_offending_file() {
        let dir = std::env::temp_dir().join("autopower-serialize-path-test");
        std::fs::create_dir_all(&dir).unwrap();

        // I/O failure: the missing file's path is in the message.
        let missing = dir.join("missing.apm");
        let err = load_model(&missing).unwrap_err();
        assert!(matches!(err, AutoPowerError::ModelIo(_)));
        assert!(
            err.to_string().contains("missing.apm"),
            "I/O error must name the file: {err}"
        );

        // Format failure: a readable but malformed file is named too — a
        // server loading several model files must say which one is broken.
        let garbage = dir.join("garbage.apm");
        std::fs::write(&garbage, "not a model file\n").unwrap();
        let err = load_model(&garbage).unwrap_err();
        assert!(matches!(err, AutoPowerError::ModelFormat(_)));
        assert!(
            err.to_string().contains("garbage.apm"),
            "format error must name the file: {err}"
        );
        std::fs::remove_file(&garbage).ok();
    }

    #[test]
    fn codec_trait_is_reachable_for_concrete_models() {
        // Concrete model types implement `Codec` directly (decode needs the
        // concrete type); the dyn path goes through PowerModel::serialize +
        // ModelKind::decode_trained.  Pin that both name the same format.
        use crate::baselines::McpatCalib;
        use crate::dataset::{Corpus, CorpusSpec};
        use autopower_config::{boom_configs, ConfigId, Workload};

        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let concrete = McpatCalib::train(&corpus, &train).unwrap();
        let mut w = Writer::new();
        concrete.encode(&mut w);
        let direct = w.finish();

        let mut w = Writer::new();
        PowerModel::serialize(&concrete, &mut w);
        assert_eq!(w.finish(), direct);
    }
}
