//! The model-agnostic prediction interface: [`PowerModel`] + the [`ModelKind`]
//! registry.
//!
//! The paper's evaluation is a head-to-head between AutoPower and three
//! baselines, yet historically only [`AutoPower`](crate::AutoPower) could drive
//! the sweep, power-trace and cross-validation paths — the baselines were
//! dead-ended behind ad-hoc inherent `train`/`predict` methods.  This module
//! unifies every predictor behind one object-safe trait so that every existing
//! and future scenario (design-space sweep, trace prediction, cross-validation,
//! new workloads) works for every existing and future model:
//!
//! * [`PowerModel`] — the trait all four predictors implement.  Downstream
//!   engines ([`SweepEngine`](crate::SweepEngine),
//!   [`PowerTracePredictor`](crate::PowerTracePredictor),
//!   [`cross_validate_model`](crate::cross_validate_model)) consume
//!   `&dyn PowerModel` and never name a concrete model type.
//! * [`ModelKind`] — the registry: lists every model ([`ModelKind::ALL`]),
//!   resolves command-line names ([`FromStr`]) and trains any model into a
//!   `Box<dyn PowerModel>` ([`ModelKind::train`]).
//!
//! # Group resolution
//!
//! AutoPower and AutoPower− predict per-group power natively.  McPAT-Calib and
//! McPAT-Calib + Component predict a single scalar; their trait predictions
//! carry the whole total in the `combinational` slot of [`PowerGroups`] so that
//! [`PowerGroups::total`] is bit-identical to the scalar their inherent API
//! returns.  Check [`PowerModel::resolves_groups`] (or
//! [`ModelKind::resolves_groups`]) before interpreting individual groups.
//!
//! # Example
//!
//! ```
//! use autopower::{Corpus, CorpusSpec, ModelKind};
//! use autopower_config::{boom_configs, ConfigId, Workload};
//!
//! let configs = [boom_configs()[0], boom_configs()[14]];
//! let corpus = Corpus::generate(&configs, &[Workload::Vvadd], &CorpusSpec::fast());
//! let train = [ConfigId::new(1), ConfigId::new(15)];
//!
//! // Select a model by registry name, exactly as `--model` does on the CLI.
//! let kind: ModelKind = "mcpat-calib".parse().unwrap();
//! let model = kind.train(&corpus, &train).unwrap();
//! let run = corpus.run(ConfigId::new(1), Workload::Vvadd).unwrap();
//! assert!(model.predict_run(run).total() > 0.0);
//! ```

use crate::baselines::{AutoPowerMinus, McpatCalib, McpatCalibComponent};
use crate::dataset::{Corpus, RunData};
use crate::error::AutoPowerError;
use crate::model::AutoPower;
use autopower_config::{ConfigId, CpuConfig, Workload};
use autopower_perfsim::EventParams;
use autopower_powersim::PowerGroups;
use std::fmt;
use std::str::FromStr;

/// A trained architecture-level power predictor.
///
/// Object-safe: the inference engines hold `&dyn PowerModel` / `Box<dyn
/// PowerModel>` and dispatch dynamically, so any model the [`ModelKind`]
/// registry can train drives the sweep, trace and cross-validation paths.
/// `Send + Sync` is required so a single trained model can be shared across
/// the worker threads of the batch-inference pipeline.
pub trait PowerModel: fmt::Debug + Send + Sync {
    /// Which registry entry this model was trained as.
    fn kind(&self) -> ModelKind;

    /// Predicts the per-group power of one `(configuration, workload)` point
    /// from architecture-level information only.
    ///
    /// For models that do not decompose power into groups (see
    /// [`PowerModel::resolves_groups`]) the whole prediction is reported in
    /// the `combinational` slot; [`PowerGroups::total`] is always meaningful.
    fn predict(&self, config: &CpuConfig, events: &EventParams, workload: Workload) -> PowerGroups;

    /// Predicts the per-group power of a corpus run from its reported events.
    fn predict_run(&self, run: &RunData) -> PowerGroups {
        self.predict(&run.config, &run.sim.events, run.workload)
    }

    /// Predicted total power in mW for one run.
    fn predict_total(&self, run: &RunData) -> f64 {
        self.predict_run(run).total()
    }

    /// Whether the individual groups of a prediction are meaningful
    /// (as opposed to the whole total parked in one slot).
    fn resolves_groups(&self) -> bool {
        self.kind().resolves_groups()
    }
}

/// Lifts a total-only prediction into [`PowerGroups`].
///
/// The total is parked in the `combinational` slot — not split across groups —
/// so `PowerGroups::total()` reproduces the scalar bit for bit (an even split
/// would re-round under summation).
pub(crate) fn total_only_groups(total: f64) -> PowerGroups {
    PowerGroups {
        clock: 0.0,
        sram: 0.0,
        register: 0.0,
        combinational: total,
    }
}

/// The registry of trainable power models.
///
/// One variant per predictor the paper evaluates.  [`ModelKind::ALL`] lists
/// them in the paper's reporting order (AutoPower first, the AutoPower−
/// ablation last); [`FromStr`] resolves the kebab-case registry names the
/// `--model` CLI flag uses; [`ModelKind::train`] erases the concrete model
/// type behind `Box<dyn PowerModel>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The paper's contribution: decoupled structural sub-models per power
    /// group ([`AutoPower`]).
    AutoPower,
    /// One gradient-boosted model over all hardware and event parameters
    /// predicting total power directly ([`McpatCalib`]).
    McpatCalib,
    /// The same building block instantiated once per component, summed
    /// ([`McpatCalibComponent`]).
    McpatCalibComponent,
    /// The ablation: decoupled across power groups but with a direct ML model
    /// per group instead of the structural sub-models ([`AutoPowerMinus`]).
    AutoPowerMinus,
}

impl ModelKind {
    /// Every registry model, in the paper's reporting order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::AutoPower,
        ModelKind::McpatCalib,
        ModelKind::McpatCalibComponent,
        ModelKind::AutoPowerMinus,
    ];

    /// The kebab-case registry name (`--model` flag value).
    pub fn registry_name(self) -> &'static str {
        match self {
            ModelKind::AutoPower => "autopower",
            ModelKind::McpatCalib => "mcpat-calib",
            ModelKind::McpatCalibComponent => "mcpat-calib-component",
            ModelKind::AutoPowerMinus => "autopower-minus",
        }
    }

    /// The method name as the paper's tables and figures print it.
    pub fn paper_name(self) -> &'static str {
        match self {
            ModelKind::AutoPower => "AutoPower",
            ModelKind::McpatCalib => "McPAT-Calib",
            ModelKind::McpatCalibComponent => "McPAT-Calib + Component",
            ModelKind::AutoPowerMinus => "AutoPower-",
        }
    }

    /// Whether the model decomposes power into meaningful groups.
    pub fn resolves_groups(self) -> bool {
        match self {
            ModelKind::AutoPower | ModelKind::AutoPowerMinus => true,
            ModelKind::McpatCalib | ModelKind::McpatCalibComponent => false,
        }
    }

    /// Trains this kind of model on the runs of `train_configs`.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying trainer does (empty training set,
    /// missing configuration, sub-model fit failure).
    pub fn train(
        self,
        corpus: &Corpus,
        train_configs: &[ConfigId],
    ) -> Result<Box<dyn PowerModel>, AutoPowerError> {
        Ok(match self {
            ModelKind::AutoPower => Box::new(AutoPower::train(corpus, train_configs)?),
            ModelKind::McpatCalib => Box::new(McpatCalib::train(corpus, train_configs)?),
            ModelKind::McpatCalibComponent => {
                Box::new(McpatCalibComponent::train(corpus, train_configs)?)
            }
            ModelKind::AutoPowerMinus => Box::new(AutoPowerMinus::train(corpus, train_configs)?),
        })
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.registry_name())
    }
}

impl FromStr for ModelKind {
    type Err = AutoPowerError;

    /// Resolves a registry name, case-insensitively.  `_` is accepted in
    /// place of `-` so shell-friendly spellings work too.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.to_ascii_lowercase().replace('_', "-");
        ModelKind::ALL
            .into_iter()
            .find(|kind| kind.registry_name() == normalized)
            .ok_or_else(|| AutoPowerError::UnknownModel(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use autopower_config::boom_configs;

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn registry_names_round_trip_through_fromstr() {
        for kind in ModelKind::ALL {
            assert_eq!(kind.registry_name().parse::<ModelKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.registry_name());
        }
        // Case-insensitive, underscore-tolerant.
        assert_eq!(
            "McPAT_Calib".parse::<ModelKind>().unwrap(),
            ModelKind::McpatCalib
        );
        assert!(matches!(
            "xgboost".parse::<ModelKind>(),
            Err(AutoPowerError::UnknownModel(_))
        ));
    }

    #[test]
    fn every_registry_model_trains_and_predicts() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        for kind in ModelKind::ALL {
            let model = kind.train(&c, &train).unwrap();
            assert_eq!(model.kind(), kind);
            assert_eq!(model.resolves_groups(), kind.resolves_groups());
            for run in c.runs() {
                let p = model.predict_run(run);
                assert!(p.is_physical(), "{kind} produced non-physical power");
                assert!(p.total() > 0.0, "{kind} predicted zero power");
                assert_eq!(model.predict_total(run), p.total());
            }
        }
    }

    #[test]
    fn training_errors_propagate_through_the_registry() {
        let c = corpus();
        for kind in ModelKind::ALL {
            assert!(
                kind.train(&c, &[]).is_err(),
                "{kind} accepted empty training"
            );
        }
    }

    #[test]
    fn total_only_groups_preserve_the_scalar_bit_for_bit() {
        for total in [0.0, 1.0, 97.3, 1234.5678] {
            let g = total_only_groups(total);
            assert_eq!(g.total(), total);
            assert_eq!(g.clock, 0.0);
            assert_eq!(g.sram, 0.0);
            assert_eq!(g.register, 0.0);
        }
    }

    #[test]
    fn boxed_models_are_shareable_across_threads() {
        fn check<T: Send + Sync + ?Sized>() {}
        check::<dyn PowerModel>();
        check::<Box<dyn PowerModel>>();
    }
}
