//! The model-agnostic prediction interface: [`PowerModel`] + the [`ModelKind`]
//! registry.
//!
//! The paper's evaluation is a head-to-head between AutoPower and three
//! baselines, yet historically only [`AutoPower`](crate::AutoPower) could drive
//! the sweep, power-trace and cross-validation paths — the baselines were
//! dead-ended behind ad-hoc inherent `train`/`predict` methods.  This module
//! unifies every predictor behind one object-safe trait so that every existing
//! and future scenario (design-space sweep, trace prediction, cross-validation,
//! new workloads) works for every existing and future model:
//!
//! * [`PowerModel`] — the trait all four predictors implement.  Downstream
//!   engines ([`SweepEngine`](crate::SweepEngine),
//!   [`PowerTracePredictor`](crate::PowerTracePredictor),
//!   [`cross_validate_model`](crate::cross_validate_model)) consume
//!   `&dyn PowerModel` and never name a concrete model type.
//! * [`ModelKind`] — the registry: lists every model ([`ModelKind::ALL`]),
//!   resolves command-line names ([`FromStr`]) and trains any model into a
//!   `Box<dyn PowerModel>` ([`ModelKind::train`]).
//!
//! # Typed resolution
//!
//! [`PowerModel::predict`] returns a [`Prediction`]: a total plus an explicit
//! [`Resolution`](crate::Resolution) saying how much structure the model
//! actually resolved.  AutoPower predicts the paper's four power groups
//! ([`Resolution::Grouped`](crate::Resolution::Grouped)); AutoPower− and
//! McPAT-Calib + Component predict per component
//! ([`Resolution::PerComponent`](crate::Resolution::PerComponent), with and
//! without per-component groups respectively); plain McPAT-Calib predicts one
//! scalar ([`Resolution::TotalOnly`](crate::Resolution::TotalOnly)).  There is
//! no out-of-band "does this model resolve groups" flag to consult and no slot
//! to misread: [`Prediction::groups`] is `Some` exactly when the group view is
//! meaningful.  Models that resolve components additionally answer
//! [`PowerModel::predict_components`] — the surface behind the Figs. 7/8
//! detail experiments.
//!
//! # Persistence
//!
//! Trained models serialize to a registry-tagged text format and load back
//! bit-identically — see [`save_model`](crate::save_model) /
//! [`load_model`](crate::load_model).  [`PowerModel::serialize`] writes the
//! model body; [`ModelKind::decode_trained`] restores the concrete type from
//! the registry tag.
//!
//! # Example
//!
//! ```
//! use autopower::{Corpus, CorpusSpec, ModelKind};
//! use autopower_config::{boom_configs, ConfigId, Workload};
//!
//! let configs = [boom_configs()[0], boom_configs()[14]];
//! let corpus = Corpus::generate(&configs, &[Workload::Vvadd], &CorpusSpec::fast());
//! let train = [ConfigId::new(1), ConfigId::new(15)];
//!
//! // Select a model by registry name, exactly as `--model` does on the CLI.
//! let kind: ModelKind = "mcpat-calib".parse().unwrap();
//! let model = kind.train(&corpus, &train).unwrap();
//! let run = corpus.run(ConfigId::new(1), Workload::Vvadd).unwrap();
//! let prediction = model.predict_run(run);
//! assert!(prediction.total() > 0.0);
//! // McPAT-Calib is total-only: the group view is absent, not parked.
//! assert!(prediction.groups().is_none());
//! ```

use crate::baselines::{AutoPowerMinus, McpatCalib, McpatCalibComponent};
use crate::dataset::{Corpus, RunData};
use crate::error::AutoPowerError;
use crate::features::FeatureScratch;
use crate::model::AutoPower;
use crate::prediction::{ComponentBreakdown, Prediction};
use autopower_config::{ConfigId, CpuConfig, Workload};
use autopower_perfsim::EventParams;
use serde::codec::{Codec, Reader, Writer};
use std::fmt;
use std::str::FromStr;

/// One `(configuration, events, workload)` point of a batched prediction
/// ([`PowerModel::predict_batch_with`]).
#[derive(Debug, Clone, Copy)]
pub struct PredictInput<'a> {
    /// The configuration under prediction.
    pub config: &'a CpuConfig,
    /// Its event parameters (simulated or surrogate-predicted).
    pub events: &'a EventParams,
    /// The workload the events describe.
    pub workload: Workload,
}

/// A trained architecture-level power predictor.
///
/// Object-safe: the inference engines hold `&dyn PowerModel` / `Box<dyn
/// PowerModel>` and dispatch dynamically, so any model the [`ModelKind`]
/// registry can train drives the sweep, trace and cross-validation paths.
/// `Send + Sync` is required so a single trained model can be shared across
/// the worker threads of the batch-inference pipeline.
pub trait PowerModel: fmt::Debug + Send + Sync {
    /// Which registry entry this model was trained as.
    fn kind(&self) -> ModelKind;

    /// Predicts the power of one `(configuration, workload)` point from
    /// architecture-level information only.
    ///
    /// The returned [`Prediction`] carries the model's natural resolution:
    /// check [`Prediction::groups`] / [`Prediction::components`] instead of
    /// assuming structure.
    fn predict(&self, config: &CpuConfig, events: &EventParams, workload: Workload) -> Prediction {
        self.predict_with(config, events, workload, &mut FeatureScratch::new())
    }

    /// [`PowerModel::predict`] with feature rows assembled in a caller-owned
    /// [`FeatureScratch`].
    ///
    /// This is the method implementations provide and the batch engines call:
    /// [`SweepEngine`](crate::SweepEngine) / [`sweep_multi`](crate::sweep_multi)
    /// hand each worker thread one scratch, so scoring a point allocates
    /// nothing.  The scratch never changes a prediction — it only re-uses row
    /// storage.
    fn predict_with(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> Prediction;

    /// Predicts a batch of points into `out` (cleared first), one
    /// [`Prediction`] per input in input order.
    ///
    /// The default walks [`PowerModel::predict_with`] point by point.  Models
    /// built from many internal tree ensembles override it to score
    /// *forest-major* — each ensemble over every point before moving to the
    /// next ensemble — which keeps an ensemble's nodes cache-hot across the
    /// whole batch instead of evicting them between points.  Overrides MUST
    /// be bit-identical to the point-by-point walk; that invariant is what
    /// lets the sweep engine batch freely without perturbing goldens.
    fn predict_batch_with(
        &self,
        points: &[PredictInput<'_>],
        scratch: &mut FeatureScratch,
        out: &mut Vec<Prediction>,
    ) {
        out.clear();
        out.reserve(points.len());
        for p in points {
            out.push(self.predict_with(p.config, p.events, p.workload, scratch));
        }
    }

    /// Predicts per-component power, for models that resolve components
    /// (AutoPower, AutoPower−, McPAT-Calib + Component); `None` otherwise.
    ///
    /// For models whose [`PowerModel::predict`] is already per-component this
    /// is the same breakdown; for AutoPower it is the component-level detail
    /// view behind the Figs. 7/8 experiments (the component sums track, but
    /// do not bit-identically equal, the canonical core-level prediction).
    fn predict_components(
        &self,
        _config: &CpuConfig,
        _events: &EventParams,
        _workload: Workload,
    ) -> Option<ComponentBreakdown> {
        None
    }

    /// Predicts the power of a corpus run from its reported events.
    fn predict_run(&self, run: &RunData) -> Prediction {
        self.predict(&run.config, &run.sim.events, run.workload)
    }

    /// Per-component prediction of a corpus run (see
    /// [`PowerModel::predict_components`]).
    fn predict_run_components(&self, run: &RunData) -> Option<ComponentBreakdown> {
        self.predict_components(&run.config, &run.sim.events, run.workload)
    }

    /// Predicted total power in mW for one run.
    fn predict_total(&self, run: &RunData) -> f64 {
        self.predict_run(run).total()
    }

    /// Writes the trained model body into a codec stream (the payload of
    /// [`save_model`](crate::save_model); the registry tag and format version
    /// are written by the caller).
    fn serialize(&self, w: &mut Writer);
}

/// The registry of trainable power models.
///
/// One variant per predictor the paper evaluates.  [`ModelKind::ALL`] lists
/// them in the paper's reporting order (AutoPower first, the AutoPower−
/// ablation last); [`FromStr`] resolves the kebab-case registry names the
/// `--model` CLI flag uses; [`ModelKind::train`] erases the concrete model
/// type behind `Box<dyn PowerModel>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The paper's contribution: decoupled structural sub-models per power
    /// group ([`AutoPower`]).
    AutoPower,
    /// One gradient-boosted model over all hardware and event parameters
    /// predicting total power directly ([`McpatCalib`]).
    McpatCalib,
    /// The same building block instantiated once per component, summed
    /// ([`McpatCalibComponent`]).
    McpatCalibComponent,
    /// The ablation: decoupled across power groups but with a direct ML model
    /// per group instead of the structural sub-models ([`AutoPowerMinus`]).
    AutoPowerMinus,
}

impl ModelKind {
    /// Every registry model, in the paper's reporting order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::AutoPower,
        ModelKind::McpatCalib,
        ModelKind::McpatCalibComponent,
        ModelKind::AutoPowerMinus,
    ];

    /// The kebab-case registry name (`--model` flag value).
    pub fn registry_name(self) -> &'static str {
        match self {
            ModelKind::AutoPower => "autopower",
            ModelKind::McpatCalib => "mcpat-calib",
            ModelKind::McpatCalibComponent => "mcpat-calib-component",
            ModelKind::AutoPowerMinus => "autopower-minus",
        }
    }

    /// The method name as the paper's tables and figures print it.
    pub fn paper_name(self) -> &'static str {
        match self {
            ModelKind::AutoPower => "AutoPower",
            ModelKind::McpatCalib => "McPAT-Calib",
            ModelKind::McpatCalibComponent => "McPAT-Calib + Component",
            ModelKind::AutoPowerMinus => "AutoPower-",
        }
    }

    /// Whether predictions of this kind carry a core-level group view
    /// ([`Prediction::groups`] is `Some`).
    pub fn resolves_groups(self) -> bool {
        match self {
            ModelKind::AutoPower | ModelKind::AutoPowerMinus => true,
            ModelKind::McpatCalib | ModelKind::McpatCalibComponent => false,
        }
    }

    /// Whether this kind answers [`PowerModel::predict_components`] — the
    /// models the per-component detail experiments (Figs. 7/8) loop over.
    pub fn resolves_components(self) -> bool {
        match self {
            ModelKind::AutoPower | ModelKind::AutoPowerMinus | ModelKind::McpatCalibComponent => {
                true
            }
            ModelKind::McpatCalib => false,
        }
    }

    /// Every component-resolving registry model, in [`ModelKind::ALL`] order.
    pub fn component_resolving() -> Vec<ModelKind> {
        ModelKind::ALL
            .into_iter()
            .filter(|kind| kind.resolves_components())
            .collect()
    }

    /// Trains this kind of model on the runs of `train_configs`.
    ///
    /// The training set is validated up front for every kind: it must be
    /// non-empty, duplicate-free (duplicates would silently double-weight a
    /// configuration's runs) and fully present in the corpus (a missing
    /// configuration would silently shrink the split).
    ///
    /// # Errors
    ///
    /// Returns [`AutoPowerError::NoTrainingConfigs`],
    /// [`AutoPowerError::DuplicateTrainingConfig`] or
    /// [`AutoPowerError::MissingConfig`] for an invalid training set, or
    /// whatever the underlying trainer reports (sub-model fit failure).
    pub fn train(
        self,
        corpus: &Corpus,
        train_configs: &[ConfigId],
    ) -> Result<Box<dyn PowerModel>, AutoPowerError> {
        validate_training_set(corpus, train_configs)?;
        Ok(match self {
            ModelKind::AutoPower => Box::new(AutoPower::train(corpus, train_configs)?),
            ModelKind::McpatCalib => Box::new(McpatCalib::train(corpus, train_configs)?),
            ModelKind::McpatCalibComponent => {
                Box::new(McpatCalibComponent::train(corpus, train_configs)?)
            }
            ModelKind::AutoPowerMinus => Box::new(AutoPowerMinus::train(corpus, train_configs)?),
        })
    }

    /// Decodes a trained model body of this kind from a codec stream (the
    /// counterpart of [`PowerModel::serialize`], dispatched from the registry
    /// tag by [`load_model`](crate::load_model)).
    ///
    /// # Errors
    ///
    /// Returns [`AutoPowerError::ModelFormat`] if the body does not parse.
    pub fn decode_trained(self, r: &mut Reader<'_>) -> Result<Box<dyn PowerModel>, AutoPowerError> {
        let model: Box<dyn PowerModel> = match self {
            ModelKind::AutoPower => Box::new(AutoPower::decode(r)?),
            ModelKind::McpatCalib => Box::new(McpatCalib::decode(r)?),
            ModelKind::McpatCalibComponent => Box::new(McpatCalibComponent::decode(r)?),
            ModelKind::AutoPowerMinus => Box::new(AutoPowerMinus::decode(r)?),
        };
        Ok(model)
    }
}

/// Shared up-front validation of a training set (see [`ModelKind::train`]).
fn validate_training_set(
    corpus: &Corpus,
    train_configs: &[ConfigId],
) -> Result<(), AutoPowerError> {
    if train_configs.is_empty() {
        return Err(AutoPowerError::NoTrainingConfigs);
    }
    for (i, &id) in train_configs.iter().enumerate() {
        if train_configs[..i].contains(&id) {
            return Err(AutoPowerError::DuplicateTrainingConfig(id));
        }
        if corpus.runs_for(id).is_empty() {
            return Err(AutoPowerError::MissingConfig(id));
        }
    }
    Ok(())
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.registry_name())
    }
}

impl FromStr for ModelKind {
    type Err = AutoPowerError;

    /// Resolves a registry name, case-insensitively.  `_` is accepted in
    /// place of `-` so shell-friendly spellings work too.  The error message
    /// of an unknown name lists every valid registry name.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.to_ascii_lowercase().replace('_', "-");
        ModelKind::ALL
            .into_iter()
            .find(|kind| kind.registry_name() == normalized)
            .ok_or_else(|| AutoPowerError::UnknownModel(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use autopower_config::boom_configs;

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn registry_names_round_trip_through_fromstr() {
        for kind in ModelKind::ALL {
            assert_eq!(kind.registry_name().parse::<ModelKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.registry_name());
        }
        // Case-insensitive, underscore-tolerant.
        assert_eq!(
            "McPAT_Calib".parse::<ModelKind>().unwrap(),
            ModelKind::McpatCalib
        );
    }

    #[test]
    fn unknown_model_errors_list_every_registry_name() {
        let err = "xgboost".parse::<ModelKind>().unwrap_err();
        assert!(matches!(err, AutoPowerError::UnknownModel(_)));
        let message = err.to_string();
        assert!(message.contains("xgboost"));
        for kind in ModelKind::ALL {
            assert!(
                message.contains(kind.registry_name()),
                "message {message:?} does not hint at {kind}"
            );
        }
    }

    #[test]
    fn every_registry_model_trains_and_predicts() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        for kind in ModelKind::ALL {
            let model = kind.train(&c, &train).unwrap();
            assert_eq!(model.kind(), kind);
            for run in c.runs() {
                let p = model.predict_run(run);
                assert!(p.is_physical(), "{kind} produced non-physical power");
                assert!(p.total() > 0.0, "{kind} predicted zero power");
                assert_eq!(model.predict_total(run), p.total());
                // The typed resolution matches the registry metadata.
                assert_eq!(p.groups().is_some(), kind.resolves_groups(), "{kind}");
                let breakdown = model.predict_run_components(run);
                assert_eq!(breakdown.is_some(), kind.resolves_components(), "{kind}");
                if let Some(b) = breakdown {
                    for (component, entry) in b.iter() {
                        assert!(
                            entry.total.is_finite() && entry.total >= 0.0,
                            "{kind} {component}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn component_resolving_lists_three_models_in_paper_order() {
        assert_eq!(
            ModelKind::component_resolving(),
            vec![
                ModelKind::AutoPower,
                ModelKind::McpatCalibComponent,
                ModelKind::AutoPowerMinus,
            ]
        );
    }

    #[test]
    fn training_errors_propagate_through_the_registry() {
        let c = corpus();
        for kind in ModelKind::ALL {
            assert!(
                matches!(kind.train(&c, &[]), Err(AutoPowerError::NoTrainingConfigs)),
                "{kind} accepted empty training"
            );
        }
    }

    #[test]
    fn duplicate_training_configs_error_with_the_config_name() {
        let c = corpus();
        let dup = [ConfigId::new(1), ConfigId::new(15), ConfigId::new(1)];
        for kind in ModelKind::ALL {
            let err = kind.train(&c, &dup).unwrap_err();
            assert_eq!(
                err,
                AutoPowerError::DuplicateTrainingConfig(ConfigId::new(1))
            );
            assert!(err.to_string().contains("C1"), "{kind}: {err}");
        }
    }

    #[test]
    fn missing_training_configs_error_with_the_config_name() {
        let c = corpus();
        // C3 is a valid seed id but absent from this corpus.
        let missing = [ConfigId::new(1), ConfigId::new(3)];
        for kind in ModelKind::ALL {
            let err = kind.train(&c, &missing).unwrap_err();
            assert_eq!(err, AutoPowerError::MissingConfig(ConfigId::new(3)));
            assert!(err.to_string().contains("C3"), "{kind}: {err}");
        }
    }

    #[test]
    fn boxed_models_are_shareable_across_threads() {
        fn check<T: Send + Sync + ?Sized>() {}
        check::<dyn PowerModel>();
        check::<Box<dyn PowerModel>>();
    }
}
