//! Batch inference over generated configurations: the design-space sweep path.
//!
//! Corpus generation ([`Corpus`](crate::Corpus)) runs the *full* substrate flow
//! — synthesis, performance simulation and golden power — because training and
//! evaluation need ground truth.  Scoring an unseen configuration needs none of
//! that: a trained model predicts power from the hardware parameters `H` and
//! the event parameters `E` alone, and `E` comes from a fast performance
//! simulation.  That asymmetry is the paper's whole point, and [`SweepEngine`]
//! exploits it to score thousands of configurations that were never
//! synthesized and never power-simulated — under any [`PowerModel`]
//! implementation, not just [`AutoPower`].
//!
//! The engine shards the `configs × workloads` cross product into bounded
//! chunks and runs each chunk through the same `parallel_map` substrate the
//! corpus pipeline uses.  Each job simulates one pair, predicts its power, and
//! keeps only a compact [`SweepPoint`] — the heavyweight simulation state dies
//! with the job, so memory stays flat no matter how many configurations are
//! swept.  Results are collected in input order, making the sweep bit-identical
//! for every worker-thread count.
//!
//! Two optimizations make sweep-side simulation run at prediction-like cost,
//! both provably exact:
//!
//! * **Allocation-free hot loop** — every worker owns one
//!   [`SimScratch`] (reused pipeline machine +
//!   materialized instruction streams), one [`FeatureScratch`] and one reusable
//!   [`EventParams`], and runs the counters-only
//!   [`simulate_counters_with`] path: interval recording is pure observation,
//!   so skipping it cannot change the whole-run counters.
//! * **Exact memoization** — the engine keys each simulation by
//!   [`SimKey`], the projection of the configuration
//!   onto the parameters the simulator actually reads.  Configurations that
//!   differ only along simulation-invisible (power-only) axes share one
//!   simulation; predictions still differ because the hardware features `H`
//!   and the per-configuration event distortion are applied downstream of the
//!   cached counters.  [`SweepSpec::use_sim_cache`] disables the cache for
//!   audits; output is bit-identical either way.
//!
//! Points carry typed [`Prediction`]s: a total-only model contributes totals
//! and nothing else, a group-resolving model contributes per-group structure,
//! and [`summarize`] folds whatever structure is actually there —
//! [`ConfigSummary::mean_groups`] is `Some` exactly when the model resolved
//! groups.

use crate::features::FeatureScratch;
use crate::model::AutoPower;
use crate::pipeline::parallel_map_with;
use crate::power_model::PowerModel;
use crate::prediction::Prediction;
use autopower_config::{CpuConfig, Workload};
use autopower_perfsim::{
    simulate_counters_with, EventCounters, EventParams, SimCache, SimCacheStats, SimConfig, SimKey,
    SimScratch,
};
use autopower_powersim::PowerGroups;

/// Knobs of a design-space sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSpec {
    /// Performance-simulation settings used to obtain each point's event
    /// parameters.
    pub sim: SimConfig,
    /// Worker threads per shard: `0` (the default) uses one worker per
    /// available core, `1` runs serially.  The predictions are bit-identical
    /// for every value.
    pub threads: usize,
    /// Configurations per shard; bounds peak memory and work-queue length.
    pub chunk_configs: usize,
    /// Whether to memoize simulation results across the sweep.  Two
    /// configurations differing only along simulation-invisible axes then
    /// share one simulation — an exact deduplication, bit-identical output
    /// either way.  On by default; disable for audits.
    pub use_sim_cache: bool,
}

impl SweepSpec {
    /// Paper-scale simulation settings.
    pub fn paper() -> Self {
        Self {
            sim: SimConfig::paper(),
            threads: 0,
            chunk_configs: 64,
            use_sim_cache: true,
        }
    }

    /// Small, fast settings for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            sim: SimConfig::fast(),
            ..Self::paper()
        }
    }

    /// Same settings with an explicit worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Same settings with the simulation cache switched on or off.
    pub fn sim_cache(mut self, enabled: bool) -> Self {
        self.use_sim_cache = enabled;
        self
    }

    /// The worker count a sweep will actually use.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self::paper()
    }
}

/// One scored `(configuration, workload)` point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The scored configuration.
    pub config: CpuConfig,
    /// The simulated workload.
    pub workload: Workload,
    /// The typed power prediction (total + whatever structure the model
    /// resolves).
    pub power: Prediction,
    /// Simulated instructions per cycle.
    pub ipc: f64,
}

/// Per-configuration aggregate over all swept workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigSummary {
    /// The scored configuration.
    pub config: CpuConfig,
    /// Mean predicted total power across the workloads, in mW.
    pub mean_total: f64,
    /// Mean predicted per-group power across the workloads, in mW — `Some`
    /// exactly when the model resolved groups for every point.
    pub mean_groups: Option<PowerGroups>,
    /// Mean simulated IPC across the workloads.
    pub mean_ipc: f64,
    /// Mean energy per instruction in pJ (power / IPC at a nominal 1 GHz).
    pub energy_per_instruction: f64,
}

/// Per-worker reusable state of a sweep: simulation scratch, feature-row
/// scratch and one event-parameter set absorbing every derivation.
struct SweepScratch {
    sim: SimScratch,
    features: FeatureScratch,
    events: EventParams,
}

impl SweepScratch {
    fn new() -> Self {
        Self {
            sim: SimScratch::new(),
            features: FeatureScratch::new(),
            events: EventParams::empty(),
        }
    }
}

/// Whole-run counters for one pair, answered from `cache` when enabled.
fn simulated_counters(
    cache: Option<&SimCache>,
    config: &CpuConfig,
    workload: Workload,
    sim: &SimConfig,
    scratch: &mut SimScratch,
) -> EventCounters {
    match cache {
        Some(cache) => cache.counters_for(SimKey::new(config, workload, sim), || {
            simulate_counters_with(config, workload, sim, scratch)
        }),
        None => simulate_counters_with(config, workload, sim, scratch),
    }
}

/// Sweeps a set of configurations through a trained model.
///
/// Model-agnostic: the engine holds a [`&dyn PowerModel`](PowerModel), so any
/// registry model ([`ModelKind`](crate::ModelKind)) — AutoPower or a baseline —
/// drives the same batch-inference path.  The engine owns the [`SimCache`]
/// that deduplicates simulations across everything it runs; its
/// [`SweepEngine::cache_stats`] feed the sweep report.
#[derive(Debug)]
pub struct SweepEngine<'a> {
    model: &'a dyn PowerModel,
    spec: SweepSpec,
    cache: SimCache,
}

impl<'a> SweepEngine<'a> {
    /// Creates an engine around any trained [`PowerModel`].
    pub fn new(model: &'a dyn PowerModel, spec: SweepSpec) -> Self {
        Self {
            model,
            spec,
            cache: SimCache::new(),
        }
    }

    /// The sweep settings.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// Hit/miss statistics of the simulation cache across every sweep this
    /// engine has run (all zero when the cache is disabled or unused).
    pub fn cache_stats(&self) -> SimCacheStats {
        self.cache.stats()
    }

    /// Scores one `(configuration, workload)` pair into a [`SweepPoint`],
    /// reusing `scratch` for simulation, event derivation and feature rows.
    fn score_point(
        &self,
        cache: Option<&SimCache>,
        config: &CpuConfig,
        workload: Workload,
        scratch: &mut SweepScratch,
    ) -> SweepPoint {
        let counters =
            simulated_counters(cache, config, workload, &self.spec.sim, &mut scratch.sim);
        EventParams::from_counters_into(
            &counters,
            config.id,
            workload,
            self.spec.sim.event_distortion,
            &mut scratch.events,
        );
        SweepPoint {
            config: *config,
            workload,
            power: self.model.predict_with(
                config,
                &scratch.events,
                workload,
                &mut scratch.features,
            ),
            ipc: counters.ipc(),
        }
    }

    /// Streams every `(configuration, workload)` pair through `sink`,
    /// configuration-major, in deterministic input order — without retaining
    /// any point itself.
    ///
    /// This is the primitive under both the materializing [`SweepEngine::run`]
    /// (whose sink is `Vec::push`) and the bounded-memory streaming sweep
    /// ([`SweepEngine::stream`](crate::stream)): the scoring work, the worker
    /// scratch reuse and the emission order are byte-for-byte the same, so the
    /// two paths cannot drift apart.  Parallel scoring still shards `configs`
    /// into [`SweepSpec::chunk_configs`]-sized chunks; only one chunk of
    /// points is ever in flight.
    pub fn for_each_point(
        &self,
        configs: &[CpuConfig],
        workloads: &[Workload],
        mut sink: impl FnMut(SweepPoint),
    ) {
        let threads = self.spec.effective_threads();
        let per_config = workloads.len();
        let cache = self.spec.use_sim_cache.then_some(&self.cache);
        if threads <= 1 {
            // Serial fast path: one scratch for the whole sweep, so replay
            // streams and pipeline state are materialized once instead of
            // once per shard.  Scoring order — and therefore output — is
            // identical to the sharded path.
            let mut scratch = SweepScratch::new();
            for config in configs {
                for &workload in workloads {
                    sink(self.score_point(cache, config, workload, &mut scratch));
                }
            }
            return;
        }
        let chunk = self.spec.chunk_configs.max(1);
        for shard in configs.chunks(chunk) {
            // Each worker owns one SweepScratch for its whole lifetime, so
            // scoring a point simulates into a reused machine, derives events
            // into reused storage and assembles every feature row without
            // allocating per sub-model.
            for point in parallel_map_with(
                threads,
                shard.len() * per_config,
                SweepScratch::new,
                |scratch, i| {
                    let config = shard[i / per_config];
                    let workload = workloads[i % per_config];
                    self.score_point(cache, &config, workload, scratch)
                },
            ) {
                sink(point);
            }
        }
    }

    /// Scores every `(configuration, workload)` pair, configuration-major, in
    /// deterministic input order.
    ///
    /// Thin materializing wrapper over [`SweepEngine::for_each_point`].
    pub fn run(&self, configs: &[CpuConfig], workloads: &[Workload]) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(configs.len() * workloads.len());
        self.for_each_point(configs, workloads, |p| points.push(p));
        points
    }

    /// Scores every pair and folds the points into one [`ConfigSummary`] per
    /// configuration, in input order.
    pub fn run_summaries(
        &self,
        configs: &[CpuConfig],
        workloads: &[Workload],
    ) -> Vec<ConfigSummary> {
        summarize(&self.run(configs, workloads), workloads.len())
    }
}

/// Scores every `(configuration, workload)` pair under several models while
/// running the performance simulation of each pair only **once**.
///
/// The simulation depends only on the configuration and workload, never on the
/// model, so sweeping `m` models costs one simulation pass plus `m` cheap
/// prediction passes instead of `m` full sweeps.  Returns one point list per
/// model, each bit-identical to what `SweepEngine::new(model, spec).run(...)`
/// would produce on its own.
pub fn sweep_multi(
    models: &[&dyn PowerModel],
    spec: &SweepSpec,
    configs: &[CpuConfig],
    workloads: &[Workload],
) -> Vec<Vec<SweepPoint>> {
    sweep_multi_with_stats(models, spec, configs, workloads).0
}

/// [`sweep_multi`] returning the simulation-cache statistics alongside the
/// per-model points (for comparison reports).
pub fn sweep_multi_with_stats(
    models: &[&dyn PowerModel],
    spec: &SweepSpec,
    configs: &[CpuConfig],
    workloads: &[Workload],
) -> (Vec<Vec<SweepPoint>>, SimCacheStats) {
    let threads = spec.effective_threads();
    let per_config = workloads.len();
    let chunk = spec.chunk_configs.max(1);
    let cache = SimCache::new();
    let cache_ref = spec.use_sim_cache.then_some(&cache);
    let mut results: Vec<Vec<SweepPoint>> = models
        .iter()
        .map(|_| Vec::with_capacity(configs.len() * per_config))
        .collect();
    if threads <= 1 {
        // Serial fast path mirroring SweepEngine::run: one scratch for the
        // whole sweep, identical scoring order.
        let mut scratch = SweepScratch::new();
        for config in configs {
            for &workload in workloads {
                let counters =
                    simulated_counters(cache_ref, config, workload, &spec.sim, &mut scratch.sim);
                EventParams::from_counters_into(
                    &counters,
                    config.id,
                    workload,
                    spec.sim.event_distortion,
                    &mut scratch.events,
                );
                let ipc = counters.ipc();
                for (model, slot) in models.iter().zip(results.iter_mut()) {
                    slot.push(SweepPoint {
                        config: *config,
                        workload,
                        power: model.predict_with(
                            config,
                            &scratch.events,
                            workload,
                            &mut scratch.features,
                        ),
                        ipc,
                    });
                }
            }
        }
        let stats = cache.stats();
        return (results, stats);
    }
    for shard in configs.chunks(chunk) {
        let shard_points = parallel_map_with(
            threads,
            shard.len() * per_config,
            SweepScratch::new,
            |scratch, i| {
                let config = shard[i / per_config];
                let workload = workloads[i % per_config];
                let counters =
                    simulated_counters(cache_ref, &config, workload, &spec.sim, &mut scratch.sim);
                EventParams::from_counters_into(
                    &counters,
                    config.id,
                    workload,
                    spec.sim.event_distortion,
                    &mut scratch.events,
                );
                let ipc = counters.ipc();
                models
                    .iter()
                    .map(|model| SweepPoint {
                        config,
                        workload,
                        power: model.predict_with(
                            &config,
                            &scratch.events,
                            workload,
                            &mut scratch.features,
                        ),
                        ipc,
                    })
                    .collect::<Vec<_>>()
            },
        );
        for per_model in shard_points {
            for (slot, point) in results.iter_mut().zip(per_model) {
                slot.push(point);
            }
        }
    }
    let stats = cache.stats();
    (results, stats)
}

/// Sorts summaries by predicted energy per instruction, best (lowest) first.
///
/// The single ranking rule behind the sweep report's top-k table and the
/// model-comparison rank-divergence figures.
///
/// The sort is a total order (`f64::total_cmp` over sign-canonicalised keys),
/// so it never panics: every NaN efficiency ranks **last** — after every
/// finite value and `+∞` — instead of aborting the whole report.  Ties keep
/// input order (the sort is stable), so the ranking stays deterministic.
pub fn rank_by_efficiency(summaries: &[ConfigSummary]) -> Vec<&ConfigSummary> {
    let mut ranked: Vec<&ConfigSummary> = summaries.iter().collect();
    ranked.sort_by(|a, b| {
        efficiency_sort_key(a.energy_per_instruction)
            .total_cmp(&efficiency_sort_key(b.energy_per_instruction))
    });
    ranked
}

/// The canonicalised sort key behind [`rank_by_efficiency`] — shared with the
/// streaming top-k retainer so both rankings are one total order.
///
/// IEEE-754 totally orders negative-sign NaNs *below* -inf; canonicalise to
/// the positive quiet NaN so "NaN ranks last" holds regardless of the sign
/// bit the producing arithmetic happened to leave behind.
pub(crate) fn efficiency_sort_key(v: f64) -> f64 {
    if v.is_nan() {
        f64::from_bits(0x7ff8_0000_0000_0000)
    } else {
        v
    }
}

/// Folds configuration-major sweep points into per-configuration summaries.
///
/// The group mean is reported only when every point of a configuration
/// resolves groups; for total-only models the summary carries the mean total
/// and no group structure.
///
/// # Panics
///
/// Panics if `points` is not a whole number of `per_config`-sized groups.
pub fn summarize(points: &[SweepPoint], per_config: usize) -> Vec<ConfigSummary> {
    assert!(
        per_config > 0,
        "need at least one workload per configuration"
    );
    assert_eq!(
        points.len() % per_config,
        0,
        "points must cover every workload of every configuration"
    );
    points.chunks(per_config).map(config_summary).collect()
}

/// Folds the points of **one** configuration (all its workloads, in workload
/// order) into its [`ConfigSummary`].
///
/// This is the single fold behind both the materialized [`summarize`] and the
/// streaming [`SweepAggregator`](crate::SweepAggregator), so the two paths
/// produce bit-identical summaries by construction: same accumulation order,
/// same division points.
///
/// # Panics
///
/// Panics if `group` is empty.
pub fn config_summary(group: &[SweepPoint]) -> ConfigSummary {
    assert!(
        !group.is_empty(),
        "a configuration needs at least one point"
    );
    let n = group.len() as f64;
    let mut mean_ipc = 0.0;
    for p in group {
        mean_ipc += p.ipc;
    }
    mean_ipc /= n;

    // Group-resolving models: accumulate group-wise and derive the total from
    // the divided groups (the historical summation order, kept so totals stay
    // bit-identical).  Total-only models: average the totals directly.
    let mut mean_groups = Some(PowerGroups::default());
    for p in group {
        mean_groups = match (mean_groups, p.power.groups()) {
            (Some(mut sum), Some(g)) => {
                sum += g;
                Some(sum)
            }
            _ => None,
        };
    }
    let mean_groups = mean_groups.map(|mut g| {
        g.clock /= n;
        g.sram /= n;
        g.register /= n;
        g.combinational /= n;
        g
    });
    let mean_total = match mean_groups {
        Some(g) => g.total(),
        None => group.iter().map(|p| p.power.total()).sum::<f64>() / n,
    };
    ConfigSummary {
        config: group[0].config,
        mean_total,
        mean_groups,
        mean_ipc,
        energy_per_instruction: mean_total / mean_ipc.max(1e-9),
    }
}

impl AutoPower {
    /// Batch inference: predicts per-group power (and simulated IPC) for every
    /// `(configuration, workload)` pair without synthesis or golden power.
    ///
    /// Convenience wrapper around [`SweepEngine::run`].
    pub fn predict_batch(
        &self,
        configs: &[CpuConfig],
        workloads: &[Workload],
        spec: &SweepSpec,
    ) -> Vec<SweepPoint> {
        SweepEngine::new(self, *spec).run(configs, workloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Corpus, CorpusSpec};
    use crate::power_model::ModelKind;
    use autopower_config::{boom_configs, ConfigId, DesignSpace};

    fn trained_model() -> AutoPower {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)]).unwrap()
    }

    #[test]
    fn batch_predictions_cover_every_pair_in_order() {
        let model = trained_model();
        let configs = DesignSpace::boom().sample(5, 11);
        let workloads = [Workload::Dhrystone, Workload::Qsort];
        let points = model.predict_batch(&configs, &workloads, &SweepSpec::fast().threads(1));
        assert_eq!(points.len(), 10);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.config, configs[i / 2]);
            assert_eq!(p.workload, workloads[i % 2]);
            assert!(p.power.total() > 0.0, "non-physical power at point {i}");
            assert!(p.power.groups().is_some(), "AutoPower resolves groups");
            assert!(p.ipc > 0.0);
        }
    }

    #[test]
    fn sweep_is_bit_identical_across_thread_counts_and_chunking() {
        let model = trained_model();
        let configs = DesignSpace::boom().sample(6, 3);
        let workloads = [Workload::Dhrystone, Workload::Vvadd];
        let serial = SweepEngine::new(
            &model,
            SweepSpec {
                chunk_configs: 1,
                ..SweepSpec::fast().threads(1)
            },
        )
        .run(&configs, &workloads);
        let parallel =
            SweepEngine::new(&model, SweepSpec::fast().threads(8)).run(&configs, &workloads);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cached_sweep_is_bit_identical_and_deduplicates_invisible_axes() {
        use autopower_config::HwParam;
        let model = trained_model();
        // Two configurations differing only in BranchCount within one
        // predictor bucket (10 and 16 both round to 4096 entries): the
        // simulation cannot tell them apart, the power model can.
        let space = DesignSpace::boom()
            .with_axis(HwParam::FetchWidth, vec![4])
            .with_axis(HwParam::DecodeWidth, vec![2])
            .with_axis(HwParam::RobEntry, vec![64])
            .with_axis(HwParam::IntIssueWidth, vec![2])
            .with_axis(HwParam::MemFpIssueWidth, vec![1])
            .with_axis(HwParam::CacheWay, vec![4])
            .with_axis(HwParam::DtlbEntry, vec![16])
            .with_axis(HwParam::BranchCount, vec![10, 16])
            .with_axis(HwParam::MshrEntry, vec![4]);
        let configs: Vec<_> = space.enumerate().collect();
        assert_eq!(configs.len(), 2);
        let workloads = [Workload::Dhrystone, Workload::Qsort];

        let cached_engine = SweepEngine::new(&model, SweepSpec::fast().threads(1));
        let cached = cached_engine.run(&configs, &workloads);
        let uncached_engine =
            SweepEngine::new(&model, SweepSpec::fast().threads(1).sim_cache(false));
        let uncached = uncached_engine.run(&configs, &workloads);
        assert_eq!(cached, uncached, "cache changed sweep output");

        // The second configuration's simulations were answered from the cache.
        let stats = cached_engine.cache_stats();
        assert_eq!(stats.misses, workloads.len() as u64);
        assert_eq!(stats.hits, workloads.len() as u64);
        assert_eq!(stats.hit_rate(), 0.5);
        let off = uncached_engine.cache_stats();
        assert_eq!((off.hits, off.misses), (0, 0));

        // Shared simulation, distinct predictions: IPC (a counter projection)
        // matches across the pair, power (H features + per-config distortion)
        // does not.
        assert_eq!(cached[0].ipc, cached[2].ipc);
        assert_ne!(cached[0].power, cached[2].power);
    }

    #[test]
    fn multi_model_sweep_matches_per_model_engines_bit_for_bit() {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let models: Vec<_> = ModelKind::ALL
            .into_iter()
            .map(|kind| kind.train(&corpus, &train).unwrap())
            .collect();
        let refs: Vec<&dyn PowerModel> = models.iter().map(|m| m.as_ref()).collect();
        let configs = DesignSpace::boom().sample(4, 9);
        let workloads = [Workload::Dhrystone, Workload::Qsort];
        let spec = SweepSpec::fast().threads(2);
        let multi = sweep_multi(&refs, &spec, &configs, &workloads);
        assert_eq!(multi.len(), refs.len());
        for (model, points) in refs.iter().zip(&multi) {
            let solo = SweepEngine::new(*model, spec).run(&configs, &workloads);
            assert_eq!(&solo, points);
        }
    }

    #[test]
    fn efficiency_ranking_is_sorted_and_complete() {
        let model = trained_model();
        let configs = DesignSpace::boom().sample(5, 21);
        let workloads = [Workload::Dhrystone];
        let summaries = SweepEngine::new(&model, SweepSpec::fast().threads(1))
            .run_summaries(&configs, &workloads);
        let ranked = rank_by_efficiency(&summaries);
        assert_eq!(ranked.len(), summaries.len());
        for pair in ranked.windows(2) {
            assert!(pair[0].energy_per_instruction <= pair[1].energy_per_instruction);
        }
    }

    #[test]
    fn summaries_average_over_workloads() {
        let model = trained_model();
        let configs = DesignSpace::boom().sample(3, 5);
        let workloads = [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];
        let engine = SweepEngine::new(&model, SweepSpec::fast().threads(1));
        let points = engine.run(&configs, &workloads);
        let summaries = summarize(&points, workloads.len());
        assert_eq!(summaries.len(), 3);
        for (i, s) in summaries.iter().enumerate() {
            assert_eq!(s.config, configs[i]);
            let expected: f64 = points[i * 3..(i + 1) * 3]
                .iter()
                .map(|p| p.power.total())
                .sum::<f64>()
                / 3.0;
            assert!((s.mean_total - expected).abs() < 1e-9);
            assert!(s.mean_groups.is_some(), "AutoPower summaries carry groups");
            assert!(s.energy_per_instruction > 0.0);
        }
        assert_eq!(summaries, engine.run_summaries(&configs, &workloads));
    }

    #[test]
    fn total_only_summaries_carry_no_group_structure() {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let model = ModelKind::McpatCalib.train(&corpus, &train).unwrap();
        let configs = DesignSpace::boom().sample(3, 41);
        let workloads = [Workload::Dhrystone, Workload::Vvadd];
        let engine = SweepEngine::new(model.as_ref(), SweepSpec::fast().threads(1));
        let points = engine.run(&configs, &workloads);
        let summaries = summarize(&points, workloads.len());
        for (i, s) in summaries.iter().enumerate() {
            assert!(s.mean_groups.is_none(), "total-only model resolved groups");
            let expected: f64 = points[i * 2..(i + 1) * 2]
                .iter()
                .map(|p| p.power.total())
                .sum::<f64>()
                / 2.0;
            assert_eq!(s.mean_total, expected);
            assert!(s.mean_total > 0.0);
        }
    }

    #[test]
    fn nan_efficiencies_rank_last_without_panicking() {
        let config = boom_configs()[0];
        let summary = |epi: f64| ConfigSummary {
            config,
            mean_total: 1.0,
            mean_groups: None,
            mean_ipc: 1.0,
            energy_per_instruction: epi,
        };
        // Both NaN sign bits, mixed with finite values and +inf.
        let negative_nan = f64::from_bits(0xfff8_0000_0000_0001);
        let summaries = vec![
            summary(f64::NAN),
            summary(2.0),
            summary(negative_nan),
            summary(f64::INFINITY),
            summary(1.0),
        ];
        let ranked = rank_by_efficiency(&summaries);
        let order: Vec<f64> = ranked.iter().map(|s| s.energy_per_instruction).collect();
        assert_eq!(order[0], 1.0);
        assert_eq!(order[1], 2.0);
        assert_eq!(order[2], f64::INFINITY);
        // Every NaN ranks after every non-NaN, in stable input order.
        assert!(order[3].is_nan() && order[4].is_nan());
        assert_eq!(order[3].to_bits(), f64::NAN.to_bits());
        assert_eq!(order[4].to_bits(), negative_nan.to_bits());
    }

    #[test]
    #[should_panic(expected = "every workload")]
    fn ragged_summary_input_panics() {
        let model = trained_model();
        let configs = DesignSpace::boom().sample(1, 1);
        let points = model.predict_batch(&configs, &[Workload::Vvadd], &SweepSpec::fast());
        let _ = summarize(&points, 2);
    }
}
