//! Batch inference over generated configurations: the design-space sweep path.
//!
//! Corpus generation ([`Corpus`](crate::Corpus)) runs the *full* substrate flow
//! — synthesis, performance simulation and golden power — because training and
//! evaluation need ground truth.  Scoring an unseen configuration needs none of
//! that: a trained model predicts power from the hardware parameters `H` and
//! the event parameters `E` alone, and `E` comes from a fast performance
//! simulation.  That asymmetry is the paper's whole point, and [`SweepEngine`]
//! exploits it to score thousands of configurations that were never
//! synthesized and never power-simulated — under any [`PowerModel`]
//! implementation, not just [`AutoPower`].
//!
//! The engine shards the `configs × workloads` cross product into bounded
//! chunks and runs each chunk through the same `parallel_map` substrate the
//! corpus pipeline uses.  Each job simulates one pair, predicts its power, and
//! keeps only a compact [`SweepPoint`] — the heavyweight simulation state dies
//! with the job, so memory stays flat no matter how many configurations are
//! swept.  Results are collected in input order, making the sweep bit-identical
//! for every worker-thread count.
//!
//! Two optimizations make sweep-side simulation run at prediction-like cost,
//! both provably exact:
//!
//! * **Allocation-free hot loop** — every worker owns one
//!   [`SimScratch`] (reused pipeline machine +
//!   materialized instruction streams), one [`FeatureScratch`] and one reusable
//!   [`EventParams`], and runs the counters-only
//!   [`simulate_counters_with`] path: interval recording is pure observation,
//!   so skipping it cannot change the whole-run counters.
//! * **Exact memoization** — the engine keys each simulation by
//!   [`SimKey`], the projection of the configuration
//!   onto the parameters the simulator actually reads.  Configurations that
//!   differ only along simulation-invisible (power-only) axes share one
//!   simulation; predictions still differ because the hardware features `H`
//!   and the per-configuration event distortion are applied downstream of the
//!   cached counters.  [`SweepSpec::use_sim_cache`] disables the cache for
//!   audits; output is bit-identical either way.
//!
//! Points carry typed [`Prediction`]s: a total-only model contributes totals
//! and nothing else, a group-resolving model contributes per-group structure,
//! and [`summarize`] folds whatever structure is actually there —
//! [`ConfigSummary::mean_groups`] is `Some` exactly when the model resolved
//! groups.

use crate::error::AutoPowerError;
use crate::features::FeatureScratch;
use crate::model::AutoPower;
use crate::pipeline::parallel_map_with;
use crate::power_model::{PowerModel, PredictInput};
use crate::prediction::Prediction;
use crate::surrogate::{audit_selected, ActivitySurrogate, AuditAccumulator, AuditReport};
use autopower_config::{CpuConfig, Workload};
use autopower_ml::Matrix;
use autopower_perfsim::{
    simulate_counters_with, EventCounters, EventParams, SimCache, SimCacheStats, SimConfig, SimKey,
    SimScratch,
};
use autopower_powersim::PowerGroups;
use std::sync::Mutex;

/// Knobs of a design-space sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSpec {
    /// Performance-simulation settings used to obtain each point's event
    /// parameters.
    pub sim: SimConfig,
    /// Worker threads per shard: `0` (the default) uses one worker per
    /// available core, `1` runs serially.  The predictions are bit-identical
    /// for every value.
    pub threads: usize,
    /// Configurations per shard; bounds peak memory and work-queue length.
    pub chunk_configs: usize,
    /// Whether to memoize simulation results across the sweep.  Two
    /// configurations differing only along simulation-invisible axes then
    /// share one simulation — an exact deduplication, bit-identical output
    /// either way.  On by default; disable for audits.
    pub use_sim_cache: bool,
}

impl SweepSpec {
    /// Paper-scale simulation settings.
    pub fn paper() -> Self {
        Self {
            sim: SimConfig::paper(),
            threads: 0,
            chunk_configs: 64,
            use_sim_cache: true,
        }
    }

    /// Small, fast settings for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            sim: SimConfig::fast(),
            ..Self::paper()
        }
    }

    /// Same settings with an explicit worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Same settings with the simulation cache switched on or off.
    pub fn sim_cache(mut self, enabled: bool) -> Self {
        self.use_sim_cache = enabled;
        self
    }

    /// The worker count a sweep will actually use.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self::paper()
    }
}

/// One scored `(configuration, workload)` point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The scored configuration.
    pub config: CpuConfig,
    /// The simulated workload.
    pub workload: Workload,
    /// The typed power prediction (total + whatever structure the model
    /// resolves).
    pub power: Prediction,
    /// Simulated instructions per cycle.
    pub ipc: f64,
}

/// Per-configuration aggregate over all swept workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigSummary {
    /// The scored configuration.
    pub config: CpuConfig,
    /// Mean predicted total power across the workloads, in mW.
    pub mean_total: f64,
    /// Mean predicted per-group power across the workloads, in mW — `Some`
    /// exactly when the model resolved groups for every point.
    pub mean_groups: Option<PowerGroups>,
    /// Mean simulated IPC across the workloads.
    pub mean_ipc: f64,
    /// Mean energy per instruction in pJ (power / IPC at a nominal 1 GHz).
    pub energy_per_instruction: f64,
}

/// Per-worker reusable state of a sweep: simulation scratch, feature-row
/// scratch, one event-parameter set absorbing every derivation, and the
/// surrogate backend's raw-rate and shadow-event buffers.
struct SweepScratch {
    sim: SimScratch,
    features: FeatureScratch,
    events: EventParams,
    /// Shadow event parameters derived from the surrogate prediction on
    /// audited points, so error accounting never disturbs the exact events
    /// the emitted point is scored from.
    surrogate_events: EventParams,
}

impl SweepScratch {
    fn new() -> Self {
        Self {
            sim: SimScratch::new(),
            features: FeatureScratch::new(),
            events: EventParams::empty(),
            surrogate_events: EventParams::empty(),
        }
    }
}

/// Audit bookkeeping of one chunk point: everything needed to fold the
/// surrogate's shadow prediction into the error bound after the batched
/// power prediction lands.
struct ChunkAudit {
    /// Flat point index within the chunk (`config_index * workloads +
    /// workload_index`).
    index: usize,
    /// Raw event rates of the exact simulation.
    exact_raw: Vec<f64>,
    /// Raw event rates the surrogate predicted.
    surrogate_raw: Vec<f64>,
    /// Event parameters derived from the surrogate prediction, scored through
    /// the model as the shadow entry of the batch.
    shadow_events: EventParams,
}

/// Per-worker reusable state of the chunk-batched scoring path: the per-point
/// scratch plus chunk-wide buffers holding every point's events, IPC and
/// prediction so the power model can score the whole chunk forest-major.
struct ChunkScratch {
    point: SweepScratch,
    /// Per-point event parameters (exact or surrogate-derived), point-major.
    events: Vec<EventParams>,
    /// Per-point simulated (or surrogate-predicted) IPC.
    ipcs: Vec<f64>,
    /// Audited points of the chunk.
    audits: Vec<ChunkAudit>,
    /// Batched prediction output: one slot per point, then one shadow slot
    /// per audited point.
    predictions: Vec<Prediction>,
    /// Surrogate-predicted raw event rates of every point, row-major
    /// (`raw_all[idx * events + e]`, `idx` in chunk point order).
    raw_all: Vec<f64>,
    /// Per-workload batched-prediction staging (configuration-major rows).
    raw_batch: Vec<f64>,
    /// Per-ensemble output scratch of the batched surrogate prediction.
    forest_out: Vec<f64>,
}

impl ChunkScratch {
    fn new() -> Self {
        Self {
            point: SweepScratch::new(),
            events: Vec::new(),
            ipcs: Vec::new(),
            audits: Vec::new(),
            predictions: Vec::new(),
            raw_all: Vec::new(),
            raw_batch: Vec::new(),
            forest_out: Vec::new(),
        }
    }
}

/// Reusable worker state of [`SweepEngine::run_with`] /
/// [`SweepEngine::for_each_point_with`]: the per-chunk scoring scratch
/// (pipeline machine, replay streams, [`FeatureScratch`], batch buffers),
/// opaque so its layout can evolve with the engine.
///
/// A long-running caller — the serving layer's worker pool — holds one per
/// worker thread and reuses it across every batch it scores, so the
/// heavyweight allocations are materialized once per worker instead of once
/// per request.  Reuse is correctness-neutral: scoring with a fresh scratch
/// and with an arbitrarily reused one is bit-identical (pinned by the
/// `design_sweep` integration tests).
#[derive(Default)]
pub struct EngineScratch(ChunkScratch);

impl EngineScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self(ChunkScratch::new())
    }
}

impl std::fmt::Debug for EngineScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineScratch").finish_non_exhaustive()
    }
}

impl Default for ChunkScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// How a sweep obtains each point's event parameters.
#[derive(Debug, Clone, Copy)]
pub enum SimBackend<'a> {
    /// Simulate every `(configuration, workload)` pair exactly (the default).
    Exact,
    /// Predict event rates with a trained [`ActivitySurrogate`], simulating
    /// only a deterministic audit fraction of configurations exactly.
    ///
    /// Audited configurations are emitted from the exact path — bit-identical
    /// to an [`SimBackend::Exact`] sweep — and additionally scored through
    /// the surrogate to accumulate the per-event and end-to-end power error
    /// bound reported by [`SweepEngine::audit_report`].
    Surrogate {
        /// The trained surrogate; must cover every swept workload and match
        /// the sweep's simulation knobs.
        surrogate: &'a ActivitySurrogate,
        /// Fraction of configurations audited against the exact simulator
        /// (`audit_selected`), in `(0, 1]`.
        audit_rate: f64,
    },
}

/// Whole-run counters for one pair, answered from `cache` when enabled.
fn simulated_counters(
    cache: Option<&SimCache>,
    config: &CpuConfig,
    workload: Workload,
    sim: &SimConfig,
    scratch: &mut SimScratch,
) -> EventCounters {
    match cache {
        Some(cache) => cache.counters_for(SimKey::new(config, workload, sim), || {
            simulate_counters_with(config, workload, sim, scratch)
        }),
        None => simulate_counters_with(config, workload, sim, scratch),
    }
}

/// Sweeps a set of configurations through a trained model.
///
/// Model-agnostic: the engine holds a [`&dyn PowerModel`](PowerModel), so any
/// registry model ([`ModelKind`](crate::ModelKind)) — AutoPower or a baseline —
/// drives the same batch-inference path.  The engine owns the [`SimCache`]
/// that deduplicates simulations across everything it runs; its
/// [`SweepEngine::cache_stats`] feed the sweep report.
#[derive(Debug)]
pub struct SweepEngine<'a> {
    model: &'a dyn PowerModel,
    spec: SweepSpec,
    cache: SimCache,
    backend: SimBackend<'a>,
    /// Audit-error accumulation of the surrogate backend.  Integer
    /// (fixed-point) sums make the fold order-independent, so the report is
    /// bit-identical for every thread count despite the shared lock.
    audit: Mutex<AuditAccumulator>,
}

impl<'a> SweepEngine<'a> {
    /// Creates an engine around any trained [`PowerModel`], simulating every
    /// point exactly ([`SimBackend::Exact`]).
    pub fn new(model: &'a dyn PowerModel, spec: SweepSpec) -> Self {
        Self {
            model,
            spec,
            cache: SimCache::new(),
            backend: SimBackend::Exact,
            audit: Mutex::new(AuditAccumulator::new(EventParams::names().len())),
        }
    }

    /// Replaces the engine's simulation backend.
    ///
    /// # Errors
    ///
    /// Returns [`AutoPowerError::Surrogate`] when a surrogate backend's audit
    /// rate is not in `(0, 1]` (a sweep that can never audit has no error
    /// bound and is refused up front) or the surrogate was trained for
    /// different simulation knobs than this engine sweeps with.
    pub fn with_backend(mut self, backend: SimBackend<'a>) -> Result<Self, AutoPowerError> {
        if let SimBackend::Surrogate {
            surrogate,
            audit_rate,
        } = backend
        {
            if !audit_rate.is_finite() || audit_rate <= 0.0 || audit_rate > 1.0 {
                return Err(AutoPowerError::Surrogate(format!(
                    "audit rate must be in (0, 1], got {audit_rate}"
                )));
            }
            surrogate.compatible_with(&self.spec.sim)?;
        }
        self.backend = backend;
        Ok(self)
    }

    /// The sweep settings.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The simulation backend.
    pub fn backend(&self) -> &SimBackend<'a> {
        &self.backend
    }

    /// Hit/miss statistics of the simulation cache across every sweep this
    /// engine has run (all zero when the cache is disabled or unused).
    pub fn cache_stats(&self) -> SimCacheStats {
        self.cache.stats()
    }

    /// The audit error table accumulated so far — `Some` exactly when the
    /// engine runs a surrogate backend (even before anything was audited, so
    /// callers can distinguish "exact sweep" from "surrogate sweep that
    /// audited nothing" and refuse to report the latter as error-bounded).
    pub fn audit_report(&self) -> Option<AuditReport> {
        match self.backend {
            SimBackend::Exact => None,
            SimBackend::Surrogate { .. } => Some(self.audit.lock().unwrap().report()),
        }
    }

    /// Snapshot of the raw audit accumulator (for checkpointing), `Some`
    /// exactly when the engine runs a surrogate backend.
    pub fn audit_state(&self) -> Option<AuditAccumulator> {
        match self.backend {
            SimBackend::Exact => None,
            SimBackend::Surrogate { .. } => Some(self.audit.lock().unwrap().clone()),
        }
    }

    /// Restores an audit accumulator captured by [`SweepEngine::audit_state`]
    /// (when resuming a checkpointed surrogate sweep).
    pub fn restore_audit_state(&self, state: AuditAccumulator) {
        *self.audit.lock().unwrap() = state;
    }

    /// Scores one contiguous run of configurations as a single batch,
    /// emitting its [`SweepPoint`]s through `sink` in configuration-major
    /// input order.
    ///
    /// Three phases: (1) obtain every point's event parameters — exact
    /// simulation, or surrogate prediction with the deterministic audit
    /// fraction simulated exactly; (2) predict power for the whole chunk in
    /// one [`PowerModel::predict_batch_with`] call (audited points append a
    /// shadow entry scored from the surrogate's events), which scores
    /// forest-major and is pinned bit-identical to the per-point path; (3)
    /// fold the audited points into the error bound and emit.  Output is
    /// bit-identical to scoring each point on its own — the batch only
    /// reorders *when* sub-models run, never what they compute.
    fn score_chunk(
        &self,
        cache: Option<&SimCache>,
        configs: &[CpuConfig],
        workloads: &[Workload],
        scratch: &mut ChunkScratch,
        mut sink: impl FnMut(SweepPoint),
    ) {
        let per_config = workloads.len();
        let n = configs.len() * per_config;
        let ChunkScratch {
            point,
            events,
            ipcs,
            audits,
            predictions,
            raw_all,
            raw_batch,
            forest_out,
        } = scratch;
        events.resize(n, EventParams::empty());
        ipcs.clear();
        ipcs.resize(n, 0.0);
        audits.clear();
        let event_count = EventParams::names().len();

        // Phase 0 (surrogate backend only): batched raw-rate inference.
        // One feature matrix per workload over the whole chunk, scored
        // forest-major by `predict_raw_batch_into` — bit-identical to the
        // per-point `predict_raw_into`, but each per-event ensemble walks the
        // entire chunk while its nodes are cache-hot.
        if let SimBackend::Surrogate { surrogate, .. } = self.backend {
            raw_all.clear();
            raw_all.resize(n * event_count, 0.0);
            for (w, &workload) in workloads.iter().enumerate() {
                let mut flat = Vec::with_capacity(configs.len() * SimKey::FEATURE_COUNT);
                for config in configs {
                    flat.extend_from_slice(
                        &SimKey::new(config, workload, &self.spec.sim).features(),
                    );
                }
                let x = Matrix::from_flat(configs.len(), SimKey::FEATURE_COUNT, flat);
                raw_batch.clear();
                raw_batch.resize(configs.len() * event_count, 0.0);
                surrogate.predict_raw_batch_into(workload, &x, forest_out, raw_batch);
                for c in 0..configs.len() {
                    let idx = c * per_config + w;
                    raw_all[idx * event_count..(idx + 1) * event_count]
                        .copy_from_slice(&raw_batch[c * event_count..(c + 1) * event_count]);
                }
            }
        }

        // Phase 1: event parameters and IPC per point.
        let mut idx = 0;
        for config in configs {
            for &workload in workloads {
                match self.backend {
                    SimBackend::Exact => {
                        let counters = simulated_counters(
                            cache,
                            config,
                            workload,
                            &self.spec.sim,
                            &mut point.sim,
                        );
                        EventParams::from_counters_into(
                            &counters,
                            config.id,
                            workload,
                            self.spec.sim.event_distortion,
                            &mut events[idx],
                        );
                        ipcs[idx] = counters.ipc();
                    }
                    SimBackend::Surrogate { audit_rate, .. } => {
                        let raw = &raw_all[idx * event_count..(idx + 1) * event_count];
                        if audit_selected(config.id, audit_rate) {
                            // Audited point: emitted from the exact path
                            // (bit-identical to an Exact sweep — same
                            // counters, same distortion, same prediction);
                            // the surrogate's shadow events ride the batch as
                            // an extra entry for the error bound.
                            let counters = simulated_counters(
                                cache,
                                config,
                                workload,
                                &self.spec.sim,
                                &mut point.sim,
                            );
                            EventParams::from_counters_into(
                                &counters,
                                config.id,
                                workload,
                                self.spec.sim.event_distortion,
                                &mut events[idx],
                            );
                            ipcs[idx] = counters.ipc();
                            EventParams::from_raw_rates_into(
                                raw,
                                config.id,
                                workload,
                                self.spec.sim.event_distortion,
                                &mut point.surrogate_events,
                            );
                            audits.push(ChunkAudit {
                                index: idx,
                                exact_raw: EventParams::raw_rates(&counters).to_vec(),
                                surrogate_raw: raw.to_vec(),
                                shadow_events: point.surrogate_events.clone(),
                            });
                        } else {
                            EventParams::from_raw_rates_into(
                                raw,
                                config.id,
                                workload,
                                self.spec.sim.event_distortion,
                                &mut events[idx],
                            );
                            // The surrogate's IPC is its first raw rate (the
                            // exact path's `counters.ipc()` equals
                            // `raw_rates()[0]`).
                            ipcs[idx] = raw[0];
                        }
                    }
                }
                idx += 1;
            }
        }

        // Phase 2: one batched power prediction over every point plus the
        // audited points' shadow entries.
        let mut inputs = Vec::with_capacity(n + audits.len());
        for (idx, e) in events[..n].iter().enumerate() {
            inputs.push(PredictInput {
                config: &configs[idx / per_config],
                events: e,
                workload: workloads[idx % per_config],
            });
        }
        for audit in audits.iter() {
            inputs.push(PredictInput {
                config: &configs[audit.index / per_config],
                events: &audit.shadow_events,
                workload: workloads[audit.index % per_config],
            });
        }
        self.model
            .predict_batch_with(&inputs, &mut point.features, predictions);
        drop(inputs);

        // Phase 3: error-bound accounting, then emission in input order.
        // The audit accumulator is an order-independent integer fold, so
        // recording chunk-grouped instead of point-interleaved cannot change
        // the report.
        let shadows = predictions.split_off(n);
        for (audit, shadow) in audits.iter().zip(&shadows) {
            self.audit.lock().unwrap().record(
                &audit.exact_raw,
                &audit.surrogate_raw,
                predictions[audit.index].total(),
                shadow.total(),
            );
        }
        for (idx, power) in predictions.drain(..).enumerate() {
            sink(SweepPoint {
                config: configs[idx / per_config],
                workload: workloads[idx % per_config],
                power,
                ipc: ipcs[idx],
            });
        }
    }

    /// Streams every `(configuration, workload)` pair through `sink`,
    /// configuration-major, in deterministic input order — without retaining
    /// any point itself.
    ///
    /// This is the primitive under both the materializing [`SweepEngine::run`]
    /// (whose sink is `Vec::push`) and the bounded-memory streaming sweep
    /// ([`SweepEngine::stream`](crate::stream)): the scoring work, the worker
    /// scratch reuse and the emission order are byte-for-byte the same, so the
    /// two paths cannot drift apart.  Parallel scoring still shards `configs`
    /// into [`SweepSpec::chunk_configs`]-sized chunks; only one chunk of
    /// points is ever in flight.
    pub fn for_each_point(
        &self,
        configs: &[CpuConfig],
        workloads: &[Workload],
        mut sink: impl FnMut(SweepPoint),
    ) {
        let threads = self.spec.effective_threads();
        let per_config = workloads.len();
        let cache = self.spec.use_sim_cache.then_some(&self.cache);
        let chunk = self.spec.chunk_configs.max(1);
        if threads <= 1 {
            // Serial fast path: one scratch for the whole sweep, so replay
            // streams, pipeline state and batch buffers are materialized once
            // instead of once per shard.  Scoring order — and therefore
            // output — is identical to the sharded path.
            let mut scratch = EngineScratch::new();
            self.for_each_point_with(configs, workloads, &mut scratch, sink);
            return;
        }
        for shard in configs.chunks(chunk) {
            // Each worker owns one ChunkScratch for its whole lifetime and
            // claims contiguous runs of configurations, scoring each run as
            // one forest-major batch.  Results are collected in input order,
            // so the emission — like the scoring itself — is bit-identical
            // to the serial path.
            let run = shard.len().div_ceil(threads).max(1);
            let runs: Vec<&[CpuConfig]> = shard.chunks(run).collect();
            for points in parallel_map_with(threads, runs.len(), ChunkScratch::new, |scratch, k| {
                let mut out = Vec::with_capacity(runs[k].len() * per_config);
                self.score_chunk(cache, runs[k], workloads, scratch, |p| out.push(p));
                out
            }) {
                for point in points {
                    sink(point);
                }
            }
        }
    }

    /// [`SweepEngine::for_each_point`] scoring serially through a
    /// caller-owned [`EngineScratch`], so a resident process can reuse one
    /// scratch across many engine runs.
    ///
    /// Ignores [`SweepSpec::threads`] — the caller owns the parallelism (one
    /// scratch per worker thread, as the serving layer does).  Output is
    /// bit-identical to [`SweepEngine::for_each_point`] at any thread count
    /// and to a fresh-scratch run: reuse only skips re-allocating buffers
    /// that are fully overwritten per chunk.
    pub fn for_each_point_with(
        &self,
        configs: &[CpuConfig],
        workloads: &[Workload],
        scratch: &mut EngineScratch,
        mut sink: impl FnMut(SweepPoint),
    ) {
        let cache = self.spec.use_sim_cache.then_some(&self.cache);
        let chunk = self.spec.chunk_configs.max(1);
        for shard in configs.chunks(chunk) {
            self.score_chunk(cache, shard, workloads, &mut scratch.0, &mut sink);
        }
    }

    /// Scores every `(configuration, workload)` pair, configuration-major, in
    /// deterministic input order.
    ///
    /// Thin materializing wrapper over [`SweepEngine::for_each_point`].
    pub fn run(&self, configs: &[CpuConfig], workloads: &[Workload]) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(configs.len() * workloads.len());
        self.for_each_point(configs, workloads, |p| points.push(p));
        points
    }

    /// Materializing wrapper over [`SweepEngine::for_each_point_with`]:
    /// serial scoring into `out` (cleared first) through a caller-owned
    /// reusable scratch.
    pub fn run_with(
        &self,
        configs: &[CpuConfig],
        workloads: &[Workload],
        scratch: &mut EngineScratch,
        out: &mut Vec<SweepPoint>,
    ) {
        out.clear();
        out.reserve(configs.len() * workloads.len());
        self.for_each_point_with(configs, workloads, scratch, |p| out.push(p));
    }

    /// Scores every pair and folds the points into one [`ConfigSummary`] per
    /// configuration, in input order.
    pub fn run_summaries(
        &self,
        configs: &[CpuConfig],
        workloads: &[Workload],
    ) -> Vec<ConfigSummary> {
        summarize(&self.run(configs, workloads), workloads.len())
    }
}

/// Scores every `(configuration, workload)` pair under several models while
/// running the performance simulation of each pair only **once**.
///
/// The simulation depends only on the configuration and workload, never on the
/// model, so sweeping `m` models costs one simulation pass plus `m` cheap
/// prediction passes instead of `m` full sweeps.  Returns one point list per
/// model, each bit-identical to what `SweepEngine::new(model, spec).run(...)`
/// would produce on its own.
pub fn sweep_multi(
    models: &[&dyn PowerModel],
    spec: &SweepSpec,
    configs: &[CpuConfig],
    workloads: &[Workload],
) -> Vec<Vec<SweepPoint>> {
    sweep_multi_with_stats(models, spec, configs, workloads).0
}

/// [`sweep_multi`] returning the simulation-cache statistics alongside the
/// per-model points (for comparison reports).
pub fn sweep_multi_with_stats(
    models: &[&dyn PowerModel],
    spec: &SweepSpec,
    configs: &[CpuConfig],
    workloads: &[Workload],
) -> (Vec<Vec<SweepPoint>>, SimCacheStats) {
    let threads = spec.effective_threads();
    let per_config = workloads.len();
    let chunk = spec.chunk_configs.max(1);
    let cache = SimCache::new();
    let cache_ref = spec.use_sim_cache.then_some(&cache);
    let mut results: Vec<Vec<SweepPoint>> = models
        .iter()
        .map(|_| Vec::with_capacity(configs.len() * per_config))
        .collect();
    if threads <= 1 {
        // Serial fast path mirroring SweepEngine::run: one scratch for the
        // whole sweep, identical scoring order.
        let mut scratch = SweepScratch::new();
        for config in configs {
            for &workload in workloads {
                let counters =
                    simulated_counters(cache_ref, config, workload, &spec.sim, &mut scratch.sim);
                EventParams::from_counters_into(
                    &counters,
                    config.id,
                    workload,
                    spec.sim.event_distortion,
                    &mut scratch.events,
                );
                let ipc = counters.ipc();
                for (model, slot) in models.iter().zip(results.iter_mut()) {
                    slot.push(SweepPoint {
                        config: *config,
                        workload,
                        power: model.predict_with(
                            config,
                            &scratch.events,
                            workload,
                            &mut scratch.features,
                        ),
                        ipc,
                    });
                }
            }
        }
        let stats = cache.stats();
        return (results, stats);
    }
    for shard in configs.chunks(chunk) {
        let shard_points = parallel_map_with(
            threads,
            shard.len() * per_config,
            SweepScratch::new,
            |scratch, i| {
                let config = shard[i / per_config];
                let workload = workloads[i % per_config];
                let counters =
                    simulated_counters(cache_ref, &config, workload, &spec.sim, &mut scratch.sim);
                EventParams::from_counters_into(
                    &counters,
                    config.id,
                    workload,
                    spec.sim.event_distortion,
                    &mut scratch.events,
                );
                let ipc = counters.ipc();
                models
                    .iter()
                    .map(|model| SweepPoint {
                        config,
                        workload,
                        power: model.predict_with(
                            &config,
                            &scratch.events,
                            workload,
                            &mut scratch.features,
                        ),
                        ipc,
                    })
                    .collect::<Vec<_>>()
            },
        );
        for per_model in shard_points {
            for (slot, point) in results.iter_mut().zip(per_model) {
                slot.push(point);
            }
        }
    }
    let stats = cache.stats();
    (results, stats)
}

/// Sorts summaries by predicted energy per instruction, best (lowest) first.
///
/// The single ranking rule behind the sweep report's top-k table and the
/// model-comparison rank-divergence figures.
///
/// The sort is a total order (`f64::total_cmp` over sign-canonicalised keys),
/// so it never panics: every NaN efficiency ranks **last** — after every
/// finite value and `+∞` — instead of aborting the whole report.  Ties keep
/// input order (the sort is stable), so the ranking stays deterministic.
pub fn rank_by_efficiency(summaries: &[ConfigSummary]) -> Vec<&ConfigSummary> {
    let mut ranked: Vec<&ConfigSummary> = summaries.iter().collect();
    ranked.sort_by(|a, b| {
        efficiency_sort_key(a.energy_per_instruction)
            .total_cmp(&efficiency_sort_key(b.energy_per_instruction))
    });
    ranked
}

/// The canonicalised sort key behind [`rank_by_efficiency`] — shared with the
/// streaming top-k retainer so both rankings are one total order.
///
/// IEEE-754 totally orders negative-sign NaNs *below* -inf; canonicalise to
/// the positive quiet NaN so "NaN ranks last" holds regardless of the sign
/// bit the producing arithmetic happened to leave behind.
pub(crate) fn efficiency_sort_key(v: f64) -> f64 {
    if v.is_nan() {
        f64::from_bits(0x7ff8_0000_0000_0000)
    } else {
        v
    }
}

/// Folds configuration-major sweep points into per-configuration summaries.
///
/// The group mean is reported only when every point of a configuration
/// resolves groups; for total-only models the summary carries the mean total
/// and no group structure.
///
/// # Panics
///
/// Panics if `points` is not a whole number of `per_config`-sized groups.
pub fn summarize(points: &[SweepPoint], per_config: usize) -> Vec<ConfigSummary> {
    assert!(
        per_config > 0,
        "need at least one workload per configuration"
    );
    assert_eq!(
        points.len() % per_config,
        0,
        "points must cover every workload of every configuration"
    );
    points.chunks(per_config).map(config_summary).collect()
}

/// Folds the points of **one** configuration (all its workloads, in workload
/// order) into its [`ConfigSummary`].
///
/// This is the single fold behind both the materialized [`summarize`] and the
/// streaming [`SweepAggregator`](crate::SweepAggregator), so the two paths
/// produce bit-identical summaries by construction: same accumulation order,
/// same division points.
///
/// # Panics
///
/// Panics if `group` is empty.
pub fn config_summary(group: &[SweepPoint]) -> ConfigSummary {
    assert!(
        !group.is_empty(),
        "a configuration needs at least one point"
    );
    let n = group.len() as f64;
    let mut mean_ipc = 0.0;
    for p in group {
        mean_ipc += p.ipc;
    }
    mean_ipc /= n;

    // Group-resolving models: accumulate group-wise and derive the total from
    // the divided groups (the historical summation order, kept so totals stay
    // bit-identical).  Total-only models: average the totals directly.
    let mut mean_groups = Some(PowerGroups::default());
    for p in group {
        mean_groups = match (mean_groups, p.power.groups()) {
            (Some(mut sum), Some(g)) => {
                sum += g;
                Some(sum)
            }
            _ => None,
        };
    }
    let mean_groups = mean_groups.map(|mut g| {
        g.clock /= n;
        g.sram /= n;
        g.register /= n;
        g.combinational /= n;
        g
    });
    let mean_total = match mean_groups {
        Some(g) => g.total(),
        None => group.iter().map(|p| p.power.total()).sum::<f64>() / n,
    };
    ConfigSummary {
        config: group[0].config,
        mean_total,
        mean_groups,
        mean_ipc,
        energy_per_instruction: mean_total / mean_ipc.max(1e-9),
    }
}

impl AutoPower {
    /// Batch inference: predicts per-group power (and simulated IPC) for every
    /// `(configuration, workload)` pair without synthesis or golden power.
    ///
    /// Convenience wrapper around [`SweepEngine::run`].
    pub fn predict_batch(
        &self,
        configs: &[CpuConfig],
        workloads: &[Workload],
        spec: &SweepSpec,
    ) -> Vec<SweepPoint> {
        SweepEngine::new(self, *spec).run(configs, workloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Corpus, CorpusSpec};
    use crate::power_model::ModelKind;
    use autopower_config::{boom_configs, ConfigId, DesignSpace};

    fn trained_model() -> AutoPower {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)]).unwrap()
    }

    #[test]
    fn batch_predictions_cover_every_pair_in_order() {
        let model = trained_model();
        let configs = DesignSpace::boom().sample(5, 11);
        let workloads = [Workload::Dhrystone, Workload::Qsort];
        let points = model.predict_batch(&configs, &workloads, &SweepSpec::fast().threads(1));
        assert_eq!(points.len(), 10);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.config, configs[i / 2]);
            assert_eq!(p.workload, workloads[i % 2]);
            assert!(p.power.total() > 0.0, "non-physical power at point {i}");
            assert!(p.power.groups().is_some(), "AutoPower resolves groups");
            assert!(p.ipc > 0.0);
        }
    }

    #[test]
    fn sweep_is_bit_identical_across_thread_counts_and_chunking() {
        let model = trained_model();
        let configs = DesignSpace::boom().sample(6, 3);
        let workloads = [Workload::Dhrystone, Workload::Vvadd];
        let serial = SweepEngine::new(
            &model,
            SweepSpec {
                chunk_configs: 1,
                ..SweepSpec::fast().threads(1)
            },
        )
        .run(&configs, &workloads);
        let parallel =
            SweepEngine::new(&model, SweepSpec::fast().threads(8)).run(&configs, &workloads);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn reused_engine_scratch_scoring_is_bit_identical() {
        let model = trained_model();
        let first = DesignSpace::boom().sample(4, 13);
        let second = DesignSpace::boom().sample(5, 99);
        let workloads = [Workload::Dhrystone, Workload::Qsort];
        let spec = SweepSpec::fast().threads(1);
        let engine = SweepEngine::new(&model, spec);
        let mut scratch = EngineScratch::new();
        let mut out = Vec::new();
        engine.run_with(&first, &workloads, &mut scratch, &mut out);
        assert_eq!(out, engine.run(&first, &workloads));
        // The same scratch carried into a different batch (and a different
        // shape) scores identically to a fresh engine with a fresh scratch.
        engine.run_with(&second, &workloads, &mut scratch, &mut out);
        assert_eq!(out, SweepEngine::new(&model, spec).run(&second, &workloads));
    }

    #[test]
    fn cached_sweep_is_bit_identical_and_deduplicates_invisible_axes() {
        use autopower_config::HwParam;
        let model = trained_model();
        // Two configurations differing only in BranchCount within one
        // predictor bucket (10 and 16 both round to 4096 entries): the
        // simulation cannot tell them apart, the power model can.
        let space = DesignSpace::boom()
            .with_axis(HwParam::FetchWidth, vec![4])
            .with_axis(HwParam::DecodeWidth, vec![2])
            .with_axis(HwParam::RobEntry, vec![64])
            .with_axis(HwParam::IntIssueWidth, vec![2])
            .with_axis(HwParam::MemFpIssueWidth, vec![1])
            .with_axis(HwParam::CacheWay, vec![4])
            .with_axis(HwParam::DtlbEntry, vec![16])
            .with_axis(HwParam::BranchCount, vec![10, 16])
            .with_axis(HwParam::MshrEntry, vec![4]);
        let configs: Vec<_> = space.enumerate().collect();
        assert_eq!(configs.len(), 2);
        let workloads = [Workload::Dhrystone, Workload::Qsort];

        let cached_engine = SweepEngine::new(&model, SweepSpec::fast().threads(1));
        let cached = cached_engine.run(&configs, &workloads);
        let uncached_engine =
            SweepEngine::new(&model, SweepSpec::fast().threads(1).sim_cache(false));
        let uncached = uncached_engine.run(&configs, &workloads);
        assert_eq!(cached, uncached, "cache changed sweep output");

        // The second configuration's simulations were answered from the cache.
        let stats = cached_engine.cache_stats();
        assert_eq!(stats.misses, workloads.len() as u64);
        assert_eq!(stats.hits, workloads.len() as u64);
        assert_eq!(stats.hit_rate(), 0.5);
        let off = uncached_engine.cache_stats();
        assert_eq!((off.hits, off.misses), (0, 0));

        // Shared simulation, distinct predictions: IPC (a counter projection)
        // matches across the pair, power (H features + per-config distortion)
        // does not.
        assert_eq!(cached[0].ipc, cached[2].ipc);
        assert_ne!(cached[0].power, cached[2].power);
    }

    #[test]
    fn multi_model_sweep_matches_per_model_engines_bit_for_bit() {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let models: Vec<_> = ModelKind::ALL
            .into_iter()
            .map(|kind| kind.train(&corpus, &train).unwrap())
            .collect();
        let refs: Vec<&dyn PowerModel> = models.iter().map(|m| m.as_ref()).collect();
        let configs = DesignSpace::boom().sample(4, 9);
        let workloads = [Workload::Dhrystone, Workload::Qsort];
        let spec = SweepSpec::fast().threads(2);
        let multi = sweep_multi(&refs, &spec, &configs, &workloads);
        assert_eq!(multi.len(), refs.len());
        for (model, points) in refs.iter().zip(&multi) {
            let solo = SweepEngine::new(*model, spec).run(&configs, &workloads);
            assert_eq!(&solo, points);
        }
    }

    #[test]
    fn efficiency_ranking_is_sorted_and_complete() {
        let model = trained_model();
        let configs = DesignSpace::boom().sample(5, 21);
        let workloads = [Workload::Dhrystone];
        let summaries = SweepEngine::new(&model, SweepSpec::fast().threads(1))
            .run_summaries(&configs, &workloads);
        let ranked = rank_by_efficiency(&summaries);
        assert_eq!(ranked.len(), summaries.len());
        for pair in ranked.windows(2) {
            assert!(pair[0].energy_per_instruction <= pair[1].energy_per_instruction);
        }
    }

    #[test]
    fn summaries_average_over_workloads() {
        let model = trained_model();
        let configs = DesignSpace::boom().sample(3, 5);
        let workloads = [Workload::Dhrystone, Workload::Qsort, Workload::Vvadd];
        let engine = SweepEngine::new(&model, SweepSpec::fast().threads(1));
        let points = engine.run(&configs, &workloads);
        let summaries = summarize(&points, workloads.len());
        assert_eq!(summaries.len(), 3);
        for (i, s) in summaries.iter().enumerate() {
            assert_eq!(s.config, configs[i]);
            let expected: f64 = points[i * 3..(i + 1) * 3]
                .iter()
                .map(|p| p.power.total())
                .sum::<f64>()
                / 3.0;
            assert!((s.mean_total - expected).abs() < 1e-9);
            assert!(s.mean_groups.is_some(), "AutoPower summaries carry groups");
            assert!(s.energy_per_instruction > 0.0);
        }
        assert_eq!(summaries, engine.run_summaries(&configs, &workloads));
    }

    #[test]
    fn total_only_summaries_carry_no_group_structure() {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let model = ModelKind::McpatCalib.train(&corpus, &train).unwrap();
        let configs = DesignSpace::boom().sample(3, 41);
        let workloads = [Workload::Dhrystone, Workload::Vvadd];
        let engine = SweepEngine::new(model.as_ref(), SweepSpec::fast().threads(1));
        let points = engine.run(&configs, &workloads);
        let summaries = summarize(&points, workloads.len());
        for (i, s) in summaries.iter().enumerate() {
            assert!(s.mean_groups.is_none(), "total-only model resolved groups");
            let expected: f64 = points[i * 2..(i + 1) * 2]
                .iter()
                .map(|p| p.power.total())
                .sum::<f64>()
                / 2.0;
            assert_eq!(s.mean_total, expected);
            assert!(s.mean_total > 0.0);
        }
    }

    #[test]
    fn nan_efficiencies_rank_last_without_panicking() {
        let config = boom_configs()[0];
        let summary = |epi: f64| ConfigSummary {
            config,
            mean_total: 1.0,
            mean_groups: None,
            mean_ipc: 1.0,
            energy_per_instruction: epi,
        };
        // Both NaN sign bits, mixed with finite values and +inf.
        let negative_nan = f64::from_bits(0xfff8_0000_0000_0001);
        let summaries = vec![
            summary(f64::NAN),
            summary(2.0),
            summary(negative_nan),
            summary(f64::INFINITY),
            summary(1.0),
        ];
        let ranked = rank_by_efficiency(&summaries);
        let order: Vec<f64> = ranked.iter().map(|s| s.energy_per_instruction).collect();
        assert_eq!(order[0], 1.0);
        assert_eq!(order[1], 2.0);
        assert_eq!(order[2], f64::INFINITY);
        // Every NaN ranks after every non-NaN, in stable input order.
        assert!(order[3].is_nan() && order[4].is_nan());
        assert_eq!(order[3].to_bits(), f64::NAN.to_bits());
        assert_eq!(order[4].to_bits(), negative_nan.to_bits());
    }

    #[test]
    #[should_panic(expected = "every workload")]
    fn ragged_summary_input_panics() {
        let model = trained_model();
        let configs = DesignSpace::boom().sample(1, 1);
        let points = model.predict_batch(&configs, &[Workload::Vvadd], &SweepSpec::fast());
        let _ = summarize(&points, 2);
    }

    mod surrogate_backend {
        use super::*;
        use crate::surrogate::{surrogate_gbdt_params, SURROGATE_TRAIN_SEED};
        use proptest::prelude::*;
        use std::sync::OnceLock;

        const WORKLOADS: [Workload; 2] = [Workload::Dhrystone, Workload::Vvadd];

        /// One trained model + surrogate shared across every test in this
        /// module (training either per proptest case would dominate runtime).
        fn fixture() -> &'static (AutoPower, ActivitySurrogate) {
            static FIXTURE: OnceLock<(AutoPower, ActivitySurrogate)> = OnceLock::new();
            FIXTURE.get_or_init(|| {
                let model = trained_model();
                let surrogate = ActivitySurrogate::train(
                    &DesignSpace::boom(),
                    &WORKLOADS,
                    &SimConfig::fast(),
                    24,
                    SURROGATE_TRAIN_SEED,
                    &surrogate_gbdt_params(),
                )
                .unwrap();
                (model, surrogate)
            })
        }

        proptest! {
            /// A surrogate sweep auditing **every** configuration is
            /// bit-identical to an exact sweep over any sampled slice of the
            /// space — the audited path really is the exact path.
            #[test]
            fn full_audit_equals_exact_bit_for_bit(
                count in 1usize..6,
                sample_seed in 0u64..100_000,
            ) {
                let (model, surrogate) = fixture();
                let configs = DesignSpace::boom().sample(count, sample_seed);
                let spec = SweepSpec::fast().threads(1);
                let exact = SweepEngine::new(model, spec).run(&configs, &WORKLOADS);
                let engine = SweepEngine::new(model, spec)
                    .with_backend(SimBackend::Surrogate {
                        surrogate,
                        audit_rate: 1.0,
                    })
                    .unwrap();
                let audited = engine.run(&configs, &WORKLOADS);
                prop_assert_eq!(&audited, &exact);
                let report = engine.audit_report().expect("surrogate backend reports");
                prop_assert_eq!(report.audited_points, (count * WORKLOADS.len()) as u64);
                prop_assert_eq!(report.total_samples, (count * WORKLOADS.len()) as u64);
            }
        }

        #[test]
        fn partial_audit_emits_exact_points_for_audited_configs() {
            let (model, surrogate) = fixture();
            let configs = DesignSpace::boom().sample(40, 4242);
            let audit_rate = 0.3;
            let spec = SweepSpec::fast().threads(1);
            let exact = SweepEngine::new(model, spec).run(&configs, &WORKLOADS);
            let engine = SweepEngine::new(model, spec)
                .with_backend(SimBackend::Surrogate {
                    surrogate,
                    audit_rate,
                })
                .unwrap();
            let mixed = engine.run(&configs, &WORKLOADS);
            assert_eq!(mixed.len(), exact.len());

            let mut audited_configs = 0;
            for (i, config) in configs.iter().enumerate() {
                for (w, _) in WORKLOADS.iter().enumerate() {
                    let k = i * WORKLOADS.len() + w;
                    if audit_selected(config.id, audit_rate) {
                        assert_eq!(mixed[k], exact[k], "audited point {k} diverged");
                    } else {
                        // Surrogate points are physical and near the exact
                        // answer, but not the exact answer.
                        assert!(mixed[k].power.total() > 0.0);
                        assert!(mixed[k].ipc > 0.0);
                    }
                }
                audited_configs += usize::from(audit_selected(config.id, audit_rate));
            }
            assert!(
                audited_configs > 0 && audited_configs < configs.len(),
                "rate {audit_rate} audited {audited_configs} of {} — tune the test seed",
                configs.len()
            );
            let report = engine.audit_report().unwrap();
            assert_eq!(
                report.audited_points,
                (audited_configs * WORKLOADS.len()) as u64
            );
            // The error bound is meaningful: defined for IPC, and small for a
            // surrogate trained on this very space.
            let ipc = &report.per_event[0];
            assert_eq!(ipc.name, "ipc");
            assert_eq!(ipc.samples, report.audited_points);
            assert!(ipc.mape.unwrap() < 0.25, "ipc MAPE {:?}", ipc.mape);
            assert!(report.total_mape.unwrap() < 0.25);
        }

        #[test]
        fn surrogate_sweep_is_thread_count_invariant_including_the_audit_table() {
            let (model, surrogate) = fixture();
            let configs = DesignSpace::boom().sample(12, 77);
            let backend = |s| SimBackend::Surrogate {
                surrogate: s,
                audit_rate: 0.5,
            };
            let serial_engine = SweepEngine::new(
                model,
                SweepSpec {
                    chunk_configs: 2,
                    ..SweepSpec::fast().threads(1)
                },
            )
            .with_backend(backend(surrogate))
            .unwrap();
            let serial = serial_engine.run(&configs, &WORKLOADS);
            let parallel_engine = SweepEngine::new(model, SweepSpec::fast().threads(8))
                .with_backend(backend(surrogate))
                .unwrap();
            let parallel = parallel_engine.run(&configs, &WORKLOADS);
            assert_eq!(serial, parallel);
            // Fixed-point audit sums: the report is bit-identical too, not
            // merely statistically close.
            assert_eq!(serial_engine.audit_report(), parallel_engine.audit_report());
        }

        #[test]
        fn exact_backend_reports_no_audit() {
            let (model, _) = fixture();
            let engine = SweepEngine::new(model, SweepSpec::fast().threads(1));
            assert!(engine.audit_report().is_none());
            assert!(engine.audit_state().is_none());
        }

        #[test]
        fn invalid_backends_are_refused() {
            let (model, surrogate) = fixture();
            for bad_rate in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
                let err = SweepEngine::new(model, SweepSpec::fast())
                    .with_backend(SimBackend::Surrogate {
                        surrogate,
                        audit_rate: bad_rate,
                    })
                    .unwrap_err();
                assert!(
                    matches!(err, AutoPowerError::Surrogate(_)),
                    "rate {bad_rate} not refused"
                );
            }
            // A surrogate trained for different simulation knobs is refused.
            let mut spec = SweepSpec::fast();
            spec.sim.stream_seed += 1;
            assert!(SweepEngine::new(model, spec)
                .with_backend(SimBackend::Surrogate {
                    surrogate,
                    audit_rate: 0.5,
                })
                .is_err());
        }

        #[test]
        fn audit_state_roundtrips_through_restore() {
            let (model, surrogate) = fixture();
            let configs = DesignSpace::boom().sample(8, 909);
            let backend = SimBackend::Surrogate {
                surrogate,
                audit_rate: 1.0,
            };
            let spec = SweepSpec::fast().threads(1);
            // One-shot engine over both halves.
            let one_shot = SweepEngine::new(model, spec).with_backend(backend).unwrap();
            one_shot.run(&configs, &WORKLOADS);
            // Split across two engines, carrying the audit state over like a
            // checkpoint resume does.
            let first = SweepEngine::new(model, spec).with_backend(backend).unwrap();
            first.run(&configs[..4], &WORKLOADS);
            let carried = first.audit_state().unwrap();
            let second = SweepEngine::new(model, spec).with_backend(backend).unwrap();
            second.restore_audit_state(carried);
            second.run(&configs[4..], &WORKLOADS);
            assert_eq!(second.audit_report(), one_shot.audit_report());
        }
    }
}
