//! AutoPower: automated few-shot architecture-level power modeling by power group
//! decoupling.
//!
//! This crate is the Rust reproduction of the DAC 2025 paper's primary contribution.
//! Given a handful of *known* configurations — for which netlists and golden power
//! reports exist — AutoPower trains a set of small, decoupled sub-models and then
//! predicts the power of *unseen* configurations from architecture-level information
//! only (hardware parameters `H` and performance-simulator event parameters `E`).
//!
//! The decoupling has two levels:
//!
//! 1. **Across power groups** — separate models for clock power, SRAM power and logic
//!    power ([`ClockPowerModel`], [`SramPowerModel`], [`LogicPowerModel`]).
//! 2. **Within each group** — each group model is split into simple sub-models that
//!    track structural quantities: register count / gating rate / effective active rate
//!    for the clock; block shapes / block activity / macro mapping for SRAM; register
//!    count × activity and stable × variation for logic.
//!
//! The crate also implements the paper's baselines (McPAT-Calib, McPAT-Calib +
//! Component, and the AutoPower− ablation), time-based power-trace prediction, and
//! the batch design-space sweep path ([`SweepEngine`] / [`AutoPower::predict_batch`])
//! that scores generated configurations without ever synthesizing them.
//!
//! All four predictors implement the object-safe [`PowerModel`] trait and are
//! listed in the [`ModelKind`] registry, so the sweep, trace and
//! cross-validation engines run under any of them — select one by name
//! (`"autopower"`, `"mcpat-calib"`, `"mcpat-calib-component"`,
//! `"autopower-minus"`) and train it with [`ModelKind::train`].
//!
//! # Quickstart
//!
//! ```
//! use autopower::{AutoPower, Corpus, CorpusSpec};
//! use autopower_config::{boom_configs, ConfigId, Workload};
//!
//! // Build a small corpus (three configurations, two workloads) with the fast
//! // simulation settings so the doctest stays quick.
//! let configs = [boom_configs()[0], boom_configs()[7], boom_configs()[14]];
//! let spec = CorpusSpec::fast();
//! let corpus = Corpus::generate(&configs, &[Workload::Dhrystone, Workload::Vvadd], &spec);
//!
//! // Train on the two extreme configurations, predict the third.
//! let model = AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
//! let run = corpus.run(ConfigId::new(8), Workload::Vvadd).unwrap();
//! let predicted = model.predict_run(run);
//! assert!(predicted.total() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod clock;
mod dataset;
mod error;
mod evaluation;
mod features;
mod logic;
mod model;
pub mod pipeline;
mod power_model;
mod prediction;
mod serialize;
mod sram;
pub mod stream;
pub mod surrogate;
pub mod sweep;
mod trace;
mod xval;

pub use clock::ClockPowerModel;
pub use dataset::{Corpus, CorpusSpec, RunData};
pub use error::AutoPowerError;
pub use evaluation::{evaluate_totals, try_evaluate_totals, AccuracySummary, PredictionPair};
pub use features::{
    event_features, event_features_into, hw_feature_names, hw_features, hw_features_into,
    model_feature_names, model_features, model_features_into, FeatureScratch, ModelFeatures,
};
pub use logic::LogicPowerModel;
pub use model::AutoPower;
pub use pipeline::SubstratePipeline;
pub use power_model::{ModelKind, PowerModel, PredictInput};
pub use prediction::{ComponentBreakdown, ComponentPower, Prediction, Resolution};
pub use serialize::{decode_model, encode_model, load_model, save_model, MODEL_FORMAT_VERSION};
pub use sram::{
    predicted_block_power_mw, PositionHardwareModel, PredictedBlock, ScalingRule,
    SramActivityModel, SramPowerModel,
};
pub use stream::{
    area_proxy, decode_checkpoint, encode_checkpoint, load_checkpoint, load_checkpoint_salvaged,
    save_checkpoint, save_checkpoint_with, CheckpointSalvage, ChunkCursor, ParetoConstraints,
    ParetoEntry, ParetoFrontier, PowerSeries, QuantileSketch, SeriesSketch, StreamProgress,
    StreamSpec, SweepAggregator, SweepCheckpoint, CHECKPOINT_FORMAT_VERSION,
};
pub use surrogate::{
    audit_selected, decode_surrogate, encode_surrogate, load_surrogate, save_surrogate,
    surrogate_gbdt_params, ActivitySurrogate, AuditAccumulator, AuditEventError, AuditReport,
    SURROGATE_FORMAT_VERSION, SURROGATE_TRAIN_SEED,
};
pub use sweep::{
    config_summary, rank_by_efficiency, summarize, sweep_multi, sweep_multi_with_stats,
    ConfigSummary, EngineScratch, SimBackend, SweepEngine, SweepPoint, SweepSpec,
};
pub use trace::{
    evaluate_trace_prediction, trace_errors, PowerTracePredictor, PredictedPowerTrace,
    PredictedSample, TraceErrors,
};
pub use xval::{cross_validate, cross_validate_model, CrossValidation};

/// Re-export of the codec substrate the trained-model save/load format is
/// built on ([`PowerModel::serialize`] writes into its
/// [`Writer`](codec::Writer)).
pub use serde::codec;

/// Re-export of the golden power-group representation used for predictions as well.
pub use autopower_powersim::PowerGroups;
