//! The McPAT-Calib baseline: a single ML model from (H, E) to total power.

use crate::dataset::{Corpus, RunData};
use crate::error::AutoPowerError;
use crate::features::FeatureScratch;
use crate::power_model::{ModelKind, PowerModel};
use crate::prediction::Prediction;
use autopower_config::{ConfigId, CpuConfig, HwParam, Workload};
use autopower_ml::{GradientBoosting, Matrix, Regressor};
use autopower_perfsim::EventParams;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// The McPAT-Calib-style baseline.
///
/// Features are the full hardware-parameter vector (all 14 Table II parameters) plus all
/// event parameters; the target is the golden total power.  This mirrors how the paper
/// instantiates McPAT-Calib with XGBoost as the calibration model.
#[derive(Debug, Clone)]
pub struct McpatCalib {
    model: GradientBoosting,
}

impl McpatCalib {
    /// Feature row of one `(configuration, events)` point.
    pub fn features(config: &CpuConfig, events: &EventParams) -> Vec<f64> {
        let mut row = Vec::new();
        Self::features_into(config, events, &mut row);
        row
    }

    /// Appends the feature row of one point to `out` (the allocation-free
    /// twin of [`McpatCalib::features`]).
    pub fn features_into(config: &CpuConfig, events: &EventParams, out: &mut Vec<f64>) {
        out.extend(HwParam::ALL.iter().map(|&p| config.params.value(p) as f64));
        out.extend_from_slice(events.values());
    }

    /// Trains the baseline on the runs of `train_configs`.
    ///
    /// # Errors
    ///
    /// Returns an error if the training set is empty or malformed.
    pub fn train(corpus: &Corpus, train_configs: &[ConfigId]) -> Result<Self, AutoPowerError> {
        if train_configs.is_empty() {
            return Err(AutoPowerError::NoTrainingConfigs);
        }
        let fit_error = AutoPowerError::fit(
            autopower_config::Component::OtherLogic,
            "McPAT-Calib total power",
        );
        let runs = corpus.training_runs(train_configs);
        if runs.is_empty() {
            return Err(fit_error(autopower_ml::FitError::EmptyTrainingSet));
        }
        let mut data = Vec::new();
        for r in &runs {
            Self::features_into(&r.config, &r.sim.events, &mut data);
        }
        let matrix = Matrix::from_flat(runs.len(), data.len() / runs.len(), data);
        let targets: Vec<f64> = runs.iter().map(|r| r.golden.total_mw()).collect();
        let mut model = GradientBoosting::default();
        model.fit_matrix(&matrix, &targets).map_err(fit_error)?;
        Ok(Self { model })
    }

    /// Predicted total power in mW.
    pub fn predict(&self, config: &CpuConfig, events: &EventParams) -> f64 {
        self.predict_scratch(config, events, &mut FeatureScratch::new())
    }

    /// [`McpatCalib::predict`] with a reusable feature scratch.
    pub fn predict_scratch(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        let row = scratch.row_mut();
        Self::features_into(config, events, row);
        self.model.predict(row).max(0.0)
    }

    /// Convenience: predicts the total power of a corpus run.
    pub fn predict_run(&self, run: &RunData) -> f64 {
        self.predict(&run.config, &run.sim.events)
    }
}

impl PowerModel for McpatCalib {
    fn kind(&self) -> ModelKind {
        ModelKind::McpatCalib
    }

    /// Total-only: the typed prediction carries the scalar and nothing else —
    /// no group slot to misread.
    fn predict_with(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        _workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> Prediction {
        Prediction::total_only(self.predict_scratch(config, events, scratch))
    }

    fn serialize(&self, w: &mut Writer) {
        Codec::encode(self, w);
    }
}

impl Codec for McpatCalib {
    fn encode(&self, w: &mut Writer) {
        w.begin("mcpat-calib");
        self.model.encode(w);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("mcpat-calib")?;
        let model = GradientBoosting::decode(r)?;
        r.end()?;
        Ok(Self { model })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use autopower_config::{boom_configs, Workload};

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn baseline_learns_the_training_runs() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let m = McpatCalib::train(&c, &train).unwrap();
        for run in c.training_runs(&train) {
            let pred = m.predict_run(run);
            let truth = run.golden.total_mw();
            assert!(((pred - truth) / truth).abs() < 0.10, "{pred} vs {truth}");
        }
    }

    #[test]
    fn baseline_produces_positive_predictions_everywhere() {
        let c = corpus();
        let m = McpatCalib::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        for run in c.runs() {
            assert!(m.predict_run(run) > 0.0);
        }
    }

    #[test]
    fn feature_row_width_is_hw_plus_events() {
        let c = corpus();
        let run = &c.runs()[0];
        let row = McpatCalib::features(&run.config, &run.sim.events);
        assert_eq!(row.len(), 14 + EventParams::names().len());
    }

    #[test]
    fn empty_training_set_is_rejected() {
        let c = corpus();
        assert!(McpatCalib::train(&c, &[]).is_err());
    }
}
