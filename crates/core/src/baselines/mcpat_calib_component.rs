//! The "McPAT-Calib + Component" ablation baseline: one McPAT-Calib-style model per
//! component, summed.

use crate::dataset::{Corpus, RunData};
use crate::error::AutoPowerError;
use crate::features::{model_feature_matrix, model_features_into, FeatureScratch, ModelFeatures};
use crate::power_model::{ModelKind, PowerModel};
use crate::prediction::{ComponentBreakdown, Prediction};
use autopower_config::{Component, ConfigId, CpuConfig, Workload};
use autopower_ml::{GradientBoosting, Regressor};
use autopower_perfsim::EventParams;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// Per-component total-power baseline (the extra ablation of Fig. 6).
#[derive(Debug, Clone)]
pub struct McpatCalibComponent {
    per_component: Vec<GradientBoosting>,
}

impl McpatCalibComponent {
    /// Trains one model per component on the runs of `train_configs`.
    ///
    /// # Errors
    ///
    /// Returns an error if a per-component model cannot be fitted.
    pub fn train(corpus: &Corpus, train_configs: &[ConfigId]) -> Result<Self, AutoPowerError> {
        if train_configs.is_empty() {
            return Err(AutoPowerError::NoTrainingConfigs);
        }
        let runs = corpus.training_runs(train_configs);
        let per_component = Component::ALL
            .iter()
            .map(|&component| {
                let matrix = model_feature_matrix(ModelFeatures::HW_EVENTS, component, &runs)
                    .ok_or_else(|| {
                        AutoPowerError::fit(component, "per-component total power")(
                            autopower_ml::FitError::EmptyTrainingSet,
                        )
                    })?;
                let targets: Vec<f64> = runs
                    .iter()
                    .map(|r| r.golden.component(component).total())
                    .collect();
                let mut model = GradientBoosting::default();
                model
                    .fit_matrix(&matrix, &targets)
                    .map_err(AutoPowerError::fit(component, "per-component total power"))?;
                Ok(model)
            })
            .collect::<Result<Vec<_>, AutoPowerError>>()?;
        Ok(Self { per_component })
    }

    /// Predicted total power of one component in mW.
    pub fn predict_component(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> f64 {
        self.predict_component_with(
            component,
            config,
            events,
            workload,
            &mut FeatureScratch::new(),
        )
    }

    /// [`McpatCalibComponent::predict_component`] with a reusable feature
    /// scratch.
    pub fn predict_component_with(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        let row = scratch.row_mut();
        model_features_into(
            ModelFeatures::HW_EVENTS,
            component,
            config,
            events,
            workload,
            row,
        );
        self.per_component[component.index()].predict(row).max(0.0)
    }

    /// Predicted total core power in mW (sum of the component models).
    pub fn predict(&self, config: &CpuConfig, events: &EventParams, workload: Workload) -> f64 {
        Component::ALL
            .iter()
            .map(|&c| self.predict_component(c, config, events, workload))
            .sum()
    }

    /// Convenience: predicts the total power of a corpus run.
    pub fn predict_run(&self, run: &RunData) -> f64 {
        self.predict(&run.config, &run.sim.events, run.workload)
    }
}

impl PowerModel for McpatCalibComponent {
    fn kind(&self) -> ModelKind {
        ModelKind::McpatCalibComponent
    }

    /// Component-resolved, but without per-component groups: each component
    /// carries its predicted scalar, and the core-level total is their sum —
    /// exactly the summation the inherent API performs.
    fn predict_with(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> Prediction {
        Prediction::per_component(ComponentBreakdown::from_totals(|component| {
            self.predict_component_with(component, config, events, workload, scratch)
        }))
    }

    fn predict_components(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> Option<ComponentBreakdown> {
        Some(ComponentBreakdown::from_totals(|component| {
            self.predict_component(component, config, events, workload)
        }))
    }

    fn serialize(&self, w: &mut Writer) {
        Codec::encode(self, w);
    }
}

impl Codec for McpatCalibComponent {
    fn encode(&self, w: &mut Writer) {
        w.begin("mcpat-calib-component");
        w.begin_list("models", self.per_component.len());
        for model in &self.per_component {
            model.encode(w);
        }
        w.end();
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("mcpat-calib-component")?;
        let len = r.begin_list("models")?;
        if len != Component::ALL.len() {
            return Err(CodecError::new(
                r.line(),
                format!(
                    "mcpat-calib-component has {len} models, expected {}",
                    Component::ALL.len()
                ),
            ));
        }
        let mut per_component = Vec::with_capacity(len);
        for _ in 0..len {
            per_component.push(GradientBoosting::decode(r)?);
        }
        r.end()?;
        r.end()?;
        Ok(Self { per_component })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use autopower_config::{boom_configs, Workload};

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn component_sum_equals_core_prediction() {
        let c = corpus();
        let m = McpatCalibComponent::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let run = c.run(ConfigId::new(8), Workload::Vvadd).unwrap();
        let sum: f64 = Component::ALL
            .iter()
            .map(|&comp| m.predict_component(comp, &run.config, &run.sim.events, run.workload))
            .sum();
        assert!((sum - m.predict_run(run)).abs() < 1e-9);
    }

    #[test]
    fn in_sample_fit_is_tight() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let m = McpatCalibComponent::train(&c, &train).unwrap();
        for run in c.training_runs(&train) {
            let pred = m.predict_run(run);
            let truth = run.golden.total_mw();
            assert!(((pred - truth) / truth).abs() < 0.15, "{pred} vs {truth}");
        }
    }

    #[test]
    fn rejects_empty_training() {
        let c = corpus();
        assert!(McpatCalibComponent::train(&c, &[]).is_err());
    }
}
