//! The AutoPower− ablation baseline (Figs. 7 and 8 of the paper).
//!
//! AutoPower− keeps the *first* level of decoupling — separate models per power group —
//! but drops the second: instead of the structural sub-models (register count, gating
//! rate, scaling-pattern block shapes, macro mapping …) it applies a direct ML model per
//! component and per power group.

use crate::dataset::{Corpus, RunData};
use crate::error::AutoPowerError;
use crate::features::{model_feature_matrix, model_features_into, FeatureScratch, ModelFeatures};
use crate::power_model::{ModelKind, PowerModel};
use crate::prediction::{ComponentBreakdown, Prediction};
use autopower_config::{Component, ConfigId, CpuConfig, Workload};
use autopower_ml::{GradientBoosting, Regressor};
use autopower_perfsim::EventParams;
use autopower_powersim::PowerGroups;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// The four power groups a model is trained for.
const GROUPS: usize = 4;

/// Direct per-group ML baseline.
#[derive(Debug, Clone)]
pub struct AutoPowerMinus {
    /// `models[component][group]` with groups ordered clock, sram, register, comb.
    models: Vec<[GradientBoosting; GROUPS]>,
}

impl AutoPowerMinus {
    /// Trains the ablation baseline on the runs of `train_configs`.
    ///
    /// # Errors
    ///
    /// Returns an error if a per-component per-group model cannot be fitted.
    pub fn train(corpus: &Corpus, train_configs: &[ConfigId]) -> Result<Self, AutoPowerError> {
        if train_configs.is_empty() {
            return Err(AutoPowerError::NoTrainingConfigs);
        }
        let runs = corpus.training_runs(train_configs);
        let mut models = Vec::with_capacity(Component::ALL.len());
        for &component in &Component::ALL {
            // One flat feature matrix per component feeds all four group fits.
            let matrix = model_feature_matrix(ModelFeatures::HW_EVENTS, component, &runs)
                .ok_or_else(|| {
                    AutoPowerError::fit(component, "direct group power")(
                        autopower_ml::FitError::EmptyTrainingSet,
                    )
                })?;
            let group_targets: [Vec<f64>; GROUPS] = [
                runs.iter()
                    .map(|r| r.golden.component(component).clock)
                    .collect(),
                runs.iter()
                    .map(|r| r.golden.component(component).sram)
                    .collect(),
                runs.iter()
                    .map(|r| r.golden.component(component).register)
                    .collect(),
                runs.iter()
                    .map(|r| r.golden.component(component).combinational)
                    .collect(),
            ];
            let mut fitted: Vec<GradientBoosting> = Vec::with_capacity(GROUPS);
            for targets in &group_targets {
                let mut model = GradientBoosting::default();
                model
                    .fit_matrix(&matrix, targets)
                    .map_err(AutoPowerError::fit(component, "direct group power"))?;
                fitted.push(model);
            }
            models.push(
                fitted
                    .try_into()
                    .expect("exactly four group models were fitted"),
            );
        }
        Ok(Self { models })
    }

    /// Predicted per-group power of one component.
    pub fn predict_component(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> PowerGroups {
        self.predict_component_with(
            component,
            config,
            events,
            workload,
            &mut FeatureScratch::new(),
        )
    }

    /// [`AutoPowerMinus::predict_component`] with a reusable feature scratch:
    /// one row feeds all four group models.
    pub fn predict_component_with(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> PowerGroups {
        let row = scratch.row_mut();
        model_features_into(
            ModelFeatures::HW_EVENTS,
            component,
            config,
            events,
            workload,
            row,
        );
        let m = &self.models[component.index()];
        PowerGroups {
            clock: m[0].predict(row).max(0.0),
            sram: m[1].predict(row).max(0.0),
            register: m[2].predict(row).max(0.0),
            combinational: m[3].predict(row).max(0.0),
        }
    }

    /// Predicted per-group power of the whole core.
    pub fn predict(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> PowerGroups {
        let mut total = PowerGroups::default();
        for &c in &Component::ALL {
            total += self.predict_component(c, config, events, workload);
        }
        total
    }

    /// Convenience: predicts the per-group power of a corpus run.
    pub fn predict_run(&self, run: &RunData) -> PowerGroups {
        self.predict(&run.config, &run.sim.events, run.workload)
    }
}

impl PowerModel for AutoPowerMinus {
    fn kind(&self) -> ModelKind {
        ModelKind::AutoPowerMinus
    }

    /// Fully component- and group-resolved: the typed prediction carries one
    /// group split per component, and the core-level groups/total are their
    /// [`Component::ALL`]-ordered sum — the exact accumulation the inherent
    /// API performs.
    fn predict_with(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> Prediction {
        Prediction::per_component(ComponentBreakdown::from_groups(|component| {
            self.predict_component_with(component, config, events, workload, scratch)
        }))
    }

    fn predict_components(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> Option<ComponentBreakdown> {
        Some(ComponentBreakdown::from_groups(|component| {
            self.predict_component(component, config, events, workload)
        }))
    }

    fn serialize(&self, w: &mut Writer) {
        Codec::encode(self, w);
    }
}

impl Codec for AutoPowerMinus {
    fn encode(&self, w: &mut Writer) {
        w.begin("autopower-minus");
        w.begin_list("components", self.models.len());
        for group_models in &self.models {
            w.begin_list("groups", group_models.len());
            for model in group_models {
                model.encode(w);
            }
            w.end();
        }
        w.end();
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("autopower-minus")?;
        let components = r.begin_list("components")?;
        if components != Component::ALL.len() {
            return Err(CodecError::new(
                r.line(),
                format!(
                    "autopower-minus has {components} components, expected {}",
                    Component::ALL.len()
                ),
            ));
        }
        let mut models = Vec::with_capacity(components);
        for _ in 0..components {
            let groups = r.begin_list("groups")?;
            if groups != GROUPS {
                return Err(CodecError::new(
                    r.line(),
                    format!("autopower-minus has {groups} group models, expected {GROUPS}"),
                ));
            }
            let mut fitted = Vec::with_capacity(GROUPS);
            for _ in 0..GROUPS {
                fitted.push(GradientBoosting::decode(r)?);
            }
            r.end()?;
            models.push(
                fitted
                    .try_into()
                    .expect("exactly four group models were decoded"),
            );
        }
        r.end()?;
        r.end()?;
        Ok(Self { models })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use autopower_config::{boom_configs, Workload};

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn per_group_predictions_are_physical() {
        let c = corpus();
        let m = AutoPowerMinus::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        for run in c.runs() {
            let p = m.predict_run(run);
            assert!(p.is_physical());
            assert!(p.total() > 0.0);
        }
    }

    #[test]
    fn sram_free_components_predict_near_zero_sram_power() {
        let c = corpus();
        let m = AutoPowerMinus::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let run = c.run(ConfigId::new(8), Workload::Vvadd).unwrap();
        let p = m.predict_component(
            Component::FuPool,
            &run.config,
            &run.sim.events,
            run.workload,
        );
        assert!(p.sram < 1e-6, "FU pool has no SRAM, predicted {}", p.sram);
    }

    #[test]
    fn in_sample_totals_are_close() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let m = AutoPowerMinus::train(&c, &train).unwrap();
        for run in c.training_runs(&train) {
            let pred = m.predict_run(run).total();
            let truth = run.golden.total_mw();
            assert!(((pred - truth) / truth).abs() < 0.15, "{pred} vs {truth}");
        }
    }

    #[test]
    fn rejects_empty_training() {
        let c = corpus();
        assert!(AutoPowerMinus::train(&c, &[]).is_err());
    }
}
