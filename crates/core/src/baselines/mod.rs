//! Baseline power models the paper compares against.
//!
//! * [`McpatCalib`] — the representative ML-based architecture-level power model: one
//!   gradient-boosted model over all hardware and event parameters predicting total
//!   power directly (the paper selects XGBoost as McPAT-Calib's best ML model).
//! * [`McpatCalibComponent`] — the "McPAT-Calib + Component" ablation: the same building
//!   block instantiated once per component, summed.
//! * [`AutoPowerMinus`] — the AutoPower− ablation: decoupled across power groups but with
//!   a direct ML model per group instead of the structural sub-models.

mod autopower_minus;
mod mcpat_calib;
mod mcpat_calib_component;

pub use autopower_minus::AutoPowerMinus;
pub use mcpat_calib::McpatCalib;
pub use mcpat_calib_component::McpatCalibComponent;
