//! The typed prediction value: a total plus an explicit [`Resolution`].
//!
//! Historically `PowerModel::predict` returned a bare
//! [`PowerGroups`](autopower_powersim::PowerGroups) for *every* model, and
//! total-only models (McPAT-Calib) parked their scalar in the
//! `combinational` slot — a documented hack guarded by an out-of-band
//! `resolves_groups()` flag.  This module encodes the structural depth of a
//! prediction in the type instead:
//!
//! * [`Resolution::TotalOnly`] — the model predicts one scalar (McPAT-Calib).
//! * [`Resolution::Grouped`] — the model predicts the paper's four power
//!   groups at the core level (AutoPower's canonical output).
//! * [`Resolution::PerComponent`] — the model predicts per-component power,
//!   each component carrying a total and, when the model splits it, the
//!   per-component groups (AutoPower−, McPAT-Calib + Component).
//!
//! The constructors derive the total from the richest structure available, in
//! the exact summation order the models have always used, so totals stay
//! bit-identical to the pre-typed API.

use autopower_config::Component;
use autopower_powersim::PowerGroups;

/// Predicted power of one component: a total and, when the model splits the
/// component into groups, the per-group view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentPower {
    /// Predicted total power of the component in mW.
    pub total: f64,
    /// Per-group split of the component, for models that resolve it.
    pub groups: Option<PowerGroups>,
}

impl ComponentPower {
    /// A component whose groups are resolved; the total is the group sum.
    pub fn grouped(groups: PowerGroups) -> Self {
        Self {
            total: groups.total(),
            groups: Some(groups),
        }
    }

    /// A component predicted as one scalar.
    pub fn total_only(total: f64) -> Self {
        Self {
            total,
            groups: None,
        }
    }
}

/// Per-component prediction: one [`ComponentPower`] per [`Component::ALL`]
/// entry, in that order.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentBreakdown {
    entries: Vec<ComponentPower>,
}

impl ComponentBreakdown {
    /// Wraps one entry per component.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one entry per [`Component::ALL`] member is given.
    pub fn new(entries: Vec<ComponentPower>) -> Self {
        assert_eq!(
            entries.len(),
            Component::ALL.len(),
            "a breakdown carries one entry per component"
        );
        Self { entries }
    }

    /// Builds a fully group-resolved breakdown from a per-component predictor.
    pub fn from_groups(mut predict: impl FnMut(Component) -> PowerGroups) -> Self {
        Self::new(
            Component::ALL
                .iter()
                .map(|&c| ComponentPower::grouped(predict(c)))
                .collect(),
        )
    }

    /// Builds a total-only breakdown from a per-component scalar predictor.
    pub fn from_totals(mut predict: impl FnMut(Component) -> f64) -> Self {
        Self::new(
            Component::ALL
                .iter()
                .map(|&c| ComponentPower::total_only(predict(c)))
                .collect(),
        )
    }

    /// The entry of one component.
    pub fn component(&self, component: Component) -> ComponentPower {
        self.entries[component.index()]
    }

    /// Every `(component, entry)` pair, in [`Component::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, ComponentPower)> + '_ {
        Component::ALL
            .iter()
            .copied()
            .zip(self.entries.iter().copied())
    }

    /// Whether every component carries a per-group split.
    pub fn resolves_groups(&self) -> bool {
        self.entries.iter().all(|e| e.groups.is_some())
    }

    /// Core-level groups: the component groups summed in [`Component::ALL`]
    /// order, or `None` if any component lacks a group split.
    pub fn groups(&self) -> Option<PowerGroups> {
        let mut sum = PowerGroups::default();
        for entry in &self.entries {
            sum += entry.groups?;
        }
        Some(sum)
    }

    /// Core-level total: the group-summed total when every component resolves
    /// groups (matching the group-wise accumulation the group-resolving
    /// models have always used), otherwise the sum of the component totals.
    pub fn total(&self) -> f64 {
        match self.groups() {
            Some(groups) => groups.total(),
            None => self.entries.iter().map(|e| e.total).sum(),
        }
    }
}

/// How much structure a [`Prediction`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolution {
    /// One scalar; no group or component structure.
    TotalOnly,
    /// The paper's four power groups at the core level.
    Grouped(PowerGroups),
    /// Per-component power (with per-component groups where the model
    /// resolves them).
    PerComponent(ComponentBreakdown),
}

impl Resolution {
    /// Short stable name for reports (`total-only` / `grouped` /
    /// `per-component`).
    pub fn name(&self) -> &'static str {
        match self {
            Resolution::TotalOnly => "total-only",
            Resolution::Grouped(_) => "grouped",
            Resolution::PerComponent(_) => "per-component",
        }
    }
}

/// A typed power prediction: the total in mW plus the structural
/// [`Resolution`] it was derived from.
///
/// The total is always present and always meaningful; [`Prediction::groups`]
/// and [`Prediction::components`] surface the richer views only when the
/// model actually resolved them — there is no slot-parking and nothing to
/// misread.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    total: f64,
    resolution: Resolution,
}

impl Prediction {
    /// A total-only prediction.
    pub fn total_only(total: f64) -> Self {
        Self {
            total,
            resolution: Resolution::TotalOnly,
        }
    }

    /// A group-resolved prediction; the total is the group sum.
    pub fn grouped(groups: PowerGroups) -> Self {
        Self {
            total: groups.total(),
            resolution: Resolution::Grouped(groups),
        }
    }

    /// A component-resolved prediction; the total is the breakdown's
    /// core-level total (see [`ComponentBreakdown::total`]).
    pub fn per_component(breakdown: ComponentBreakdown) -> Self {
        Self {
            total: breakdown.total(),
            resolution: Resolution::PerComponent(breakdown),
        }
    }

    /// Predicted total power in mW.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The structural resolution of the prediction.
    pub fn resolution(&self) -> &Resolution {
        &self.resolution
    }

    /// Core-level per-group power, if the model resolves groups (directly or
    /// by summing a fully group-resolved component breakdown).
    pub fn groups(&self) -> Option<PowerGroups> {
        match &self.resolution {
            Resolution::TotalOnly => None,
            Resolution::Grouped(groups) => Some(*groups),
            Resolution::PerComponent(breakdown) => breakdown.groups(),
        }
    }

    /// The per-component breakdown, if the model resolves components.
    pub fn components(&self) -> Option<&ComponentBreakdown> {
        match &self.resolution {
            Resolution::PerComponent(breakdown) => Some(breakdown),
            _ => None,
        }
    }

    /// `true` if the total (and every resolved group) is finite and
    /// non-negative.
    pub fn is_physical(&self) -> bool {
        let total_ok = self.total.is_finite() && self.total >= 0.0;
        total_ok && self.groups().is_none_or(|g| g.is_physical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups(scale: f64) -> PowerGroups {
        PowerGroups {
            clock: 2.0 * scale,
            sram: 1.5 * scale,
            register: 0.5 * scale,
            combinational: 1.0 * scale,
        }
    }

    #[test]
    fn total_only_carries_no_structure() {
        let p = Prediction::total_only(97.25);
        assert_eq!(p.total(), 97.25);
        assert_eq!(p.groups(), None);
        assert!(p.components().is_none());
        assert_eq!(p.resolution().name(), "total-only");
        assert!(p.is_physical());
        assert!(!Prediction::total_only(f64::NAN).is_physical());
        assert!(!Prediction::total_only(-1.0).is_physical());
    }

    #[test]
    fn grouped_total_is_the_group_sum_bit_for_bit() {
        let g = groups(7.3);
        let p = Prediction::grouped(g);
        assert_eq!(p.total().to_bits(), g.total().to_bits());
        assert_eq!(p.groups(), Some(g));
        assert_eq!(p.resolution().name(), "grouped");
    }

    #[test]
    fn per_component_with_groups_sums_group_wise() {
        let b = ComponentBreakdown::from_groups(|c| groups((c.index() + 1) as f64));
        assert!(b.resolves_groups());
        // The core-level groups are the component groups accumulated in
        // Component::ALL order — the exact loop the group-resolving models
        // have always run.
        let mut expected = PowerGroups::default();
        for c in Component::ALL {
            expected += groups((c.index() + 1) as f64);
        }
        assert_eq!(b.groups(), Some(expected));
        let p = Prediction::per_component(b.clone());
        assert_eq!(p.total().to_bits(), expected.total().to_bits());
        assert_eq!(p.groups(), Some(expected));
        assert_eq!(p.components(), Some(&b));
        assert_eq!(p.resolution().name(), "per-component");
    }

    #[test]
    fn per_component_without_groups_sums_scalars() {
        let b = ComponentBreakdown::from_totals(|c| c.index() as f64 + 0.5);
        assert!(!b.resolves_groups());
        assert_eq!(b.groups(), None);
        let expected: f64 = Component::ALL.iter().map(|c| c.index() as f64 + 0.5).sum();
        let p = Prediction::per_component(b);
        assert_eq!(p.total().to_bits(), expected.to_bits());
        assert_eq!(p.groups(), None);
        assert!(p.components().is_some());
    }

    #[test]
    fn breakdown_entries_are_addressable_by_component() {
        let b = ComponentBreakdown::from_totals(|c| c.index() as f64);
        for (i, c) in Component::ALL.into_iter().enumerate() {
            assert_eq!(b.component(c).total, i as f64);
        }
        assert_eq!(b.iter().count(), Component::ALL.len());
    }

    #[test]
    #[should_panic(expected = "one entry per component")]
    fn short_breakdowns_are_rejected() {
        let _ = ComponentBreakdown::new(vec![ComponentPower::total_only(1.0)]);
    }
}
