//! Error type of the AutoPower crate.

use autopower_config::{Component, ConfigId, SramPositionId};
use autopower_ml::FitError;
use std::error::Error;
use std::fmt;

/// Reasons training or prediction cannot proceed.
#[derive(Debug, Clone, PartialEq)]
pub enum AutoPowerError {
    /// No training configurations were provided.
    NoTrainingConfigs,
    /// A requested training configuration is not present in the corpus.
    MissingConfig(ConfigId),
    /// A sub-model could not be fitted.
    SubModelFit {
        /// The component whose sub-model failed.
        component: Component,
        /// Which sub-model failed (e.g. `"register count"`).
        sub_model: &'static str,
        /// The underlying fitting error.
        source: FitError,
    },
    /// The SRAM hardware model could not find any scaling rule for a position.
    NoScalingRule(SramPositionId),
    /// An evaluation was requested over an empty set of prediction pairs
    /// (e.g. a test split filtered down to nothing).
    EmptyEvaluation,
    /// A model name did not match any registry entry.
    UnknownModel(String),
    /// The same configuration appears more than once in a training set, which
    /// would silently double-weight its runs.
    DuplicateTrainingConfig(ConfigId),
    /// A serialized model could not be parsed (wrong header, version,
    /// registry tag, or a malformed body).
    ModelFormat(String),
    /// A model file could not be read or written.
    ModelIo(String),
    /// A sweep checkpoint could not be read, written, parsed, or does not
    /// belong to the sweep being resumed.
    Checkpoint(String),
    /// An activity surrogate could not be trained, loaded, or safely used
    /// (e.g. it does not cover the sweep's workloads, or a sweep finished
    /// with zero audited configurations).
    Surrogate(String),
}

impl fmt::Display for AutoPowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoPowerError::NoTrainingConfigs => {
                write!(f, "at least one training configuration is required")
            }
            AutoPowerError::MissingConfig(id) => {
                write!(f, "configuration {id} is not present in the corpus")
            }
            AutoPowerError::SubModelFit {
                component,
                sub_model,
                source,
            } => write!(
                f,
                "failed to fit the {sub_model} sub-model of {component}: {source}"
            ),
            AutoPowerError::NoScalingRule(position) => {
                write!(
                    f,
                    "no scaling rule could be fitted for SRAM position {position}"
                )
            }
            AutoPowerError::EmptyEvaluation => {
                write!(f, "cannot evaluate an empty set of prediction pairs")
            }
            AutoPowerError::UnknownModel(name) => {
                let known: Vec<&str> = crate::power_model::ModelKind::ALL
                    .iter()
                    .map(|kind| kind.registry_name())
                    .collect();
                write!(
                    f,
                    "unknown model '{name}' (expected one of: {})",
                    known.join(", ")
                )
            }
            AutoPowerError::DuplicateTrainingConfig(id) => {
                write!(
                    f,
                    "configuration {id} appears more than once in the training set \
                     (its runs would be double-weighted)"
                )
            }
            AutoPowerError::ModelFormat(message) => {
                write!(f, "malformed model file: {message}")
            }
            AutoPowerError::ModelIo(message) => {
                write!(f, "model file I/O failed: {message}")
            }
            AutoPowerError::Checkpoint(message) => {
                write!(f, "sweep checkpoint error: {message}")
            }
            AutoPowerError::Surrogate(message) => {
                write!(f, "surrogate error: {message}")
            }
        }
    }
}

impl Error for AutoPowerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AutoPowerError::SubModelFit { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl AutoPowerError {
    /// Helper used by the sub-model trainers to attach context to a [`FitError`].
    pub(crate) fn fit(
        component: Component,
        sub_model: &'static str,
    ) -> impl FnOnce(FitError) -> Self {
        move |source| AutoPowerError::SubModelFit {
            component,
            sub_model,
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AutoPowerError::SubModelFit {
            component: Component::Rob,
            sub_model: "register count",
            source: FitError::EmptyTrainingSet,
        };
        let msg = e.to_string();
        assert!(msg.contains("ROB"));
        assert!(msg.contains("register count"));
        assert!(e.source().is_some());
        assert!(AutoPowerError::NoTrainingConfigs.source().is_none());
        let unknown = AutoPowerError::UnknownModel("xgboost".to_owned());
        assert!(unknown.to_string().contains("xgboost"));
        assert!(unknown.to_string().contains("autopower"));
        assert!(AutoPowerError::EmptyEvaluation
            .to_string()
            .contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + 'static>() {}
        check::<AutoPowerError>();
    }
}
