//! Learned activity surrogate: sweep at prediction speed with the performance
//! simulator demoted to a sampled oracle.
//!
//! Even after exact memoization and the allocation-free hot loop, a sweep
//! point still pays ~milliseconds of genuinely stepped pipeline cycles per
//! simulation.  The remaining lever is error-bounded approximation: a small
//! per-event GBDT ensemble that maps the **simulation-visible** configuration
//! parameters straight to the simulator's event rates, so scoring a point
//! costs a few thousand tree-node hops instead of a simulation.  The paper's
//! own thesis — calibrated ML models can replace expensive estimates when
//! validated against goldens — applied one layer down the stack.
//!
//! Soundness leans on two existing exactness proofs:
//!
//! * [`SimKey::features`] is the projection of a configuration onto everything
//!   the simulator reads — the same projection that makes the simulation
//!   cache exact — so the surrogate's inputs are *sufficient*: no hidden
//!   variable can make two feature-identical configurations simulate
//!   differently.
//! * The surrogate predicts the **raw** (pre-distortion) event rates of
//!   [`EventParams::raw_rates`], and [`EventParams::from_raw_rates_into`]
//!   re-applies the same deterministic `(config, workload, event)` distortion
//!   the exact path applies.  A perfect surrogate therefore reproduces the
//!   exact pipeline's event parameters bit for bit.
//!
//! The simulator stays in the loop as an **oracle**: it generates the
//! training set from a seeded sample of the target space, and during the
//! sweep a deterministic audit fraction of configurations is simulated
//! exactly — those points are emitted bit-identical to a full-sim sweep,
//! and the surrogate's predictions for them feed a per-event and end-to-end
//! power error bound ([`AuditReport`]).  A sweep that audited nothing has no
//! error bound, and reports refuse to print it as if it did.

use crate::error::AutoPowerError;
use autopower_config::{seed, ConfigId, DesignSpace, Workload};
use autopower_ml::{fit_multi_output, GbdtParams, GradientBoosting, Matrix};
use autopower_perfsim::{
    simulate_counters_with, EventParams, SimCache, SimConfig, SimKey, SimScratch,
};
use serde::codec::{Codec, CodecError, Reader, Writer};
use std::path::Path;

/// Version tag of the serialized surrogate format; bumped on layout changes
/// so a stale file fails loudly instead of deserializing garbage.
pub const SURROGATE_FORMAT_VERSION: u64 = 1;

/// Seed of the training-set sample of the target space.  Deliberately
/// distinct from the sweep's own sample seed so the surrogate does not train
/// on exactly the configurations it will be asked to predict (overlap is
/// still possible — the audit, not the split, is the error bound).
pub const SURROGATE_TRAIN_SEED: u64 = 0x5EED_0AC1E;

/// Salt of the deterministic audit selection hash.
const AUDIT_SALT: u64 = 0xAD17_5EED;

/// Fixed-point scale of audit error accumulation: absolute percentage errors
/// are rounded to multiples of 2^-32 and summed as integers, making the
/// accumulated sums independent of the (thread-dependent) accumulation order.
const APE_SCALE: f64 = 4_294_967_296.0;

/// GBDT hyper-parameters tuned for the surrogate: the per-event targets are
/// smooth in the 11 structural features, so a short, strongly-shrunk ensemble
/// keeps inference at a few thousand node hops per point — the budget that
/// makes the sweep prediction-speed.
///
/// Tuned against a full-audit error scan on the 96-config benchmark space:
/// 24 trees at shrinkage 0.3 match the audit MAPE of ensembles twice the
/// size (the surrogate is training-data-limited, not capacity-limited) at
/// half the inference cost.
pub fn surrogate_gbdt_params() -> GbdtParams {
    GbdtParams {
        n_estimators: 24,
        learning_rate: 0.3,
        max_depth: 3,
        ..GbdtParams::default()
    }
}

/// Whether a configuration is in the deterministic audit fraction of a
/// surrogate sweep.
///
/// A pure function of the configuration identity and the rate — independent
/// of thread count, chunking, stream order and resume position — so the set
/// of audited configurations is a property of the sweep, not of its
/// execution.  `rate >= 1` audits everything, `rate <= 0` nothing.
pub fn audit_selected(config: ConfigId, audit_rate: f64) -> bool {
    if audit_rate >= 1.0 {
        return true;
    }
    if audit_rate <= 0.0 {
        return false;
    }
    seed::unit_uniform(seed::combine(AUDIT_SALT, config.index() as u64)) < audit_rate
}

/// A per-event GBDT ensemble predicting a workload's raw event rates from the
/// simulation-visible configuration features.
///
/// One independent ensemble per `(workload, event)` pair, all fitted over one
/// shared feature matrix ([`fit_multi_output`]).  The training simulation
/// knobs (`max_instructions`, `stream_seed`) are recorded and re-validated at
/// use, because predictions are only meaningful for the exact simulation the
/// surrogate learned.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivitySurrogate {
    max_instructions: u64,
    stream_seed: u64,
    train_count: u64,
    train_seed: u64,
    workloads: Vec<Workload>,
    /// `models[w][e]` predicts event `e` of `workloads[w]`.
    models: Vec<Vec<GradientBoosting>>,
}

impl ActivitySurrogate {
    /// Trains a surrogate on `count` configurations sampled from `space` with
    /// `train_seed`, simulating every `(configuration, workload)` pair
    /// exactly (the oracle's training set) and fitting one GBDT per
    /// `(workload, event)` output over the shared feature matrix.
    ///
    /// # Errors
    ///
    /// Returns [`AutoPowerError::Surrogate`] when `count` is zero, no
    /// workloads are given, or a per-output fit fails.
    pub fn train(
        space: &DesignSpace,
        workloads: &[Workload],
        sim: &SimConfig,
        count: usize,
        train_seed: u64,
        params: &GbdtParams,
    ) -> Result<Self, AutoPowerError> {
        if count == 0 {
            return Err(AutoPowerError::Surrogate(
                "surrogate training needs at least one sampled configuration".into(),
            ));
        }
        if workloads.is_empty() {
            return Err(AutoPowerError::Surrogate(
                "surrogate training needs at least one workload".into(),
            ));
        }
        let configs = space.sample(count, train_seed);
        let event_count = EventParams::names().len();

        // One shared feature matrix: SimKey::features ignores the workload,
        // so every workload's outputs regress over the same rows.
        let mut features = Vec::with_capacity(configs.len() * SimKey::FEATURE_COUNT);
        for config in &configs {
            features.extend(SimKey::new(config, workloads[0], sim).features());
        }
        let x = Matrix::from_flat(configs.len(), SimKey::FEATURE_COUNT, features);

        // Oracle pass: exact simulations, deduplicated along the
        // simulation-invisible axes exactly like the sweep itself.
        let cache = SimCache::new();
        let mut scratch = SimScratch::new();
        let mut targets: Vec<Vec<f64>> =
            vec![Vec::with_capacity(configs.len()); workloads.len() * event_count];
        for config in &configs {
            for (w, &workload) in workloads.iter().enumerate() {
                let counters = cache.counters_for(SimKey::new(config, workload, sim), || {
                    simulate_counters_with(config, workload, sim, &mut scratch)
                });
                let raw = EventParams::raw_rates(&counters);
                for (e, &rate) in raw.iter().enumerate() {
                    targets[w * event_count + e].push(rate);
                }
            }
        }

        let flat_models = fit_multi_output(params, &x, &targets).map_err(|e| {
            AutoPowerError::Surrogate(format!("fitting the surrogate ensembles: {e}"))
        })?;
        let mut models: Vec<Vec<GradientBoosting>> = Vec::with_capacity(workloads.len());
        let mut iter = flat_models.into_iter();
        for _ in workloads {
            models.push(iter.by_ref().take(event_count).collect());
        }
        Ok(Self {
            max_instructions: sim.max_instructions,
            stream_seed: sim.stream_seed,
            train_count: count as u64,
            train_seed,
            workloads: workloads.to_vec(),
            models,
        })
    }

    /// The workloads this surrogate can predict.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Whether the surrogate was trained for `workload`.
    pub fn covers(&self, workload: Workload) -> bool {
        self.workloads.contains(&workload)
    }

    /// Number of configurations the training set sampled.
    pub fn train_count(&self) -> u64 {
        self.train_count
    }

    /// Seed of the training-set sample.
    pub fn train_seed(&self) -> u64 {
        self.train_seed
    }

    /// Checks that `sim` runs the exact simulation this surrogate learned.
    ///
    /// # Errors
    ///
    /// Returns [`AutoPowerError::Surrogate`] when the instruction budget or
    /// stream seed differ (the predicted rates would silently describe a
    /// different simulation).  `interval_cycles` and `event_distortion` are
    /// irrelevant: the former is pure observation, the latter is re-applied
    /// downstream of the predicted raw rates.
    pub fn compatible_with(&self, sim: &SimConfig) -> Result<(), AutoPowerError> {
        if self.max_instructions != sim.max_instructions || self.stream_seed != sim.stream_seed {
            return Err(AutoPowerError::Surrogate(format!(
                "surrogate was trained for max_instructions={} stream_seed={} but the sweep \
                 simulates max_instructions={} stream_seed={}",
                self.max_instructions, self.stream_seed, sim.max_instructions, sim.stream_seed
            )));
        }
        Ok(())
    }

    /// Predicts the raw (pre-distortion) event rates of `workload` for a
    /// configuration's [`SimKey::features`] vector, clamped to the physical
    /// lower bound of zero.
    ///
    /// # Panics
    ///
    /// Panics if the surrogate does not cover `workload` (callers validate
    /// coverage before sweeping) or `out` is not one slot per event.
    pub fn predict_raw_into(&self, workload: Workload, features: &[f64], out: &mut [f64]) {
        let slot = self
            .workloads
            .iter()
            .position(|&w| w == workload)
            .unwrap_or_else(|| panic!("surrogate does not cover workload {workload}"));
        let models = &self.models[slot];
        assert_eq!(out.len(), models.len(), "one output slot per event");
        for (o, model) in out.iter_mut().zip(models) {
            *o = model.forest().predict_row(features).max(0.0);
        }
    }

    /// Batched twin of [`ActivitySurrogate::predict_raw_into`]: predicts the
    /// raw event rates of `workload` for every feature row of `x` at once,
    /// forest-major — each per-event ensemble walks the whole batch before
    /// the next one runs, so an ensemble's nodes stay cache-resident across
    /// the batch instead of being evicted between points.
    ///
    /// `out` is row-major: `out[r * events + e]` is event `e` of row `r`.
    /// Bit-identical to calling [`ActivitySurrogate::predict_raw_into`] per
    /// row ([`FlatForest::predict_into`](autopower_ml::FlatForest::predict_into)
    /// pins batched-vs-single bit-identity, and the zero clamp is applied
    /// per value either way).
    ///
    /// # Panics
    ///
    /// Panics if the surrogate does not cover `workload` or `out` is not one
    /// slot per `(row, event)` pair.
    pub fn predict_raw_batch_into(
        &self,
        workload: Workload,
        x: &Matrix,
        scratch: &mut Vec<f64>,
        out: &mut [f64],
    ) {
        let slot = self
            .workloads
            .iter()
            .position(|&w| w == workload)
            .unwrap_or_else(|| panic!("surrogate does not cover workload {workload}"));
        let models = &self.models[slot];
        let events = models.len();
        assert_eq!(
            out.len(),
            x.rows() * events,
            "one output slot per (row, event)"
        );
        for (e, model) in models.iter().enumerate() {
            model.forest().predict_into(x, scratch);
            for (r, &v) in scratch.iter().enumerate() {
                out[r * events + e] = v.max(0.0);
            }
        }
    }
}

impl Codec for ActivitySurrogate {
    fn encode(&self, w: &mut Writer) {
        w.begin("surrogate");
        w.u64("max_instructions", self.max_instructions);
        w.u64("stream_seed", self.stream_seed);
        w.u64("train_count", self.train_count);
        w.u64("train_seed", self.train_seed);
        w.begin_list("workloads", self.workloads.len());
        for workload in &self.workloads {
            w.str("name", workload.name());
        }
        w.end();
        w.begin_list("ensembles", self.models.len());
        for ensemble in &self.models {
            w.begin_list("events", ensemble.len());
            for model in ensemble {
                model.encode(w);
            }
            w.end();
        }
        w.end();
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("surrogate")?;
        let max_instructions = r.u64("max_instructions")?;
        let stream_seed = r.u64("stream_seed")?;
        let count_line = r.line();
        let train_count = r.u64("train_count")?;
        if train_count == 0 {
            return Err(CodecError::new(
                count_line,
                "surrogate records an empty training sample",
            ));
        }
        let train_seed = r.u64("train_seed")?;
        let workloads_line = r.line();
        let n_workloads = r.begin_list("workloads")?;
        let mut workloads = Vec::with_capacity(n_workloads);
        for _ in 0..n_workloads {
            let line = r.line();
            let name = r.str("name")?;
            let workload = Workload::ALL
                .into_iter()
                .find(|w| w.name() == name)
                .ok_or_else(|| CodecError::new(line, format!("unknown workload '{name}'")))?;
            if workloads.contains(&workload) {
                return Err(CodecError::new(
                    line,
                    format!("duplicate workload '{name}'"),
                ));
            }
            workloads.push(workload);
        }
        r.end()?;
        if workloads.is_empty() {
            return Err(CodecError::new(
                workloads_line,
                "surrogate covers no workloads",
            ));
        }
        let ensembles_line = r.line();
        let n_ensembles = r.begin_list("ensembles")?;
        if n_ensembles != workloads.len() {
            return Err(CodecError::new(
                ensembles_line,
                format!(
                    "surrogate holds {n_ensembles} ensemble(s) for {} workload(s)",
                    workloads.len()
                ),
            ));
        }
        let event_count = EventParams::names().len();
        let mut models = Vec::with_capacity(n_ensembles);
        for _ in 0..n_ensembles {
            let events_line = r.line();
            let n_events = r.begin_list("events")?;
            if n_events != event_count {
                return Err(CodecError::new(
                    events_line,
                    format!("expected {event_count} event models, found {n_events}"),
                ));
            }
            let mut ensemble = Vec::with_capacity(n_events);
            for _ in 0..n_events {
                ensemble.push(GradientBoosting::decode(r)?);
            }
            r.end()?;
            models.push(ensemble);
        }
        r.end()?;
        r.end()?;
        Ok(Self {
            max_instructions,
            stream_seed,
            train_count,
            train_seed,
            workloads,
            models,
        })
    }
}

/// Serializes a surrogate to its version-tagged text form.
pub fn encode_surrogate(surrogate: &ActivitySurrogate) -> String {
    let mut w = Writer::new();
    w.begin("autopower-surrogate");
    w.u64("version", SURROGATE_FORMAT_VERSION);
    surrogate.encode(&mut w);
    w.end();
    w.finish()
}

/// Restores a surrogate from [`encode_surrogate`] text.
///
/// # Errors
///
/// Returns [`AutoPowerError::Surrogate`] on a malformed stream or version
/// mismatch.
pub fn decode_surrogate(text: &str) -> Result<ActivitySurrogate, AutoPowerError> {
    let mut r = Reader::new(text);
    (|| -> Result<ActivitySurrogate, CodecError> {
        r.begin("autopower-surrogate")?;
        let version_line = r.line();
        let version = r.u64("version")?;
        if version != SURROGATE_FORMAT_VERSION {
            return Err(CodecError::new(
                version_line,
                format!(
                    "unsupported surrogate format version {version} (this build reads version \
                     {SURROGATE_FORMAT_VERSION})"
                ),
            ));
        }
        let surrogate = ActivitySurrogate::decode(&mut r)?;
        r.end()?;
        r.expect_eof()?;
        Ok(surrogate)
    })()
    .map_err(|e| AutoPowerError::Surrogate(format!("malformed surrogate file: {e}")))
}

/// Saves a surrogate to `path` (see [`encode_surrogate`] for the format).
///
/// # Errors
///
/// Returns [`AutoPowerError::Surrogate`] if the file cannot be written.
pub fn save_surrogate(
    surrogate: &ActivitySurrogate,
    path: impl AsRef<Path>,
) -> Result<(), AutoPowerError> {
    let path = path.as_ref();
    std::fs::write(path, encode_surrogate(surrogate))
        .map_err(|e| AutoPowerError::Surrogate(format!("writing {}: {e}", path.display())))
}

/// Loads a surrogate saved by [`save_surrogate`].
///
/// # Errors
///
/// Returns [`AutoPowerError::Surrogate`] if the file cannot be read or does
/// not parse.
pub fn load_surrogate(path: impl AsRef<Path>) -> Result<ActivitySurrogate, AutoPowerError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| AutoPowerError::Surrogate(format!("reading {}: {e}", path.display())))?;
    decode_surrogate(&text)
}

// ---------------------------------------------------------------------------
// Audit error accounting
// ---------------------------------------------------------------------------

/// Order-independent accumulator of surrogate-vs-exact errors over the
/// audited points of a sweep.
///
/// Absolute percentage errors are accumulated as fixed-point integers
/// (scaled by the private `APE_SCALE` constant, 2^32 per unit), so the
/// sums — and therefore the reported MAPE — are
/// bit-identical for every thread count and accumulation order, and
/// serialize exactly into a sweep checkpoint for resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditAccumulator {
    points: u64,
    /// Per event: (scaled APE sum, points with a defined APE).
    per_event: Vec<(u128, u64)>,
    total: (u128, u64),
}

/// Scaled APE of one `(exact, predicted)` pair, or `None` when the error is
/// undefined (exact value zero with a non-zero prediction).
fn scaled_ape(exact: f64, predicted: f64) -> Option<u128> {
    if exact == 0.0 {
        return (predicted == 0.0).then_some(0);
    }
    let ape = ((predicted - exact) / exact).abs();
    ape.is_finite().then(|| (ape * APE_SCALE).round() as u128)
}

impl AuditAccumulator {
    /// An empty accumulator over `event_count` event features.
    pub fn new(event_count: usize) -> Self {
        Self {
            points: 0,
            per_event: vec![(0, 0); event_count],
            total: (0, 0),
        }
    }

    /// Folds one audited point: the exact and surrogate-predicted raw event
    /// rates, and the exact and surrogate-predicted total power.
    ///
    /// # Panics
    ///
    /// Panics if the rate slices do not match the accumulator's event count.
    pub fn record(
        &mut self,
        exact_raw: &[f64],
        predicted_raw: &[f64],
        exact_total: f64,
        predicted_total: f64,
    ) {
        assert_eq!(exact_raw.len(), self.per_event.len());
        assert_eq!(predicted_raw.len(), self.per_event.len());
        self.points += 1;
        for (slot, (&e, &p)) in self
            .per_event
            .iter_mut()
            .zip(exact_raw.iter().zip(predicted_raw))
        {
            if let Some(ape) = scaled_ape(e, p) {
                slot.0 += ape;
                slot.1 += 1;
            }
        }
        if let Some(ape) = scaled_ape(exact_total, predicted_total) {
            self.total.0 += ape;
            self.total.1 += 1;
        }
    }

    /// Number of audited points folded so far.
    pub fn points(&self) -> u64 {
        self.points
    }

    /// Summarizes the accumulated errors into the table a report prints.
    pub fn report(&self) -> AuditReport {
        let mape = |(sum, n): (u128, u64)| (n > 0).then(|| (sum as f64 / APE_SCALE) / n as f64);
        AuditReport {
            audited_points: self.points,
            per_event: EventParams::names()
                .iter()
                .zip(&self.per_event)
                .map(|(&name, &slot)| AuditEventError {
                    name,
                    mape: mape(slot),
                    samples: slot.1,
                })
                .collect(),
            total_mape: mape(self.total),
            total_samples: self.total.1,
        }
    }
}

impl Codec for AuditAccumulator {
    fn encode(&self, w: &mut Writer) {
        w.begin("audit");
        w.u64("points", self.points);
        w.begin_list("events", self.per_event.len());
        for &(sum, n) in &self.per_event {
            w.begin("event");
            w.u64("sum_hi", (sum >> 64) as u64);
            w.u64("sum_lo", sum as u64);
            w.u64("samples", n);
            w.end();
        }
        w.end();
        w.u64("total_hi", (self.total.0 >> 64) as u64);
        w.u64("total_lo", self.total.0 as u64);
        w.u64("total_samples", self.total.1);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("audit")?;
        Self::decode_fields(r)
    }
}

impl AuditAccumulator {
    /// Decodes the fields and closing brace of an `audit` block whose opening
    /// line was already consumed (via `try_begin` on the optional checkpoint
    /// section).
    pub(crate) fn decode_fields(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let points = r.u64("points")?;
        let events_line = r.line();
        let n_events = r.begin_list("events")?;
        if n_events != EventParams::names().len() {
            return Err(CodecError::new(
                events_line,
                format!(
                    "expected {} audited event features, found {n_events}",
                    EventParams::names().len()
                ),
            ));
        }
        let mut per_event = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            r.begin("event")?;
            let hi = r.u64("sum_hi")?;
            let lo = r.u64("sum_lo")?;
            let n = r.u64("samples")?;
            r.end()?;
            per_event.push(((u128::from(hi) << 64) | u128::from(lo), n));
        }
        r.end()?;
        let hi = r.u64("total_hi")?;
        let lo = r.u64("total_lo")?;
        let total_samples = r.u64("total_samples")?;
        r.end()?;
        Ok(Self {
            points,
            per_event,
            total: ((u128::from(hi) << 64) | u128::from(lo), total_samples),
        })
    }
}

/// One event feature's audited error bound.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEventError {
    /// The event feature's canonical name.
    pub name: &'static str,
    /// Mean absolute percentage error over the audited points, or `None`
    /// when no audited point had a defined error for this feature.
    pub mape: Option<f64>,
    /// Audited points with a defined error for this feature.
    pub samples: u64,
}

/// The audit error table of a surrogate sweep: per-event and end-to-end
/// (predicted total power) MAPE against full-simulation goldens.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Audited `(configuration, workload)` points.
    pub audited_points: u64,
    /// Per-event error bounds, in canonical [`EventParams::names`] order.
    pub per_event: Vec<AuditEventError>,
    /// MAPE of the surrogate-predicted total power against the exact-sim
    /// prediction, or `None` when nothing was audited.
    pub total_mape: Option<f64>,
    /// Audited points contributing to [`AuditReport::total_mape`].
    pub total_samples: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::HwParam;

    fn tiny_space() -> DesignSpace {
        DesignSpace::boom()
            .with_axis(HwParam::FetchWidth, vec![4])
            .with_axis(HwParam::DecodeWidth, vec![2])
            .with_axis(HwParam::RobEntry, vec![48, 64])
            .with_axis(HwParam::IntIssueWidth, vec![2])
            .with_axis(HwParam::MemFpIssueWidth, vec![1])
            .with_axis(HwParam::CacheWay, vec![2, 4])
            .with_axis(HwParam::DtlbEntry, vec![8])
            .with_axis(HwParam::BranchCount, vec![8, 12])
            .with_axis(HwParam::MshrEntry, vec![2, 4])
    }

    fn tiny_surrogate() -> ActivitySurrogate {
        ActivitySurrogate::train(
            &tiny_space(),
            &[Workload::Dhrystone, Workload::Qsort],
            &SimConfig::fast(),
            12,
            SURROGATE_TRAIN_SEED,
            &surrogate_gbdt_params(),
        )
        .unwrap()
    }

    #[test]
    fn trains_covers_and_predicts_physical_rates() {
        let surrogate = tiny_surrogate();
        assert!(surrogate.covers(Workload::Dhrystone));
        assert!(surrogate.covers(Workload::Qsort));
        assert!(!surrogate.covers(Workload::Spmv));
        assert_eq!(surrogate.train_count(), 12);

        let config = tiny_space().sample(1, 99)[0];
        let sim = SimConfig::fast();
        let features = SimKey::new(&config, Workload::Qsort, &sim).features();
        let mut out = vec![0.0; EventParams::names().len()];
        surrogate.predict_raw_into(Workload::Qsort, &features, &mut out);
        assert!(out.iter().all(|v| v.is_finite() && *v >= 0.0));
        // IPC (raw[0]) of any real pipeline is positive and below the widest
        // commit width.
        assert!(out[0] > 0.0 && out[0] < 8.0);
    }

    #[test]
    fn predictions_track_the_oracle_on_training_points() {
        let surrogate = tiny_surrogate();
        let sim = SimConfig::fast();
        let configs = tiny_space().sample(12, SURROGATE_TRAIN_SEED);
        let mut out = vec![0.0; EventParams::names().len()];
        let mut scratch = SimScratch::new();
        for config in &configs {
            let counters = simulate_counters_with(config, Workload::Dhrystone, &sim, &mut scratch);
            let exact = EventParams::raw_rates(&counters);
            let features = SimKey::new(config, Workload::Dhrystone, &sim).features();
            surrogate.predict_raw_into(Workload::Dhrystone, &features, &mut out);
            // On its own training points the ensemble should reproduce IPC
            // closely — this is a fit-sanity bound, not the audit bound.
            assert!(
                (out[0] - exact[0]).abs() / exact[0] < 0.25,
                "training-point ipc error too large: {} vs {}",
                out[0],
                exact[0]
            );
        }
    }

    #[test]
    fn codec_roundtrips_bit_for_bit() {
        let surrogate = tiny_surrogate();
        let text = encode_surrogate(&surrogate);
        let restored = decode_surrogate(&text).unwrap();
        assert_eq!(restored, surrogate);
        // Same predictions bit for bit.
        let config = tiny_space().sample(1, 7)[0];
        let features = SimKey::new(&config, Workload::Dhrystone, &SimConfig::fast()).features();
        let mut a = vec![0.0; EventParams::names().len()];
        let mut b = a.clone();
        surrogate.predict_raw_into(Workload::Dhrystone, &features, &mut a);
        restored.predict_raw_into(Workload::Dhrystone, &features, &mut b);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn decode_rejects_tampered_streams() {
        let text = encode_surrogate(&tiny_surrogate());
        let bad_version = text.replace("version 1", "version 99");
        assert!(decode_surrogate(&bad_version)
            .unwrap_err()
            .to_string()
            .contains("version"));
        let bad_workload = text.replace("name dhrystone", "name no-such-workload");
        assert!(decode_surrogate(&bad_workload)
            .unwrap_err()
            .to_string()
            .contains("unknown workload"));
        let truncated = &text[..text.len() / 2];
        assert!(decode_surrogate(truncated).is_err());
    }

    #[test]
    fn compatibility_is_pinned_to_the_training_simulation() {
        let surrogate = tiny_surrogate();
        let sim = SimConfig::fast();
        assert!(surrogate.compatible_with(&sim).is_ok());
        let reseeded = SimConfig {
            stream_seed: sim.stream_seed + 1,
            ..sim
        };
        assert!(surrogate.compatible_with(&reseeded).is_err());
        let longer = SimConfig {
            max_instructions: sim.max_instructions * 2,
            ..sim
        };
        assert!(surrogate.compatible_with(&longer).is_err());
        // Observation-only knobs do not pin compatibility.
        let observed = SimConfig {
            interval_cycles: sim.interval_cycles * 2,
            event_distortion: 0.5,
            ..sim
        };
        assert!(surrogate.compatible_with(&observed).is_ok());
    }

    #[test]
    fn audit_selection_is_deterministic_and_tracks_the_rate() {
        let ids: Vec<ConfigId> = (1..=1000).map(ConfigId::generated).collect();
        let selected: Vec<bool> = ids.iter().map(|&id| audit_selected(id, 0.25)).collect();
        // Pure function of identity: same answer on re-query.
        for (id, &s) in ids.iter().zip(&selected) {
            assert_eq!(audit_selected(*id, 0.25), s);
        }
        let count = selected.iter().filter(|&&s| s).count();
        assert!(
            (150..=350).contains(&count),
            "rate 0.25 selected {count} of 1000"
        );
        // Rate monotonicity: everything selected at a rate stays selected at
        // a higher rate (the underlying uniform draw is shared).
        for &id in &ids {
            if audit_selected(id, 0.1) {
                assert!(audit_selected(id, 0.5));
            }
        }
        assert!(ids.iter().all(|&id| audit_selected(id, 1.0)));
        assert!(!ids.iter().any(|&id| audit_selected(id, 0.0)));
    }

    #[test]
    fn accumulator_is_order_independent_and_roundtrips() {
        let n = EventParams::names().len();
        let point = |k: u64| {
            let exact: Vec<f64> = (0..n).map(|e| 0.5 + e as f64 + k as f64 * 0.01).collect();
            let predicted: Vec<f64> = exact.iter().map(|v| v * 1.03).collect();
            (exact, predicted, 100.0 + k as f64, 102.0 + k as f64)
        };
        let mut forward = AuditAccumulator::new(n);
        let mut backward = AuditAccumulator::new(n);
        for k in 0..50 {
            let (e, p, et, pt) = point(k);
            forward.record(&e, &p, et, pt);
        }
        for k in (0..50).rev() {
            let (e, p, et, pt) = point(k);
            backward.record(&e, &p, et, pt);
        }
        assert_eq!(forward, backward, "accumulation order leaked into sums");
        let report = forward.report();
        assert_eq!(report.audited_points, 50);
        for event in &report.per_event {
            assert_eq!(event.samples, 50);
            let mape = event.mape.unwrap();
            assert!((mape - 0.03).abs() < 1e-6, "{}: {mape}", event.name);
        }
        assert!(report.total_mape.unwrap() > 0.0);
        assert_eq!(report.total_samples, 50);

        // Codec roundtrip is exact (integer sums).
        let mut w = Writer::new();
        forward.encode(&mut w);
        let text = w.finish();
        let mut r = Reader::new(&text);
        let restored = AuditAccumulator::decode(&mut r).unwrap();
        r.expect_eof().unwrap();
        assert_eq!(restored, forward);
    }

    #[test]
    fn undefined_errors_are_skipped_not_poisoned() {
        let n = EventParams::names().len();
        let mut acc = AuditAccumulator::new(n);
        let mut exact = vec![1.0; n];
        let mut predicted = vec![1.1; n];
        // Event 0: exact zero, prediction non-zero — undefined, skipped.
        exact[0] = 0.0;
        predicted[0] = 0.5;
        // Event 1: both zero — a perfect prediction, counted as zero error.
        exact[1] = 0.0;
        predicted[1] = 0.0;
        acc.record(&exact, &predicted, 10.0, 11.0);
        let report = acc.report();
        assert_eq!(report.per_event[0].samples, 0);
        assert_eq!(report.per_event[0].mape, None);
        assert_eq!(report.per_event[1].samples, 1);
        assert_eq!(report.per_event[1].mape, Some(0.0));
        assert!((report.per_event[2].mape.unwrap() - 0.1).abs() < 1e-6);
        assert!((report.total_mape.unwrap() - 0.1).abs() < 1e-6);
    }
}
