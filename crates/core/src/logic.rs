//! The logic power model (Section II-C of the paper).
//!
//! Logic power is split into register power (excluding the clock pins, which belong to
//! the clock group) and combinational power:
//!
//! * register power: `P_reg = F_reg(H) · F_act(H, E)` — a hardware model for the register
//!   count times an activity model whose label is `P_reg / R`;
//! * combinational power: `P_comb = F_sta(H) · F_var(H, E)` — a *stable* power (the
//!   workload-average combinational power of a configuration, a purely hardware-related
//!   quantity) times a workload-specific *variation* ratio.

use crate::dataset::Corpus;
use crate::error::AutoPowerError;
use crate::features::{
    batch_feature_matrix, hw_features, hw_features_into, model_feature_matrix, model_features_into,
    FeatureScratch, ModelFeatures,
};
use crate::power_model::PredictInput;
use autopower_config::{Component, ConfigId, CpuConfig, Workload};
use autopower_ml::{GradientBoosting, Regressor, RidgeRegression};
use autopower_perfsim::EventParams;
use serde::codec::{Codec, CodecError, Reader, Writer};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct ComponentLogicModel {
    /// Register-count hardware model `F_reg(H)`.
    reg_hardware: RidgeRegression,
    /// Register activity model `F_act(H, E)` (label: register power per register).
    reg_activity: GradientBoosting,
    /// Combinational stable-power model `F_sta(H)`.
    comb_stable: RidgeRegression,
    /// Combinational variation model `F_var(H, E)` (label: power / stable power).
    comb_variation: GradientBoosting,
}

/// The logic power model: register and combinational sub-models per component.
#[derive(Debug, Clone)]
pub struct LogicPowerModel {
    per_component: Vec<ComponentLogicModel>,
}

impl LogicPowerModel {
    /// Trains the logic model on the runs of `train_configs`.
    ///
    /// # Errors
    ///
    /// Returns an error if a sub-model cannot be fitted.
    pub fn train(corpus: &Corpus, train_configs: &[ConfigId]) -> Result<Self, AutoPowerError> {
        if train_configs.is_empty() {
            return Err(AutoPowerError::NoTrainingConfigs);
        }
        for id in train_configs {
            if corpus.runs_for(*id).is_empty() {
                return Err(AutoPowerError::MissingConfig(*id));
            }
        }
        let per_component = Component::ALL
            .iter()
            .map(|&component| Self::train_component(component, corpus, train_configs))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { per_component })
    }

    fn train_component(
        component: Component,
        corpus: &Corpus,
        train_configs: &[ConfigId],
    ) -> Result<ComponentLogicModel, AutoPowerError> {
        let runs = corpus.training_runs(train_configs);

        // --- Register power: hardware model (one sample per configuration). ---
        let mut hw_rows = Vec::new();
        let mut reg_targets = Vec::new();
        for &id in train_configs {
            let run = corpus.runs_for(id)[0];
            hw_rows.push(hw_features(component, &run.config));
            reg_targets.push(run.netlist.component(component).registers as f64);
        }
        let mut reg_hardware = RidgeRegression::default();
        reg_hardware
            .fit(&hw_rows, &reg_targets)
            .map_err(AutoPowerError::fit(component, "logic register count"))?;

        // --- Register power: activity model (one sample per run). ---
        // The activity and variation models consume the identical HW_EVENTS
        // row per run, so one flat matrix feeds both fits.
        let he_matrix = model_feature_matrix(ModelFeatures::HW_EVENTS, component, &runs)
            .ok_or_else(|| {
                AutoPowerError::fit(component, "register activity")(
                    autopower_ml::FitError::EmptyTrainingSet,
                )
            })?;
        let mut act_targets = Vec::with_capacity(runs.len());
        for run in &runs {
            let r = run.netlist.component(component).registers as f64;
            let p_reg = run.golden.component(component).register;
            act_targets.push(if r > 0.0 { p_reg / r } else { 0.0 });
        }
        let mut reg_activity = GradientBoosting::default();
        reg_activity
            .fit_matrix(&he_matrix, &act_targets)
            .map_err(AutoPowerError::fit(component, "register activity"))?;

        // --- Combinational power: stable model (workload-average per configuration). ---
        let mut per_config_mean: HashMap<ConfigId, (f64, usize)> = HashMap::new();
        for run in &runs {
            let entry = per_config_mean.entry(run.config.id).or_insert((0.0, 0));
            entry.0 += run.golden.component(component).combinational;
            entry.1 += 1;
        }
        let mut sta_rows = Vec::new();
        let mut sta_targets = Vec::new();
        let mut stable_by_config: HashMap<ConfigId, f64> = HashMap::new();
        for &id in train_configs {
            let run = corpus.runs_for(id)[0];
            let (sum, n) = per_config_mean[&id];
            let stable = sum / n as f64;
            stable_by_config.insert(id, stable);
            sta_rows.push(hw_features(component, &run.config));
            sta_targets.push(stable);
        }
        let mut comb_stable = RidgeRegression::default();
        comb_stable
            .fit(&sta_rows, &sta_targets)
            .map_err(AutoPowerError::fit(component, "combinational stable power"))?;

        // --- Combinational power: variation model (per run, label power / stable). ---
        let mut var_targets = Vec::with_capacity(runs.len());
        for run in &runs {
            let stable = stable_by_config[&run.config.id];
            let p = run.golden.component(component).combinational;
            var_targets.push(if stable > 0.0 { p / stable } else { 1.0 });
        }
        let mut comb_variation = GradientBoosting::default();
        comb_variation
            .fit_matrix(&he_matrix, &var_targets)
            .map_err(AutoPowerError::fit(component, "combinational variation"))?;

        Ok(ComponentLogicModel {
            reg_hardware,
            reg_activity,
            comb_stable,
            comb_variation,
        })
    }

    /// Predicted register (non-clock) power of one component in mW.
    pub fn predict_register_component(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> f64 {
        self.predict_register_component_with(
            component,
            config,
            events,
            workload,
            &mut FeatureScratch::new(),
        )
    }

    /// [`LogicPowerModel::predict_register_component`] with a reusable feature
    /// scratch (the allocation-free batch-inference path).
    pub fn predict_register_component_with(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        let m = &self.per_component[component.index()];
        let row = scratch.row_mut();
        hw_features_into(component, config, row);
        let r = m.reg_hardware.predict(row).max(1.0);
        let row = scratch.row_mut();
        model_features_into(
            ModelFeatures::HW_EVENTS,
            component,
            config,
            events,
            workload,
            row,
        );
        let per_reg = m.reg_activity.predict(row).max(0.0);
        r * per_reg
    }

    /// Predicted combinational power of one component in mW.
    pub fn predict_comb_component(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> f64 {
        self.predict_comb_component_with(
            component,
            config,
            events,
            workload,
            &mut FeatureScratch::new(),
        )
    }

    /// [`LogicPowerModel::predict_comb_component`] with a reusable feature
    /// scratch.
    pub fn predict_comb_component_with(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        let m = &self.per_component[component.index()];
        let row = scratch.row_mut();
        hw_features_into(component, config, row);
        let stable = m.comb_stable.predict(row).max(0.0);
        let row = scratch.row_mut();
        model_features_into(
            ModelFeatures::HW_EVENTS,
            component,
            config,
            events,
            workload,
            row,
        );
        let variation = m.comb_variation.predict(row).max(0.0);
        stable * variation
    }

    /// Predicted register power of the whole core in mW.
    pub fn predict_register(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> f64 {
        self.predict_register_with(config, events, workload, &mut FeatureScratch::new())
    }

    /// [`LogicPowerModel::predict_register`] with a reusable feature scratch.
    pub fn predict_register_with(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        Component::ALL
            .iter()
            .map(|&c| self.predict_register_component_with(c, config, events, workload, scratch))
            .sum()
    }

    /// Predicted combinational power of the whole core in mW.
    pub fn predict_comb(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> f64 {
        self.predict_comb_with(config, events, workload, &mut FeatureScratch::new())
    }

    /// [`LogicPowerModel::predict_comb`] with a reusable feature scratch.
    pub fn predict_comb_with(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        Component::ALL
            .iter()
            .map(|&c| self.predict_comb_component_with(c, config, events, workload, scratch))
            .sum()
    }

    /// Accumulates whole-core register power into `reg_acc` and combinational
    /// power into `comb_acc` (`reg_acc[i] += P_reg(points[i])`, likewise for
    /// comb), scoring forest-major: per component, one shared `HW_EVENTS`
    /// feature matrix feeds the activity ensemble and then the variation
    /// ensemble over the entire batch, keeping each ensemble's nodes
    /// cache-resident.  Bit-identical to [`LogicPowerModel::predict_register_with`]
    /// and [`LogicPowerModel::predict_comb_with`] per point.
    pub(crate) fn predict_batch_into(
        &self,
        points: &[PredictInput<'_>],
        scratch: &mut FeatureScratch,
        reg_acc: &mut [f64],
        comb_acc: &mut [f64],
    ) {
        debug_assert_eq!(points.len(), reg_acc.len());
        debug_assert_eq!(points.len(), comb_acc.len());
        if points.is_empty() {
            return;
        }
        let mut ensemble = Vec::with_capacity(points.len());
        for &component in Component::ALL.iter() {
            let m = &self.per_component[component.index()];
            let matrix = batch_feature_matrix(ModelFeatures::HW_EVENTS, component, points);
            m.reg_activity.forest().predict_into(&matrix, &mut ensemble);
            for (i, p) in points.iter().enumerate() {
                let row = scratch.row_mut();
                hw_features_into(component, p.config, row);
                let r = m.reg_hardware.predict(row).max(1.0);
                reg_acc[i] += r * ensemble[i].max(0.0);
            }
            m.comb_variation
                .forest()
                .predict_into(&matrix, &mut ensemble);
            for (i, p) in points.iter().enumerate() {
                let row = scratch.row_mut();
                hw_features_into(component, p.config, row);
                let stable = m.comb_stable.predict(row).max(0.0);
                comb_acc[i] += stable * ensemble[i].max(0.0);
            }
        }
    }
}

impl Codec for ComponentLogicModel {
    fn encode(&self, w: &mut Writer) {
        w.begin("logic-component");
        self.reg_hardware.encode(w);
        self.reg_activity.encode(w);
        self.comb_stable.encode(w);
        self.comb_variation.encode(w);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("logic-component")?;
        let reg_hardware = RidgeRegression::decode(r)?;
        let reg_activity = GradientBoosting::decode(r)?;
        let comb_stable = RidgeRegression::decode(r)?;
        let comb_variation = GradientBoosting::decode(r)?;
        r.end()?;
        Ok(Self {
            reg_hardware,
            reg_activity,
            comb_stable,
            comb_variation,
        })
    }
}

impl Codec for LogicPowerModel {
    fn encode(&self, w: &mut Writer) {
        w.begin("logic");
        w.begin_list("components", self.per_component.len());
        for component in &self.per_component {
            component.encode(w);
        }
        w.end();
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("logic")?;
        let len = r.begin_list("components")?;
        if len != Component::ALL.len() {
            return Err(CodecError::new(
                r.line(),
                format!(
                    "logic model has {len} components, expected {}",
                    Component::ALL.len()
                ),
            ));
        }
        let mut per_component = Vec::with_capacity(len);
        for _ in 0..len {
            per_component.push(ComponentLogicModel::decode(r)?);
        }
        r.end()?;
        r.end()?;
        Ok(Self { per_component })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use autopower_config::boom_configs;
    use autopower_ml::metrics;

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn logic_power_prediction_tracks_golden_power() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let model = LogicPowerModel::train(&c, &train).unwrap();
        let mut truths = Vec::new();
        let mut preds = Vec::new();
        for run in c.test_runs(&train) {
            truths.push(run.golden.total.logic());
            preds.push(
                model.predict_register(&run.config, &run.sim.events, run.workload)
                    + model.predict_comb(&run.config, &run.sim.events, run.workload),
            );
        }
        let mape = metrics::mape(&truths, &preds);
        assert!(mape < 0.35, "logic power MAPE {mape}");
    }

    #[test]
    fn in_sample_combinational_stable_times_variation_recovers_power() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let model = LogicPowerModel::train(&c, &train).unwrap();
        for run in c.training_runs(&train) {
            let truth = run.golden.total.combinational;
            let pred = model.predict_comb(&run.config, &run.sim.events, run.workload);
            assert!(((pred - truth) / truth).abs() < 0.2, "{pred} vs {truth}");
        }
    }

    #[test]
    fn predictions_are_non_negative() {
        let c = corpus();
        let model = LogicPowerModel::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        for run in c.runs() {
            for comp in Component::ALL {
                assert!(
                    model.predict_register_component(
                        comp,
                        &run.config,
                        &run.sim.events,
                        run.workload
                    ) >= 0.0
                );
                assert!(
                    model.predict_comb_component(comp, &run.config, &run.sim.events, run.workload)
                        >= 0.0
                );
            }
        }
    }

    #[test]
    fn training_without_configs_fails() {
        let c = corpus();
        assert!(LogicPowerModel::train(&c, &[]).is_err());
    }
}
