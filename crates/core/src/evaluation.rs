//! Accuracy evaluation helpers: the MAPE / R² / Pearson-R summaries the paper reports.

use crate::dataset::RunData;
use crate::error::AutoPowerError;
use autopower_config::{ConfigId, Workload};
use autopower_ml::metrics;
use serde::Serialize;

/// One (truth, prediction) pair with its provenance, used for scatter plots (Figs. 4/5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PredictionPair {
    /// The evaluated configuration.
    pub config: ConfigId,
    /// The executed workload.
    pub workload: Workload,
    /// Golden power in mW.
    pub truth: f64,
    /// Predicted power in mW.
    pub prediction: f64,
}

/// Accuracy summary over a set of prediction pairs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AccuracySummary {
    /// Mean absolute percentage error (fraction, not percent).
    pub mape: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Pearson correlation coefficient R.
    pub pearson: f64,
    /// The underlying pairs (one per test run).
    pub pairs: Vec<PredictionPair>,
}

impl AccuracySummary {
    /// Builds a summary from pairs, failing on empty input.
    ///
    /// A test split filtered down to nothing (e.g. every configuration ended
    /// up in the training set) is a caller mistake that deserves an error
    /// message, not a panic deep inside metric code.
    ///
    /// # Errors
    ///
    /// Returns [`AutoPowerError::EmptyEvaluation`] if `pairs` is empty.
    pub fn try_from_pairs(pairs: Vec<PredictionPair>) -> Result<Self, AutoPowerError> {
        if pairs.is_empty() {
            return Err(AutoPowerError::EmptyEvaluation);
        }
        let truth: Vec<f64> = pairs.iter().map(|p| p.truth).collect();
        let pred: Vec<f64> = pairs.iter().map(|p| p.prediction).collect();
        Ok(Self {
            mape: metrics::mape(&truth, &pred),
            r_squared: metrics::r_squared(&truth, &pred),
            pearson: metrics::pearson(&truth, &pred),
            pairs,
        })
    }

    /// Builds a summary from pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty; use [`AccuracySummary::try_from_pairs`] to
    /// handle that case gracefully.
    pub fn from_pairs(pairs: Vec<PredictionPair>) -> Self {
        Self::try_from_pairs(pairs).expect("need at least one prediction pair")
    }

    /// MAPE in percent (the unit the paper prints).
    pub fn mape_percent(&self) -> f64 {
        self.mape * 100.0
    }
}

/// Evaluates a total-power predictor over a set of runs against the golden totals,
/// failing on an empty run set.
///
/// # Errors
///
/// Returns [`AutoPowerError::EmptyEvaluation`] if `runs` is empty.
pub fn try_evaluate_totals<F>(
    runs: &[&RunData],
    mut predict: F,
) -> Result<AccuracySummary, AutoPowerError>
where
    F: FnMut(&RunData) -> f64,
{
    let pairs: Vec<PredictionPair> = runs
        .iter()
        .map(|run| PredictionPair {
            config: run.config.id,
            workload: run.workload,
            truth: run.golden.total_mw(),
            prediction: predict(run),
        })
        .collect();
    AccuracySummary::try_from_pairs(pairs)
}

/// Evaluates a total-power predictor over a set of runs against the golden totals.
///
/// # Panics
///
/// Panics if `runs` is empty; use [`try_evaluate_totals`] to handle that case
/// gracefully.
pub fn evaluate_totals<F>(runs: &[&RunData], predict: F) -> AccuracySummary
where
    F: FnMut(&RunData) -> f64,
{
    try_evaluate_totals(runs, predict).expect("need at least one prediction pair")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(truth: f64, prediction: f64) -> PredictionPair {
        PredictionPair {
            config: ConfigId::new(2),
            workload: Workload::Qsort,
            truth,
            prediction,
        }
    }

    #[test]
    fn summary_metrics_match_direct_computation() {
        let s = AccuracySummary::from_pairs(vec![pair(100.0, 110.0), pair(200.0, 190.0)]);
        assert!((s.mape - 0.075).abs() < 1e-12);
        assert!((s.mape_percent() - 7.5).abs() < 1e-12);
        assert!(s.pearson > 0.99);
    }

    #[test]
    fn perfect_predictions_summarise_perfectly() {
        let s = AccuracySummary::from_pairs(vec![
            pair(50.0, 50.0),
            pair(75.0, 75.0),
            pair(100.0, 100.0),
        ]);
        assert_eq!(s.mape, 0.0);
        assert!((s.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one prediction pair")]
    fn empty_pairs_panic() {
        let _ = AccuracySummary::from_pairs(Vec::new());
    }

    #[test]
    fn try_from_pairs_reports_empty_input_as_an_error() {
        use crate::error::AutoPowerError;
        assert!(matches!(
            AccuracySummary::try_from_pairs(Vec::new()),
            Err(AutoPowerError::EmptyEvaluation)
        ));
        assert!(matches!(
            try_evaluate_totals(&[], |_| 0.0),
            Err(AutoPowerError::EmptyEvaluation)
        ));
        let ok = AccuracySummary::try_from_pairs(vec![pair(10.0, 11.0)]).unwrap();
        assert_eq!(ok, AccuracySummary::from_pairs(vec![pair(10.0, 11.0)]));
    }
}
