//! Bounded-memory streaming sweeps: fold a million-configuration design-space
//! walk into a fixed-size aggregate, checkpoint it mid-flight, and resume.
//!
//! [`SweepEngine::run`](crate::SweepEngine::run) materializes every
//! [`SweepPoint`] and sorts at the end — fine for `--count N` samples,
//! impossible for the full enumerable [`DesignSpace`](autopower_config::DesignSpace)
//! (hundreds of thousands to millions of points).  This module keeps the exact
//! same scoring path (`for_each_point`, byte-for-byte the same work and order)
//! but replaces retention with **streaming aggregation**:
//!
//! * [`SweepAggregator`] folds each configuration's workloads through the same
//!   [`config_summary`] fold the materialized path uses, then keeps only
//!   * a top-k table by energy per instruction that replicates
//!     [`rank_by_efficiency`](crate::rank_by_efficiency)'s stable sort bit for bit (same canonicalised
//!     key, ties broken by arrival order),
//!   * one deterministic [`QuantileSketch`] per power series (the four groups
//!     plus the total) with exact min/max, and
//!   * the running power-vs-IPC-vs-area [`ParetoFrontier`].
//!
//!   Memory is O(top-k + sketches + frontier), independent of how many
//!   configurations stream through.
//! * The aggregator state and a [`ChunkCursor`] serialize through the bit-exact
//!   text [`Codec`] (the PR 4 model-persistence substrate), giving an on-disk
//!   [`SweepCheckpoint`].  A sweep interrupted at a chunk boundary and resumed
//!   from its checkpoint reaches state **bit-identical** to an uninterrupted
//!   run, so the final report reproduces byte for byte.
//!
//! Determinism is load-bearing everywhere: sketch compaction is seedless and
//! counter-driven (not randomized as in textbook KLL), so the same point
//! stream always produces the same sketch — resumed or not, at any thread
//! count.  While a sketch has never compacted (the common case below ~10k
//! points per series at the default capacity) its quantiles are *exact* and
//! match the materialized report's nearest-rank table.

use crate::error::AutoPowerError;
use crate::serialize::{decode_config, encode_config};
use crate::surrogate::AuditAccumulator;
use crate::sweep::{config_summary, efficiency_sort_key, ConfigSummary, SweepEngine, SweepPoint};
use autopower_config::{CpuConfig, HwParam, Workload};
use autopower_powersim::PowerGroups;
use serde::codec::{Codec, CodecError, Reader, Writer};
use std::cmp::Ordering;
use std::path::{Path, PathBuf};

/// Version tag of the checkpoint format; bumped on layout changes so a stale
/// file fails loudly instead of deserializing garbage.
pub const CHECKPOINT_FORMAT_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Quantile sketches
// ---------------------------------------------------------------------------

/// A deterministic multi-level quantile sketch (KLL-style, seedless).
///
/// Values enter level 0 with weight 1.  When a level fills to its capacity it
/// is sorted and every other element is promoted to the next level with twice
/// the weight; the starting parity alternates per level via a compaction
/// counter, so long streams are not systematically biased toward either
/// neighbour.  All state transitions are pure functions of the input sequence
/// — no RNG — which is what lets a resumed sweep rebuild the exact sketch.
///
/// Until the first compaction the sketch holds every value and
/// [`QuantileSketch::quantile`] is **exact** (identical to nearest-rank over
/// the sorted series).  After compactions it is a bounded-error summary with
/// at most `levels * level_capacity` retained values.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    level_capacity: usize,
    levels: Vec<Vec<f64>>,
    compactions: Vec<u64>,
    count: u64,
}

impl QuantileSketch {
    /// Creates an empty sketch whose levels compact at `level_capacity`
    /// retained values.
    ///
    /// # Panics
    ///
    /// Panics if `level_capacity < 8` (the error bound would be useless).
    pub fn new(level_capacity: usize) -> Self {
        assert!(level_capacity >= 8, "sketch level capacity must be >= 8");
        Self {
            level_capacity,
            levels: vec![Vec::new()],
            compactions: vec![0],
            count: 0,
        }
    }

    /// Folds one value into the sketch.
    pub fn insert(&mut self, value: f64) {
        self.count += 1;
        self.levels[0].push(value);
        if self.levels[0].len() >= self.level_capacity {
            self.compact(0);
        }
    }

    fn compact(&mut self, level: usize) {
        if self.levels.len() == level + 1 {
            self.levels.push(Vec::new());
            self.compactions.push(0);
        }
        let parity = (self.compactions[level] % 2) as usize;
        self.compactions[level] += 1;
        let mut buf = std::mem::take(&mut self.levels[level]);
        buf.sort_by(f64::total_cmp);
        self.levels[level + 1].extend(buf.iter().copied().skip(parity).step_by(2));
        if self.levels[level + 1].len() >= self.level_capacity {
            self.compact(level + 1);
        }
    }

    /// Number of values folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of values currently retained across all levels (the memory
    /// bound).
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Whether the sketch still holds every inserted value, making
    /// [`QuantileSketch::quantile`] exact.
    pub fn is_exact(&self) -> bool {
        self.compactions.iter().all(|&c| c == 0)
    }

    /// The estimated `q`-quantile (`q` clamped to `[0, 1]`), or `None` while
    /// empty.
    ///
    /// Uses the same nearest-rank rule as the materialized sweep report —
    /// `round((n - 1) * q)` over the weighted sorted values — so an
    /// uncompacted sketch reproduces that table bit for bit.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mut weighted: Vec<(f64, u64)> = Vec::with_capacity(self.retained());
        for (level, values) in self.levels.iter().enumerate() {
            let weight = 1u64 << level;
            weighted.extend(values.iter().map(|&v| (v, weight)));
        }
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = weighted.iter().map(|&(_, w)| w).sum();
        let target = ((total - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut cumulative = 0u64;
        for (value, weight) in weighted {
            cumulative += weight;
            if cumulative > target {
                return Some(value);
            }
        }
        unreachable!("target rank is below the total weight by construction")
    }
}

impl Codec for QuantileSketch {
    fn encode(&self, w: &mut Writer) {
        w.begin("sketch");
        w.u64("level_capacity", self.level_capacity as u64);
        w.u64("count", self.count);
        w.begin_list("compactions", self.compactions.len());
        for &c in &self.compactions {
            w.u64("n", c);
        }
        w.end();
        w.begin_list("levels", self.levels.len());
        for level in &self.levels {
            w.f64_seq("values", level);
        }
        w.end();
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("sketch")?;
        let capacity_line = r.line();
        let level_capacity = r.u64("level_capacity")? as usize;
        if level_capacity < 8 {
            return Err(CodecError::new(
                capacity_line,
                format!("sketch level capacity {level_capacity} below the minimum of 8"),
            ));
        }
        let count = r.u64("count")?;
        let n_compactions = r.begin_list("compactions")?;
        let mut compactions = Vec::with_capacity(n_compactions);
        for _ in 0..n_compactions {
            compactions.push(r.u64("n")?);
        }
        r.end()?;
        let shape_line = r.line();
        let n_levels = r.begin_list("levels")?;
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            levels.push(r.f64_seq("values")?);
        }
        r.end()?;
        r.end()?;
        if levels.is_empty() || levels.len() != compactions.len() {
            return Err(CodecError::new(
                shape_line,
                format!(
                    "sketch has {} level(s) but {} compaction counter(s)",
                    levels.len(),
                    compactions.len()
                ),
            ));
        }
        Ok(Self {
            level_capacity,
            levels,
            compactions,
            count,
        })
    }
}

/// A [`QuantileSketch`] plus exact running min/max, tracking one power series
/// of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSketch {
    min: f64,
    max: f64,
    sketch: QuantileSketch,
}

impl SeriesSketch {
    fn new(level_capacity: usize) -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sketch: QuantileSketch::new(level_capacity),
        }
    }

    fn insert(&mut self, value: f64) {
        // total_cmp keeps the extrema deterministic even for NaN inputs.
        if value.total_cmp(&self.min) == Ordering::Less {
            self.min = value;
        }
        if value.total_cmp(&self.max) == Ordering::Greater {
            self.max = value;
        }
        self.sketch.insert(value);
    }

    /// Exact minimum of the series so far, `None` while empty.
    pub fn min(&self) -> Option<f64> {
        (self.sketch.count() > 0).then_some(self.min)
    }

    /// Exact maximum of the series so far, `None` while empty.
    pub fn max(&self) -> Option<f64> {
        (self.sketch.count() > 0).then_some(self.max)
    }

    /// The estimated `q`-quantile (see [`QuantileSketch::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.sketch.quantile(q)
    }

    /// The underlying sketch.
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }
}

impl Codec for SeriesSketch {
    fn encode(&self, w: &mut Writer) {
        w.begin("series");
        w.f64("min", self.min);
        w.f64("max", self.max);
        self.sketch.encode(w);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("series")?;
        let min = r.f64("min")?;
        let max = r.f64("max")?;
        let sketch = QuantileSketch::decode(r)?;
        r.end()?;
        Ok(Self { min, max, sketch })
    }
}

/// The five power series a streaming sweep tracks: the four power groups plus
/// the total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerSeries {
    /// Clock-tree power.
    Clock,
    /// SRAM macro power.
    Sram,
    /// Register (sequential logic) power.
    Register,
    /// Combinational logic power.
    Combinational,
    /// Total power.
    Total,
}

impl PowerSeries {
    /// All series, group rows first, in the sweep report's row order.
    pub const ALL: [PowerSeries; 5] = [
        PowerSeries::Clock,
        PowerSeries::Sram,
        PowerSeries::Register,
        PowerSeries::Combinational,
        PowerSeries::Total,
    ];

    /// Stable row label (matches the materialized sweep report).
    pub fn label(self) -> &'static str {
        match self {
            PowerSeries::Clock => "clock",
            PowerSeries::Sram => "sram",
            PowerSeries::Register => "register",
            PowerSeries::Combinational => "combinational",
            PowerSeries::Total => "total",
        }
    }

    fn index(self) -> usize {
        match self {
            PowerSeries::Clock => 0,
            PowerSeries::Sram => 1,
            PowerSeries::Register => 2,
            PowerSeries::Combinational => 3,
            PowerSeries::Total => 4,
        }
    }
}

// ---------------------------------------------------------------------------
// Area proxy + Pareto frontier
// ---------------------------------------------------------------------------

/// A deterministic area proxy for a configuration, in kilo-flop-bit
/// equivalents (kFBE).
///
/// The sweep has no physical design data for generated configurations, so the
/// Pareto frontier's third axis is a fixed structural estimate: storage
/// structures contribute their approximate flop-bit count (SRAM bits
/// discounted 20:1 for macro density), datapath width products stand in for
/// combinational area.  The weights are arbitrary but **frozen** — the proxy
/// is a pure function of the 14 hardware parameters, so frontier membership
/// is reproducible across runs, resumes and refactors.
pub fn area_proxy(config: &CpuConfig) -> f64 {
    let v = |p: HwParam| f64::from(config.value(p));
    // Architectural state: each entry carries its payload width in flop bits.
    let flop_bits = v(HwParam::RobEntry) * 70.0
        + (v(HwParam::IntPhyRegister) + v(HwParam::FpPhyRegister)) * 64.0
        + v(HwParam::LdqStqEntry) * 2.0 * 80.0
        + v(HwParam::FetchBufferEntry) * 140.0
        + v(HwParam::BranchCount) * 512.0;
    // SRAM structures: bits at 1/20 the area cost of a flop bit.
    let sram_bits = v(HwParam::CacheWay) * 2.0 * 4096.0 * 8.0
        + v(HwParam::DtlbEntry) * 2.0 * 60.0
        + v(HwParam::MshrEntry) * 100.0;
    // Datapath: decoder/issue crossbars grow with width products.
    let datapath = v(HwParam::FetchWidth) * 400.0
        + v(HwParam::DecodeWidth) * v(HwParam::IntIssueWidth) * 1500.0
        + v(HwParam::DecodeWidth) * v(HwParam::MemFpIssueWidth) * 800.0;
    (flop_bits + sram_bits / 20.0 + datapath) / 1000.0
}

/// One non-dominated configuration on the frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoEntry {
    /// The configuration's per-workload summary.
    pub summary: ConfigSummary,
    /// Its [`area_proxy`] value, in kFBE.
    pub area: f64,
}

/// The running power-vs-IPC-vs-area non-dominated set of a sweep.
///
/// Objectives: minimize mean total power, maximize mean IPC, minimize the
/// [`area_proxy`].  Weak dominance — a candidate no better anywhere and tied
/// everywhere else is dominated — so exact ties keep the **first-seen**
/// configuration, making the frontier deterministic in stream order.
/// Configurations with a non-finite objective are skipped.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParetoFrontier {
    entries: Vec<ParetoEntry>,
}

/// Whether objective vector `a` weakly dominates `b`.
fn dominates(a: (f64, f64, f64), b: (f64, f64, f64)) -> bool {
    a.0 <= b.0 && a.1 >= b.1 && a.2 <= b.2
}

impl ParetoFrontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a configuration to the frontier; returns whether it was
    /// admitted (and any newly dominated incumbents evicted).
    pub fn offer(&mut self, summary: ConfigSummary) -> bool {
        let area = area_proxy(&summary.config);
        let candidate = (summary.mean_total, summary.mean_ipc, area);
        if !(candidate.0.is_finite() && candidate.1.is_finite() && candidate.2.is_finite()) {
            return false;
        }
        let objectives = |e: &ParetoEntry| (e.summary.mean_total, e.summary.mean_ipc, e.area);
        if self
            .entries
            .iter()
            .any(|e| dominates(objectives(e), candidate))
        {
            return false;
        }
        self.entries
            .retain(|e| !dominates(candidate, objectives(e)));
        self.entries.push(ParetoEntry { summary, area });
        true
    }

    /// The frontier in admission order.
    pub fn entries(&self) -> &[ParetoEntry] {
        &self.entries
    }

    /// The frontier sorted by mean total power ascending (ties by
    /// configuration id), the order the `pareto` report prints.
    pub fn sorted_by_power(&self) -> Vec<&ParetoEntry> {
        let mut sorted: Vec<&ParetoEntry> = self.entries.iter().collect();
        sorted.sort_by(|a, b| {
            a.summary
                .mean_total
                .total_cmp(&b.summary.mean_total)
                .then_with(|| {
                    a.summary
                        .config
                        .id
                        .index()
                        .cmp(&b.summary.config.id.index())
                })
        });
        sorted
    }

    /// Number of non-dominated configurations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The streaming aggregator
// ---------------------------------------------------------------------------

/// Feasibility constraints applied to candidates **before** they are offered
/// to the Pareto frontier.
///
/// Filtering happens pre-fold, so the reported frontier is by construction
/// the Pareto frontier *of the feasible set*: every retained entry satisfies
/// the bounds, and infeasible candidates never enter the dominance tests or
/// inflate the retained state.  (For these bound directions — a power cap and
/// an IPC floor — any dominator of a feasible point is itself feasible, so
/// the result also coincides with filtering afterwards; pre-filtering keeps
/// the memory bound and makes the scoping explicit rather than accidental.)
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ParetoConstraints {
    /// Upper bound on mean predicted total power in mW, inclusive.
    pub max_power: Option<f64>,
    /// Lower bound on mean simulated IPC, inclusive.
    pub min_ipc: Option<f64>,
}

impl ParetoConstraints {
    /// Whether a summary satisfies every present constraint.
    pub fn admits(&self, summary: &ConfigSummary) -> bool {
        self.max_power.is_none_or(|p| summary.mean_total <= p)
            && self.min_ipc.is_none_or(|i| summary.mean_ipc >= i)
    }

    /// Whether any constraint is present.
    pub fn is_constrained(&self) -> bool {
        self.max_power.is_some() || self.min_ipc.is_some()
    }

    /// Validates the bounds: a present `max_power` must be finite and
    /// positive, a present `min_ipc` finite and non-negative (anything else —
    /// NaN, a non-positive power cap, a negative or infinite IPC floor —
    /// excludes every physical configuration or nothing definable, and is
    /// refused up front).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first offending bound;
    /// the CLI reports it at parse time, library callers wrap it in
    /// [`AutoPowerError::Surrogate`]-style input errors of their own.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(p) = self.max_power {
            if !p.is_finite() || p <= 0.0 {
                return Err(format!(
                    "--max-power must be a finite positive power bound in mW, got {p}"
                ));
            }
        }
        if let Some(i) = self.min_ipc {
            if !i.is_finite() || i < 0.0 {
                return Err(format!(
                    "--min-ipc must be a finite non-negative IPC bound, got {i}"
                ));
            }
        }
        Ok(())
    }
}

/// Aggregation knobs of a streaming sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSpec {
    /// Configurations retained in the energy-efficiency top-k table.
    pub top_k: usize,
    /// Per-level capacity of each power-series [`QuantileSketch`].
    pub sketch_level_capacity: usize,
}

impl Default for StreamSpec {
    fn default() -> Self {
        Self {
            top_k: 10,
            sketch_level_capacity: 1024,
        }
    }
}

/// A retained top-k summary plus its arrival sequence number (the stable-sort
/// tie-breaker).
#[derive(Debug, Clone, PartialEq)]
struct TopEntry {
    seq: u64,
    summary: ConfigSummary,
}

/// Bounded-memory fold of a configuration-major sweep point stream.
///
/// Feed it every [`SweepPoint`] of a sweep in emission order (workloads of one
/// configuration contiguous, the order [`SweepEngine::for_each_point`]
/// guarantees); it folds each completed configuration through the shared
/// [`config_summary`] and retains only the top-k table, the per-series
/// sketches and the Pareto frontier.  Equality with the materialized path is
/// bit-exact:
///
/// * summaries come from the *same* fold as [`summarize`](crate::summarize),
/// * the top-k table equals `rank_by_efficiency(&summaries)[..k]` — same
///   canonicalised key, and ties keep the earlier configuration exactly like
///   a stable sort of the arrival order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAggregator {
    per_config: usize,
    top_k: usize,
    partial: Vec<SweepPoint>,
    configs: u64,
    groups_resolved: bool,
    series: Vec<SeriesSketch>,
    top: Vec<TopEntry>,
    pareto: ParetoFrontier,
    constraints: ParetoConstraints,
}

impl SweepAggregator {
    /// Creates an empty aggregator for sweeps scoring `per_config` workloads
    /// per configuration.
    ///
    /// # Panics
    ///
    /// Panics if `per_config` or `spec.top_k` is zero.
    pub fn new(per_config: usize, spec: &StreamSpec) -> Self {
        assert!(
            per_config > 0,
            "need at least one workload per configuration"
        );
        assert!(spec.top_k > 0, "top-k retention needs k >= 1");
        Self {
            per_config,
            top_k: spec.top_k,
            partial: Vec::with_capacity(per_config),
            configs: 0,
            groups_resolved: true,
            series: PowerSeries::ALL
                .iter()
                .map(|_| SeriesSketch::new(spec.sketch_level_capacity))
                .collect(),
            top: Vec::with_capacity(spec.top_k + 1),
            pareto: ParetoFrontier::new(),
            constraints: ParetoConstraints::default(),
        }
    }

    /// Same aggregator with feasibility constraints applied to every summary
    /// before it is offered to the Pareto frontier.  The top-k table and the
    /// power-series sketches still fold **all** summaries — the constraints
    /// scope the frontier, not the sweep statistics.
    ///
    /// # Panics
    ///
    /// Panics if the constraints fail [`ParetoConstraints::validate`]
    /// (callers validate user input before building an aggregator).
    pub fn with_pareto_constraints(mut self, constraints: ParetoConstraints) -> Self {
        if let Err(message) = constraints.validate() {
            panic!("invalid pareto constraints: {message}");
        }
        self.constraints = constraints;
        self
    }

    /// The feasibility constraints scoping the Pareto frontier.
    pub fn pareto_constraints(&self) -> &ParetoConstraints {
        &self.constraints
    }

    /// Folds one sweep point.  Workloads of a configuration must arrive
    /// contiguously; the configuration is folded when its last workload
    /// arrives.
    pub fn push(&mut self, point: SweepPoint) {
        if let Some(first) = self.partial.first() {
            assert_eq!(
                first.config.id, point.config.id,
                "points of one configuration must arrive contiguously"
            );
        }
        self.partial.push(point);
        if self.partial.len() == self.per_config {
            let summary = config_summary(&self.partial);
            self.partial.clear();
            self.push_summary(summary);
        }
    }

    /// Folds one already-summarized configuration.
    pub fn push_summary(&mut self, summary: ConfigSummary) {
        let seq = self.configs;
        self.configs += 1;
        match summary.mean_groups {
            Some(g) => {
                self.series[PowerSeries::Clock.index()].insert(g.clock);
                self.series[PowerSeries::Sram.index()].insert(g.sram);
                self.series[PowerSeries::Register.index()].insert(g.register);
                self.series[PowerSeries::Combinational.index()].insert(g.combinational);
            }
            None => self.groups_resolved = false,
        }
        self.series[PowerSeries::Total.index()].insert(summary.mean_total);

        // Insert-sorted by (canonical efficiency key, arrival order): the
        // first k entries of this order are exactly what a stable sort of all
        // summaries would put first, so the table matches
        // rank_by_efficiency(...)[..k] bit for bit.
        let key = efficiency_sort_key(summary.energy_per_instruction);
        let pos = self.top.partition_point(|e| {
            match efficiency_sort_key(e.summary.energy_per_instruction).total_cmp(&key) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => e.seq < seq,
            }
        });
        if pos < self.top_k {
            self.top.insert(pos, TopEntry { seq, summary });
            self.top.truncate(self.top_k);
        }

        // Constraint filtering happens before the frontier fold: an
        // infeasible summary must not get the chance to dominate and evict a
        // feasible one.
        if self.constraints.admits(&summary) {
            self.pareto.offer(summary);
        }
    }

    /// Number of whole configurations folded so far.
    pub fn configs_folded(&self) -> u64 {
        self.configs
    }

    /// Workloads of the configuration currently mid-fold (zero exactly at
    /// configuration boundaries — the only places a checkpoint may be taken).
    pub fn pending_points(&self) -> usize {
        self.partial.len()
    }

    /// Workloads per configuration this aggregator folds.
    pub fn per_config(&self) -> usize {
        self.per_config
    }

    /// The top-k retention size.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Whether every folded configuration resolved per-group power (vacuously
    /// true before the first fold), mirroring
    /// [`ConfigSummary::mean_groups`]`.is_some()` of the materialized path.
    pub fn resolves_groups(&self) -> bool {
        self.groups_resolved
    }

    /// The retained best-efficiency summaries, best first — bit-identical to
    /// `rank_by_efficiency(&all_summaries)` truncated to k.
    pub fn top(&self) -> Vec<&ConfigSummary> {
        self.top.iter().map(|e| &e.summary).collect()
    }

    /// The sketch tracking one power series.  Group series are only
    /// meaningful while [`SweepAggregator::resolves_groups`] holds.
    pub fn series(&self, series: PowerSeries) -> &SeriesSketch {
        &self.series[series.index()]
    }

    /// The running Pareto frontier.
    pub fn pareto(&self) -> &ParetoFrontier {
        &self.pareto
    }

    /// Total values currently retained across all bounded structures (the
    /// aggregator's memory footprint in retained values, reported by the
    /// streaming bench).
    pub fn retained_state(&self) -> usize {
        self.partial.len()
            + self.top.len()
            + self.pareto.len()
            + self
                .series
                .iter()
                .map(|s| s.sketch().retained())
                .sum::<usize>()
    }
}

fn encode_summary(w: &mut Writer, summary: &ConfigSummary) {
    w.begin("summary");
    encode_config(w, &summary.config);
    match summary.mean_groups {
        Some(g) => {
            w.bool("has_groups", true);
            w.f64("clock", g.clock);
            w.f64("sram", g.sram);
            w.f64("register", g.register);
            w.f64("combinational", g.combinational);
        }
        None => w.bool("has_groups", false),
    }
    w.f64("mean_total", summary.mean_total);
    w.f64("mean_ipc", summary.mean_ipc);
    w.f64("energy_per_instruction", summary.energy_per_instruction);
    w.end();
}

fn decode_summary(r: &mut Reader<'_>) -> Result<ConfigSummary, CodecError> {
    r.begin("summary")?;
    let config = decode_config(r)?;
    let mean_groups = if r.bool("has_groups")? {
        Some(PowerGroups {
            clock: r.f64("clock")?,
            sram: r.f64("sram")?,
            register: r.f64("register")?,
            combinational: r.f64("combinational")?,
        })
    } else {
        None
    };
    let mean_total = r.f64("mean_total")?;
    let mean_ipc = r.f64("mean_ipc")?;
    let energy_per_instruction = r.f64("energy_per_instruction")?;
    r.end()?;
    Ok(ConfigSummary {
        config,
        mean_total,
        mean_groups,
        mean_ipc,
        energy_per_instruction,
    })
}

impl Codec for SweepAggregator {
    fn encode(&self, w: &mut Writer) {
        w.begin("aggregator");
        w.u64("per_config", self.per_config as u64);
        w.u64("top_k", self.top_k as u64);
        // The partial buffer is intentionally not serialized: checkpoints are
        // only valid at configuration boundaries.  Recording the count makes
        // a mid-configuration encode fail loudly at decode time instead of
        // silently dropping points.
        w.u64("pending_points", self.partial.len() as u64);
        w.u64("configs", self.configs);
        w.bool("groups_resolved", self.groups_resolved);
        w.begin_list("series", self.series.len());
        for series in &self.series {
            series.encode(w);
        }
        w.end();
        w.begin_list("top", self.top.len());
        for entry in &self.top {
            w.begin("entry");
            w.u64("seq", entry.seq);
            encode_summary(w, &entry.summary);
            w.end();
        }
        w.end();
        w.begin_list("pareto", self.pareto.entries.len());
        for entry in &self.pareto.entries {
            w.begin("entry");
            w.f64("area", entry.area);
            encode_summary(w, &entry.summary);
            w.end();
        }
        w.end();
        // Optional trailing section: written only when constraints are
        // present, so unconstrained aggregators encode byte-identically to
        // the pre-constraint format (and old checkpoints decode).
        if self.constraints.is_constrained() {
            w.begin("constraints");
            match self.constraints.max_power {
                Some(p) => {
                    w.bool("has_max_power", true);
                    w.f64("max_power", p);
                }
                None => w.bool("has_max_power", false),
            }
            match self.constraints.min_ipc {
                Some(i) => {
                    w.bool("has_min_ipc", true);
                    w.f64("min_ipc", i);
                }
                None => w.bool("has_min_ipc", false),
            }
            w.end();
        }
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("aggregator")?;
        let arity_line = r.line();
        let per_config = r.u64("per_config")? as usize;
        let top_k = r.u64("top_k")? as usize;
        if per_config == 0 || top_k == 0 {
            return Err(CodecError::new(
                arity_line,
                "aggregator arity fields must be positive",
            ));
        }
        let pending_line = r.line();
        let pending = r.u64("pending_points")?;
        if pending != 0 {
            return Err(CodecError::new(
                pending_line,
                format!(
                    "aggregator was encoded mid-configuration ({pending} pending point(s)); \
                     checkpoints are only valid at configuration boundaries"
                ),
            ));
        }
        let configs = r.u64("configs")?;
        let groups_resolved = r.bool("groups_resolved")?;
        let series_line = r.line();
        let n_series = r.begin_list("series")?;
        if n_series != PowerSeries::ALL.len() {
            return Err(CodecError::new(
                series_line,
                format!(
                    "expected {} power series, found {n_series}",
                    PowerSeries::ALL.len()
                ),
            ));
        }
        let mut series = Vec::with_capacity(n_series);
        for _ in 0..n_series {
            series.push(SeriesSketch::decode(r)?);
        }
        r.end()?;
        let top_line = r.line();
        let n_top = r.begin_list("top")?;
        if n_top > top_k {
            return Err(CodecError::new(
                top_line,
                format!("top table holds {n_top} entries but k is {top_k}"),
            ));
        }
        let mut top = Vec::with_capacity(n_top);
        for _ in 0..n_top {
            r.begin("entry")?;
            let seq = r.u64("seq")?;
            let summary = decode_summary(r)?;
            r.end()?;
            top.push(TopEntry { seq, summary });
        }
        r.end()?;
        let n_pareto = r.begin_list("pareto")?;
        let mut entries = Vec::with_capacity(n_pareto);
        for _ in 0..n_pareto {
            r.begin("entry")?;
            let area = r.f64("area")?;
            let summary = decode_summary(r)?;
            r.end()?;
            entries.push(ParetoEntry { summary, area });
        }
        r.end()?;
        let mut constraints = ParetoConstraints::default();
        if r.try_begin("constraints")? {
            if r.bool("has_max_power")? {
                constraints.max_power = Some(r.f64("max_power")?);
            }
            if r.bool("has_min_ipc")? {
                constraints.min_ipc = Some(r.f64("min_ipc")?);
            }
            r.end()?;
        }
        r.end()?;
        Ok(Self {
            per_config,
            top_k,
            partial: Vec::with_capacity(per_config),
            configs,
            groups_resolved,
            series,
            top,
            pareto: ParetoFrontier { entries },
            constraints,
        })
    }
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Position of a streaming sweep in its configuration source: how many
/// configurations have been fully folded (the enumeration/sample offset the
/// next chunk starts at).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkCursor {
    /// Configurations completed so far.
    pub offset: u64,
}

impl Codec for ChunkCursor {
    fn encode(&self, w: &mut Writer) {
        w.begin("cursor");
        w.u64("offset", self.offset);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("cursor")?;
        let offset = r.u64("offset")?;
        r.end()?;
        Ok(Self { offset })
    }
}

/// An on-disk snapshot of a streaming sweep at a chunk boundary: where it was
/// ([`ChunkCursor`]) and everything it had folded ([`SweepAggregator`]),
/// guarded by a fingerprint of the sweep's inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    /// Caller-computed fingerprint of the sweep inputs (space, workloads,
    /// model, settings); resume must refuse a checkpoint whose fingerprint
    /// does not match the sweep being resumed.
    pub fingerprint: u64,
    /// Where the sweep stopped.
    pub cursor: ChunkCursor,
    /// Everything folded so far.
    pub aggregator: SweepAggregator,
    /// Surrogate audit-error accumulation at the checkpoint, `Some` exactly
    /// for surrogate-backed sweeps.  Joins the snapshot so a resumed sweep's
    /// audit table is bit-identical to an uninterrupted run's.
    pub audit: Option<AuditAccumulator>,
}

impl Codec for SweepCheckpoint {
    fn encode(&self, w: &mut Writer) {
        w.begin("sweep-checkpoint");
        w.u64("version", CHECKPOINT_FORMAT_VERSION);
        w.u64("fingerprint", self.fingerprint);
        self.cursor.encode(w);
        self.aggregator.encode(w);
        // Optional trailing section: exact-backend checkpoints encode
        // byte-identically to the pre-surrogate format, and old checkpoints
        // decode with no audit state.
        if let Some(audit) = &self.audit {
            audit.encode(w);
        }
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("sweep-checkpoint")?;
        let version_line = r.line();
        let version = r.u64("version")?;
        if version != CHECKPOINT_FORMAT_VERSION {
            return Err(CodecError::new(
                version_line,
                format!(
                    "unsupported checkpoint version {version} (this build reads version \
                     {CHECKPOINT_FORMAT_VERSION})"
                ),
            ));
        }
        let fingerprint = r.u64("fingerprint")?;
        let cursor = ChunkCursor::decode(r)?;
        let aggregator = SweepAggregator::decode(r)?;
        let audit = if r.try_begin("audit")? {
            Some(AuditAccumulator::decode_fields(r)?)
        } else {
            None
        };
        r.end()?;
        Ok(Self {
            fingerprint,
            cursor,
            aggregator,
            audit,
        })
    }
}

/// Serializes a checkpoint to its text form.
pub fn encode_checkpoint(checkpoint: &SweepCheckpoint) -> String {
    let mut w = Writer::new();
    checkpoint.encode(&mut w);
    w.finish()
}

/// Parses [`encode_checkpoint`] text.
///
/// # Errors
///
/// Returns [`AutoPowerError::Checkpoint`] on a malformed stream or version
/// mismatch.
pub fn decode_checkpoint(text: &str) -> Result<SweepCheckpoint, AutoPowerError> {
    let mut r = Reader::new(text);
    let checkpoint = SweepCheckpoint::decode(&mut r).map_err(checkpoint_err)?;
    r.expect_eof().map_err(checkpoint_err)?;
    Ok(checkpoint)
}

fn checkpoint_err(e: CodecError) -> AutoPowerError {
    AutoPowerError::Checkpoint(e.to_string())
}

/// Atomically writes a checkpoint to `path` (temp file + rename, so an
/// interrupted write can never leave a truncated checkpoint behind).
///
/// # Errors
///
/// Returns [`AutoPowerError::Checkpoint`] if the aggregator is
/// mid-configuration ([`SweepAggregator::pending_points`] non-zero) or the
/// file cannot be written.
pub fn save_checkpoint(
    checkpoint: &SweepCheckpoint,
    path: impl AsRef<Path>,
) -> Result<(), AutoPowerError> {
    save_checkpoint_with(checkpoint, path, |tmp, text| std::fs::write(tmp, text))
}

/// [`save_checkpoint`] with an injectable temp-file writer — the seam the
/// chaos tests use to tear a checkpoint write at a chosen byte offset.  The
/// writer receives the temp path and the full encoded text; the rename into
/// `path` happens only when it returns `Ok`, exactly mirroring a process
/// killed mid-write (torn temp file, untouched main file).
///
/// # Errors
///
/// Returns [`AutoPowerError::Checkpoint`] if the aggregator is
/// mid-configuration ([`SweepAggregator::pending_points`] non-zero), the
/// writer fails, or the rename fails.
pub fn save_checkpoint_with(
    checkpoint: &SweepCheckpoint,
    path: impl AsRef<Path>,
    write: impl FnOnce(&Path, &str) -> std::io::Result<()>,
) -> Result<(), AutoPowerError> {
    let path = path.as_ref();
    if checkpoint.aggregator.pending_points() != 0 {
        return Err(AutoPowerError::Checkpoint(format!(
            "cannot checkpoint mid-configuration ({} pending point(s))",
            checkpoint.aggregator.pending_points()
        )));
    }
    let tmp = sibling_tmp(path);
    write(&tmp, &encode_checkpoint(checkpoint))
        .map_err(|e| AutoPowerError::Checkpoint(format!("writing {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| AutoPowerError::Checkpoint(format!("renaming into {}: {e}", path.display())))
}

/// The temp-file sibling [`save_checkpoint`] stages writes through.
fn sibling_tmp(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

/// Loads a checkpoint written by [`save_checkpoint`].
///
/// # Errors
///
/// Returns [`AutoPowerError::Checkpoint`] if the file cannot be read or does
/// not parse.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<SweepCheckpoint, AutoPowerError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| AutoPowerError::Checkpoint(format!("reading {}: {e}", path.display())))?;
    decode_checkpoint(&text)
}

/// What [`load_checkpoint_salvaged`] had to do when the main checkpoint file
/// was not usable as-is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSalvage {
    /// The file the returned checkpoint was actually read from.
    pub path: PathBuf,
    /// Human-readable account of what was wrong and what was recovered.
    pub reason: String,
}

/// Crash-safe [`load_checkpoint`]: when the main file is torn or missing, or
/// the `.tmp` sibling left behind by a writer killed between write and rename
/// holds a *newer* durable cursor, recover the last durable state instead of
/// failing.  Returns the checkpoint plus `Some(CheckpointSalvage)` whenever
/// anything other than a clean main file was used — callers surface that to
/// the operator.
///
/// `expected_fingerprint` guards salvage: a sibling is only ever adopted when
/// its fingerprint matches (pass `None` to accept any).  A clean main file
/// with a *mismatched* fingerprint is still returned (with no salvage) so
/// callers keep reporting their own, more specific mismatch error.
///
/// The invariant chaos tests pin: for a writer killed at **any** byte offset,
/// this either returns the last durably completed checkpoint or refuses
/// loudly — it never fabricates or silently rewinds state.
///
/// # Errors
///
/// Returns [`AutoPowerError::Checkpoint`] when neither the main file nor a
/// fingerprint-matching sibling holds a complete checkpoint; the message
/// names the main file.
pub fn load_checkpoint_salvaged(
    path: impl AsRef<Path>,
    expected_fingerprint: Option<u64>,
) -> Result<(SweepCheckpoint, Option<CheckpointSalvage>), AutoPowerError> {
    let path = path.as_ref();
    let tmp = sibling_tmp(path);
    let matches = |cp: &SweepCheckpoint| expected_fingerprint.is_none_or(|fp| cp.fingerprint == fp);
    let main = load_checkpoint(path);
    let sibling = load_checkpoint(&tmp);
    match (main, sibling) {
        (Ok(main_cp), Ok(tmp_cp)) => {
            if matches(&tmp_cp) && tmp_cp.cursor.offset > main_cp.cursor.offset {
                // Crash between write and rename: the sibling is the newer
                // durable state.
                let reason = format!(
                    "sibling {} holds a newer durable cursor (offset {}) than {} (offset {}); \
                     the previous run was interrupted between write and rename",
                    tmp.display(),
                    tmp_cp.cursor.offset,
                    path.display(),
                    main_cp.cursor.offset,
                );
                Ok((tmp_cp, Some(CheckpointSalvage { path: tmp, reason })))
            } else if matches(&tmp_cp) && !matches(&main_cp) {
                let reason = format!(
                    "{} belongs to a different sweep; recovered sibling {} (offset {}) instead",
                    path.display(),
                    tmp.display(),
                    tmp_cp.cursor.offset,
                );
                Ok((tmp_cp, Some(CheckpointSalvage { path: tmp, reason })))
            } else {
                Ok((main_cp, None))
            }
        }
        // A torn sibling next to a clean main file is the normal debris of a
        // writer killed mid-write: the main file is the last durable state.
        (Ok(main_cp), Err(_)) => Ok((main_cp, None)),
        (Err(main_err), Ok(tmp_cp)) if matches(&tmp_cp) => {
            let reason = format!(
                "{} is unreadable ({main_err}); recovered sibling {} at offset {}",
                path.display(),
                tmp.display(),
                tmp_cp.cursor.offset,
            );
            Ok((tmp_cp, Some(CheckpointSalvage { path: tmp, reason })))
        }
        (Err(main_err), _) => Err(main_err),
    }
}

// ---------------------------------------------------------------------------
// The streaming driver
// ---------------------------------------------------------------------------

/// What a [`SweepEngine::stream`] call processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamProgress {
    /// Configurations folded by this call (excluding resumed prior state).
    pub configs_streamed: u64,
    /// Chunks completed by this call.
    pub chunks: u64,
    /// Peak number of [`SweepPoint`]s materialized at once — one chunk's
    /// worth, the streaming path's point-memory high-water mark (compare with
    /// `configs × workloads` for the materializing path).
    pub peak_retained_points: usize,
    /// Whether the configuration source was exhausted (`false` when the
    /// `after_chunk` callback stopped the sweep early).
    pub complete: bool,
}

impl SweepEngine<'_> {
    /// Streams configurations through the aggregator in bounded-memory
    /// chunks.
    ///
    /// Pulls [`SweepSpec::chunk_configs`](crate::SweepSpec)-sized chunks from
    /// `configs`, scores each chunk via the same
    /// [`for_each_point`](SweepEngine::for_each_point) path as the
    /// materializing sweep (bit-identical points, serial or parallel), and
    /// folds every point into `aggregator`.  After each completed chunk —
    /// with the aggregator guaranteed at a configuration boundary —
    /// `after_chunk` is called with the aggregator and the cumulative number
    /// of configurations this call has folded; returning `Ok(false)` stops
    /// the sweep early (the checkpoint-interrupt hook), and an error aborts
    /// it.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `after_chunk`.
    ///
    /// # Panics
    ///
    /// Panics if `aggregator` was built for a different workload count.
    pub fn stream(
        &self,
        configs: impl IntoIterator<Item = CpuConfig>,
        workloads: &[Workload],
        aggregator: &mut SweepAggregator,
        mut after_chunk: impl FnMut(&SweepAggregator, u64) -> Result<bool, AutoPowerError>,
    ) -> Result<StreamProgress, AutoPowerError> {
        assert_eq!(
            aggregator.per_config(),
            workloads.len(),
            "aggregator workload arity does not match the sweep"
        );
        let chunk = self.spec().chunk_configs.max(1);
        let mut source = configs.into_iter();
        let mut buffer: Vec<CpuConfig> = Vec::with_capacity(chunk);
        let mut progress = StreamProgress {
            configs_streamed: 0,
            chunks: 0,
            peak_retained_points: 0,
            complete: false,
        };
        loop {
            buffer.clear();
            buffer.extend(source.by_ref().take(chunk));
            if buffer.is_empty() {
                progress.complete = true;
                return Ok(progress);
            }
            progress.peak_retained_points = progress
                .peak_retained_points
                .max(buffer.len() * workloads.len());
            self.for_each_point(&buffer, workloads, |point| aggregator.push(point));
            debug_assert_eq!(
                aggregator.pending_points(),
                0,
                "a whole chunk must leave the aggregator at a configuration boundary"
            );
            progress.configs_streamed += buffer.len() as u64;
            progress.chunks += 1;
            if !after_chunk(aggregator, progress.configs_streamed)? {
                // Stopped early; peek whether the source happened to be done.
                progress.complete = source.next().is_none();
                return Ok(progress);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Corpus, CorpusSpec};
    use crate::model::AutoPower;
    use crate::power_model::ModelKind;
    use crate::prediction::Prediction;
    use crate::sweep::{rank_by_efficiency, summarize, SweepSpec};
    use autopower_config::{boom_configs, ConfigId, DesignSpace, Workload};

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: &T) -> T {
        let mut w = Writer::new();
        value.encode(&mut w);
        let text = w.finish();
        let mut r = Reader::new(&text);
        let decoded = T::decode(&mut r).expect("roundtrip decode");
        r.expect_eof().expect("trailing content after decode");
        decoded
    }

    fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }

    #[test]
    fn uncompacted_sketch_is_exact() {
        let mut sketch = QuantileSketch::new(64);
        let values: Vec<f64> = (0..50).map(|i| ((i * 37) % 50) as f64).collect();
        for &v in &values {
            sketch.insert(v);
        }
        assert!(sketch.is_exact());
        assert_eq!(sketch.count(), 50);
        let mut sorted = values;
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(sketch.quantile(q), Some(nearest_rank(&sorted, q)));
        }
    }

    #[test]
    fn compacted_sketch_stays_bounded_and_close() {
        let mut sketch = QuantileSketch::new(32);
        let n = 10_000;
        for i in 0..n {
            // A deterministic permutation of 0..n via a co-prime stride.
            sketch.insert(((i * 7919) % n) as f64);
        }
        assert!(!sketch.is_exact());
        assert_eq!(sketch.count(), n as u64);
        // Memory stays O(levels * capacity) despite 10k inserts.
        assert!(sketch.retained() <= 32 * sketch.levels.len());
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let estimate = sketch.quantile(q).unwrap();
            let truth = (n - 1) as f64 * q;
            assert!(
                (estimate - truth).abs() < n as f64 * 0.08,
                "q={q}: estimate {estimate} too far from {truth}"
            );
        }
    }

    #[test]
    fn sketch_is_deterministic_and_roundtrips() {
        let feed = |sketch: &mut QuantileSketch| {
            for i in 0..5_000u64 {
                sketch.insert(((i * 31) % 997) as f64);
            }
        };
        let mut a = QuantileSketch::new(64);
        let mut b = QuantileSketch::new(64);
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a, b, "same input stream must build the same sketch");
        // Codec roundtrip restores the sketch bit for bit, and continuing to
        // feed the restored sketch matches continuing the original.
        let mut restored = roundtrip(&a);
        assert_eq!(restored, a);
        feed(&mut a);
        feed(&mut restored);
        assert_eq!(restored, a);
    }

    #[test]
    fn series_sketch_tracks_exact_extrema() {
        let mut series = SeriesSketch::new(16);
        assert_eq!(series.min(), None);
        assert_eq!(series.max(), None);
        for i in 0..200 {
            series.insert(((i * 131) % 200) as f64 - 50.0);
        }
        assert_eq!(series.min(), Some(-50.0));
        assert_eq!(series.max(), Some(149.0));
        assert_eq!(roundtrip(&series), series);
    }

    fn summary(id: u32, total: f64, ipc: f64, epi: f64) -> ConfigSummary {
        let mut config = boom_configs()[0];
        config.id = ConfigId::generated(id);
        ConfigSummary {
            config,
            mean_total: total,
            mean_groups: None,
            mean_ipc: ipc,
            energy_per_instruction: epi,
        }
    }

    #[test]
    fn top_k_matches_stable_sort_truncation_with_ties_and_nans() {
        let spec = StreamSpec {
            top_k: 3,
            sketch_level_capacity: 8,
        };
        let mut agg = SweepAggregator::new(1, &spec);
        let negative_nan = f64::from_bits(0xfff8_0000_0000_0001);
        let epis = [2.0, 1.0, 1.0, f64::NAN, 0.5, negative_nan, 1.0, 3.0];
        let summaries: Vec<ConfigSummary> = epis
            .iter()
            .enumerate()
            .map(|(i, &epi)| summary(i as u32 + 1, 1.0, 1.0, epi))
            .collect();
        for s in &summaries {
            agg.push_summary(*s);
        }
        let expected: Vec<&ConfigSummary> =
            rank_by_efficiency(&summaries).into_iter().take(3).collect();
        let got = agg.top();
        assert_eq!(got.len(), 3);
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.config.id, e.config.id, "tie-break order diverged");
            assert_eq!(
                g.energy_per_instruction.to_bits(),
                e.energy_per_instruction.to_bits()
            );
        }
    }

    #[test]
    fn aggregator_matches_materialized_summaries_bit_for_bit() {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        let model = AutoPower::train(&corpus, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let configs = DesignSpace::boom().sample(7, 23);
        let workloads = [Workload::Dhrystone, Workload::Qsort];
        let engine = SweepEngine::new(&model, SweepSpec::fast().threads(1));
        let points = engine.run(&configs, &workloads);
        let summaries = summarize(&points, workloads.len());

        let spec = StreamSpec {
            top_k: 4,
            sketch_level_capacity: 64,
        };
        let mut agg = SweepAggregator::new(workloads.len(), &spec);
        for p in &points {
            agg.push(p.clone());
        }
        assert_eq!(agg.configs_folded(), configs.len() as u64);
        assert_eq!(agg.pending_points(), 0);
        assert!(agg.resolves_groups());

        // Top-k is the stable-sorted ranking truncated to k.
        let expected: Vec<&ConfigSummary> =
            rank_by_efficiency(&summaries).into_iter().take(4).collect();
        assert_eq!(agg.top(), expected);

        // Exact quantiles (no compaction at this scale) equal nearest-rank
        // over the materialized totals.
        let mut totals: Vec<f64> = summaries.iter().map(|s| s.mean_total).collect();
        totals.sort_by(f64::total_cmp);
        let total_series = agg.series(PowerSeries::Total);
        assert!(total_series.sketch().is_exact());
        assert_eq!(total_series.min(), Some(totals[0]));
        assert_eq!(total_series.max(), Some(*totals.last().unwrap()));
        for q in [0.25, 0.5, 0.75] {
            assert_eq!(total_series.quantile(q), Some(nearest_rank(&totals, q)));
        }

        // Aggregator state roundtrips bit for bit through the codec.
        assert_eq!(roundtrip(&agg), agg);
    }

    #[test]
    fn total_only_points_clear_the_groups_flag() {
        let spec = StreamSpec::default();
        let mut agg = SweepAggregator::new(1, &spec);
        let mut config = boom_configs()[0];
        config.id = ConfigId::generated(1);
        agg.push(SweepPoint {
            config,
            workload: Workload::Dhrystone,
            power: Prediction::total_only(3.5),
            ipc: 1.0,
        });
        assert!(!agg.resolves_groups());
        assert_eq!(agg.series(PowerSeries::Total).min(), Some(3.5));
        assert_eq!(agg.series(PowerSeries::Clock).min(), None);
    }

    #[test]
    #[should_panic(expected = "contiguously")]
    fn interleaved_configurations_panic() {
        let mut agg = SweepAggregator::new(2, &StreamSpec::default());
        let mut a = boom_configs()[0];
        a.id = ConfigId::generated(1);
        let mut b = boom_configs()[1];
        b.id = ConfigId::generated(2);
        let point = |config| SweepPoint {
            config,
            workload: Workload::Dhrystone,
            power: Prediction::total_only(1.0),
            ipc: 1.0,
        };
        agg.push(point(a));
        agg.push(point(b));
    }

    #[test]
    fn pareto_frontier_is_mutually_non_dominated_and_first_seen_wins() {
        let mut frontier = ParetoFrontier::new();
        // (total, ipc) pairs; area is a pure function of the (identical)
        // parameters, so dominance reduces to power/IPC here.
        assert!(frontier.offer(summary(1, 10.0, 1.0, 10.0)));
        // Strictly better on power: admitted, evicts nothing (better IPC too).
        assert!(frontier.offer(summary(2, 8.0, 1.2, 6.7)));
        assert!(!frontier
            .entries()
            .iter()
            .any(|e| e.summary.config.id == ConfigId::generated(1)));
        // Dominated: rejected.
        assert!(!frontier.offer(summary(3, 9.0, 1.1, 8.2)));
        // Trade-off (more power, more IPC): admitted.
        assert!(frontier.offer(summary(4, 9.5, 2.0, 4.8)));
        // Exact tie with an incumbent: first-seen wins.
        assert!(!frontier.offer(summary(5, 8.0, 1.2, 6.7)));
        // Non-finite objectives are skipped.
        assert!(!frontier.offer(summary(6, f64::NAN, 1.0, f64::NAN)));
        assert_eq!(frontier.len(), 2);
        for a in frontier.entries() {
            for b in frontier.entries() {
                let obj = |e: &ParetoEntry| (e.summary.mean_total, e.summary.mean_ipc, e.area);
                assert!(
                    std::ptr::eq(a, b) || !dominates(obj(a), obj(b)),
                    "frontier contains a dominated entry"
                );
            }
        }
        // Report order: by power ascending.
        let sorted = frontier.sorted_by_power();
        assert_eq!(sorted[0].summary.config.id, ConfigId::generated(2));
        assert_eq!(sorted[1].summary.config.id, ConfigId::generated(4));
    }

    #[test]
    fn area_proxy_is_monotone_in_structure_sizes() {
        let space = DesignSpace::boom();
        let configs = space.sample(1, 3);
        let small = configs[0];
        let mut grown = small;
        grown.params = {
            let mut values = *small.params.values();
            values[3] += 32; // RobEntry
            autopower_config::HardwareParams::new(values)
        };
        assert!(area_proxy(&grown) > area_proxy(&small));
        // Pure function: same parameters, same proxy.
        assert_eq!(area_proxy(&small), area_proxy(&configs[0]));
    }

    #[test]
    fn checkpoint_roundtrips_and_validates() {
        let spec = StreamSpec {
            top_k: 2,
            sketch_level_capacity: 8,
        };
        let mut agg = SweepAggregator::new(1, &spec);
        for i in 0..5 {
            agg.push_summary(summary(
                i + 1,
                10.0 - f64::from(i),
                1.0,
                10.0 - f64::from(i),
            ));
        }
        let checkpoint = SweepCheckpoint {
            fingerprint: 0xDEAD_BEEF_1234_5678,
            cursor: ChunkCursor { offset: 5 },
            aggregator: agg,
            audit: None,
        };
        let dir = std::env::temp_dir().join(format!("autopower-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        save_checkpoint(&checkpoint, &path).unwrap();
        let restored = load_checkpoint(&path).unwrap();
        assert_eq!(restored, checkpoint);

        // A tampered version fails loudly.
        let text = encode_checkpoint(&checkpoint).replace("version 1", "version 99");
        let err = decode_checkpoint(&text).unwrap_err();
        assert!(matches!(err, AutoPowerError::Checkpoint(_)));
        assert!(err.to_string().contains("version"));

        // Truncation fails loudly.
        let whole = encode_checkpoint(&checkpoint);
        let truncated = &whole[..whole.len() / 2];
        assert!(decode_checkpoint(truncated).is_err());

        // A missing file reports the path.
        let missing = load_checkpoint(dir.join("missing.ckpt")).unwrap_err();
        assert!(missing.to_string().contains("missing.ckpt"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_configuration_checkpoints_are_refused() {
        let mut agg = SweepAggregator::new(2, &StreamSpec::default());
        let mut config = boom_configs()[0];
        config.id = ConfigId::generated(1);
        agg.push(SweepPoint {
            config,
            workload: Workload::Dhrystone,
            power: Prediction::total_only(1.0),
            ipc: 1.0,
        });
        assert_eq!(agg.pending_points(), 1);
        let checkpoint = SweepCheckpoint {
            fingerprint: 1,
            cursor: ChunkCursor { offset: 0 },
            aggregator: agg,
            audit: None,
        };
        let err = save_checkpoint(&checkpoint, std::env::temp_dir().join("never-written.ckpt"))
            .unwrap_err();
        assert!(err.to_string().contains("mid-configuration"));
        // The direct codec path refuses at decode time too.
        let text = encode_checkpoint(&checkpoint);
        assert!(decode_checkpoint(&text).is_err());
    }

    #[test]
    fn writer_killed_at_every_byte_offset_salvages_last_durable_cursor_or_refuses() {
        let spec = StreamSpec {
            top_k: 2,
            sketch_level_capacity: 8,
        };
        let checkpoint_at = |offset: u32| {
            let mut agg = SweepAggregator::new(1, &spec);
            for i in 0..offset {
                let total = 10.0 - f64::from(i);
                agg.push_summary(summary(i + 1, total, 1.0, total));
            }
            SweepCheckpoint {
                fingerprint: 0xF00D_F00D,
                cursor: ChunkCursor {
                    offset: u64::from(offset),
                },
                aggregator: agg,
                audit: None,
            }
        };
        let cp1 = checkpoint_at(3);
        let cp2 = checkpoint_at(7);
        let dir = std::env::temp_dir().join(format!("autopower-salvage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        let tmp = dir.join("sweep.ckpt.tmp");
        let text1 = encode_checkpoint(&cp1);
        let text2 = encode_checkpoint(&cp2);

        // Second save killed after k bytes of the temp write (the rename
        // never ran): resume must come back with the durable cp1 — unless
        // the torn prefix still parses as the complete cp2, in which case
        // adopting it is correct but must be reported as a salvage.
        for k in 0..=text2.len() {
            save_checkpoint(&cp1, &path).unwrap();
            std::fs::write(&tmp, &text2[..k]).unwrap();
            let (loaded, salvage) = load_checkpoint_salvaged(&path, Some(cp1.fingerprint)).unwrap();
            if loaded == cp2 {
                let salvage = salvage.expect("adopting the sibling must be reported");
                assert_eq!(salvage.path, tmp);
                assert!(salvage.reason.contains("newer durable cursor"));
            } else {
                assert_eq!(loaded, cp1, "kill at byte {k} must yield durable state");
                assert!(salvage.is_none());
            }
        }
        // At k == len the sibling is complete and must be adopted.
        save_checkpoint(&cp1, &path).unwrap();
        std::fs::write(&tmp, &text2).unwrap();
        let (loaded, salvage) = load_checkpoint_salvaged(&path, Some(cp1.fingerprint)).unwrap();
        assert_eq!(loaded, cp2);
        assert!(salvage.is_some());

        // First-ever save killed after k bytes: nothing durable exists, so
        // resume refuses loudly (naming the main file) for every torn
        // prefix — it never fabricates state from a partial write.
        for k in 0..text1.len() {
            std::fs::remove_file(&path).ok();
            std::fs::write(&tmp, &text1[..k]).unwrap();
            match load_checkpoint_salvaged(&path, Some(cp1.fingerprint)) {
                Err(e) => assert!(e.to_string().contains("sweep.ckpt")),
                // A prefix that still parses (e.g. missing only the final
                // newline) must decode to exactly the durable checkpoint.
                Ok((loaded, salvage)) => {
                    assert_eq!(loaded, cp1, "kill at byte {k} fabricated a checkpoint");
                    assert!(salvage.is_some());
                }
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::write(&tmp, &text1).unwrap();
        let (loaded, salvage) = load_checkpoint_salvaged(&path, Some(cp1.fingerprint)).unwrap();
        assert_eq!(loaded, cp1);
        assert!(salvage.unwrap().reason.contains("unreadable"));

        // A torn main file with a complete sibling recovers the sibling.
        std::fs::write(&path, &text2[..text2.len() / 2]).unwrap();
        std::fs::write(&tmp, &text1).unwrap();
        let (loaded, salvage) = load_checkpoint_salvaged(&path, Some(cp1.fingerprint)).unwrap();
        assert_eq!(loaded, cp1);
        assert!(salvage.is_some());

        // An alien sibling (different sweep) is never adopted: the clean
        // main file wins even though the sibling's cursor is further along.
        let alien = SweepCheckpoint {
            fingerprint: 0x0BAD_0BAD,
            ..cp2.clone()
        };
        save_checkpoint(&cp1, &path).unwrap();
        save_checkpoint(&alien, &tmp).unwrap();
        let (loaded, salvage) = load_checkpoint_salvaged(&path, Some(cp1.fingerprint)).unwrap();
        assert_eq!(loaded, cp1);
        assert!(salvage.is_none());

        // A clean-but-mismatched main file comes back unsalvaged so callers
        // keep reporting their own fingerprint error.
        std::fs::remove_file(&tmp).ok();
        let (loaded, salvage) = load_checkpoint_salvaged(&path, Some(0x5EED)).unwrap();
        assert_eq!(loaded, cp1);
        assert!(salvage.is_none());

        // The writer seam: a torn injected write fails the save and leaves
        // the previous durable file untouched.
        save_checkpoint(&cp1, &path).unwrap();
        let err = save_checkpoint_with(&cp2, &path, |tmp_path, text| {
            std::fs::write(tmp_path, &text[..text.len() / 2])?;
            Err(std::io::Error::other("injected torn write"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("injected torn write"));
        assert_eq!(load_checkpoint(&path).unwrap(), cp1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_driver_chunks_stops_and_resumes_bit_identically() {
        let cfgs = boom_configs();
        let corpus = Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        );
        let model = ModelKind::AutoPower
            .train(&corpus, &[ConfigId::new(1), ConfigId::new(15)])
            .unwrap();
        let configs = DesignSpace::boom().sample(10, 77);
        let workloads = [Workload::Dhrystone, Workload::Qsort];
        let spec = SweepSpec {
            chunk_configs: 3,
            ..SweepSpec::fast().threads(2)
        };
        let stream_spec = StreamSpec {
            top_k: 5,
            sketch_level_capacity: 32,
        };

        // One-shot run.
        let engine = SweepEngine::new(model.as_ref(), spec);
        let mut one_shot = SweepAggregator::new(workloads.len(), &stream_spec);
        let progress = engine
            .stream(
                configs.iter().copied(),
                &workloads,
                &mut one_shot,
                |_, _| Ok(true),
            )
            .unwrap();
        assert!(progress.complete);
        assert_eq!(progress.configs_streamed, 10);
        assert_eq!(progress.chunks, 4); // 3 + 3 + 3 + 1
        assert_eq!(progress.peak_retained_points, 3 * workloads.len());

        // Interrupted after the second chunk, resumed from the cursor.
        let engine2 = SweepEngine::new(model.as_ref(), spec);
        let mut first_half = SweepAggregator::new(workloads.len(), &stream_spec);
        let mut folded_at_stop = 0;
        let partial = engine2
            .stream(
                configs.iter().copied(),
                &workloads,
                &mut first_half,
                |_, folded| {
                    folded_at_stop = folded;
                    Ok(folded < 6)
                },
            )
            .unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.configs_streamed, 6);
        // Round-trip through the checkpoint codec, then resume on a fresh
        // engine (fresh caches) from the cursor.
        let mut resumed = roundtrip(&first_half);
        let engine3 = SweepEngine::new(model.as_ref(), spec);
        let tail = engine3
            .stream(
                configs[folded_at_stop as usize..].iter().copied(),
                &workloads,
                &mut resumed,
                |_, _| Ok(true),
            )
            .unwrap();
        assert!(tail.complete);
        assert_eq!(resumed, one_shot, "resumed state diverged from one-shot");
    }

    #[test]
    fn pareto_constraints_filter_before_the_frontier_fold() {
        // Two genuine frontier points (neither dominates: the hot one buys
        // its IPC with power) — constraints carve out one or the other.
        let hot = summary(1, 12.0, 2.0, 6.0); // power 12 mW, ipc 2.0
        let cool = summary(2, 8.0, 1.5, 5.3); // power 8 mW, ipc 1.5

        let spec = StreamSpec {
            top_k: 3,
            sketch_level_capacity: 8,
        };
        let mut unconstrained = SweepAggregator::new(1, &spec);
        unconstrained.push_summary(hot);
        unconstrained.push_summary(cool);
        assert_eq!(unconstrained.pareto().len(), 2);

        let power_capped = ParetoConstraints {
            max_power: Some(10.0),
            min_ipc: None,
        };
        assert!(power_capped.admits(&cool));
        assert!(!power_capped.admits(&hot));
        let mut constrained = SweepAggregator::new(1, &spec).with_pareto_constraints(power_capped);
        constrained.push_summary(hot);
        constrained.push_summary(cool);
        assert_eq!(constrained.pareto().len(), 1);
        assert_eq!(
            constrained.pareto().entries()[0].summary.config.id,
            ConfigId::generated(2),
            "only the feasible point reaches the frontier"
        );
        // Sweep statistics are unscoped: both summaries still folded into the
        // top table and sketches.
        assert_eq!(constrained.configs_folded(), 2);
        assert_eq!(constrained.top().len(), 2);
        assert_eq!(constrained.series(PowerSeries::Total).sketch().count(), 2);

        let ipc_floored = ParetoConstraints {
            max_power: None,
            min_ipc: Some(1.8),
        };
        let mut floored = SweepAggregator::new(1, &spec).with_pareto_constraints(ipc_floored);
        floored.push_summary(hot);
        floored.push_summary(cool);
        assert_eq!(floored.pareto().len(), 1);
        assert_eq!(
            floored.pareto().entries()[0].summary.config.id,
            ConfigId::generated(1)
        );
    }

    #[test]
    fn constraint_bounds_are_inclusive() {
        let constraints = ParetoConstraints {
            max_power: Some(8.0),
            min_ipc: Some(1.5),
        };
        assert!(constraints.admits(&summary(1, 8.0, 1.5, 5.3)));
        assert!(!constraints.admits(&summary(2, 8.0 + 1e-9, 1.5, 5.3)));
        assert!(!constraints.admits(&summary(3, 8.0, 1.5 - 1e-9, 5.3)));
        assert!(ParetoConstraints::default().admits(&summary(4, 1e12, 0.0, 1e12)));
    }

    #[test]
    fn invalid_constraints_are_refused() {
        for bad_power in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = ParetoConstraints {
                max_power: Some(bad_power),
                min_ipc: None,
            };
            assert!(c.validate().is_err(), "max_power {bad_power} accepted");
        }
        for bad_ipc in [-0.1, f64::NAN, f64::INFINITY] {
            let c = ParetoConstraints {
                max_power: None,
                min_ipc: Some(bad_ipc),
            };
            assert!(c.validate().is_err(), "min_ipc {bad_ipc} accepted");
        }
        assert!(ParetoConstraints {
            max_power: Some(10.0),
            min_ipc: Some(0.0),
        }
        .validate()
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid pareto constraints")]
    fn aggregator_refuses_invalid_constraints() {
        let _ = SweepAggregator::new(1, &StreamSpec::default()).with_pareto_constraints(
            ParetoConstraints {
                max_power: Some(f64::NAN),
                min_ipc: None,
            },
        );
    }

    #[test]
    fn constrained_aggregators_roundtrip_and_unconstrained_encoding_is_unchanged() {
        let spec = StreamSpec {
            top_k: 2,
            sketch_level_capacity: 8,
        };
        let constraints = ParetoConstraints {
            max_power: Some(9.5),
            min_ipc: Some(0.75),
        };
        let mut constrained = SweepAggregator::new(1, &spec).with_pareto_constraints(constraints);
        constrained.push_summary(summary(1, 9.0, 1.0, 9.0));
        constrained.push_summary(summary(2, 11.0, 2.0, 5.5)); // filtered out
        let restored = roundtrip(&constrained);
        assert_eq!(restored, constrained);
        assert_eq!(restored.pareto_constraints(), &constraints);

        // The optional section only appears when constraints are present, so
        // pre-constraint checkpoints stay byte-compatible.
        let mut plain = SweepAggregator::new(1, &spec);
        plain.push_summary(summary(1, 9.0, 1.0, 9.0));
        let mut w = Writer::new();
        plain.encode(&mut w);
        assert!(!w.finish().contains("constraints"));
        assert_eq!(roundtrip(&plain), plain);
    }

    #[test]
    fn checkpoints_carry_optional_audit_state_bit_exactly() {
        use crate::surrogate::AuditAccumulator;
        use autopower_perfsim::EventParams;

        let spec = StreamSpec {
            top_k: 2,
            sketch_level_capacity: 8,
        };
        let mut agg = SweepAggregator::new(1, &spec);
        agg.push_summary(summary(1, 5.0, 1.0, 5.0));

        let n = EventParams::names().len();
        let mut audit = AuditAccumulator::new(n);
        let exact: Vec<f64> = (0..n).map(|e| 1.0 + e as f64).collect();
        let predicted: Vec<f64> = exact.iter().map(|v| v * 1.01).collect();
        audit.record(&exact, &predicted, 50.0, 51.0);

        let with_audit = SweepCheckpoint {
            fingerprint: 42,
            cursor: ChunkCursor { offset: 1 },
            aggregator: agg.clone(),
            audit: Some(audit),
        };
        let restored = decode_checkpoint(&encode_checkpoint(&with_audit)).unwrap();
        assert_eq!(restored, with_audit);

        // Exact-backend checkpoints omit the section entirely.
        let without = SweepCheckpoint {
            fingerprint: 42,
            cursor: ChunkCursor { offset: 1 },
            aggregator: agg,
            audit: None,
        };
        let text = encode_checkpoint(&without);
        assert!(!text.contains("audit"));
        assert_eq!(decode_checkpoint(&text).unwrap(), without);
    }
}
