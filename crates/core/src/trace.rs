//! Time-based power-trace prediction (Section III-B.5, Table IV).
//!
//! A trained model predicts the power of each simulation interval (50 cycles by
//! default) from the interval's event parameters.  No additional training on
//! time-based data is performed — exactly the setting of Table IV.  The
//! predictor is model-agnostic: any [`PowerModel`] from the registry (AutoPower
//! or a baseline) can drive it.
//!
//! Golden traces stay [`PowerTrace`]s (the golden flow always resolves
//! groups); predicted traces are [`PredictedPowerTrace`]s whose samples carry
//! typed [`Prediction`]s — a total-only model predicts interval totals and
//! nothing else, with no group slot to misread.

use crate::dataset::{Corpus, RunData};
use crate::power_model::PowerModel;
use crate::prediction::Prediction;
use autopower_config::{ConfigId, Workload};
use autopower_powersim::PowerTrace;
use serde::Serialize;

/// One predicted interval: the typed prediction plus its time coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedSample {
    /// Cycle at which the interval starts.
    pub start_cycle: u64,
    /// Length of the interval in cycles.
    pub cycles: u64,
    /// Predicted power of the interval.
    pub power: Prediction,
}

/// A predicted time-based power trace for one `(configuration, workload)`
/// pair — the model-side counterpart of the golden [`PowerTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedPowerTrace {
    /// The evaluated configuration.
    pub config: ConfigId,
    /// The executed workload.
    pub workload: Workload,
    /// Nominal interval length in cycles (the paper uses 50).
    pub interval_cycles: u32,
    /// Samples in execution order.
    pub samples: Vec<PredictedSample>,
}

impl PredictedPowerTrace {
    /// Total power values of all samples, in mW.
    pub fn totals(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.power.total()).collect()
    }

    /// Maximum sample power in mW (0 for an empty trace), mirroring
    /// [`PowerTrace::max_power`].
    pub fn max_power(&self) -> f64 {
        self.totals().into_iter().fold(0.0, f64::max)
    }

    /// Minimum sample power in mW (0 for an empty trace), mirroring
    /// [`PowerTrace::min_power`].
    pub fn min_power(&self) -> f64 {
        let min = self.totals().into_iter().fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Predicts time-based power traces with any trained [`PowerModel`].
#[derive(Debug, Clone)]
pub struct PowerTracePredictor<'a> {
    model: &'a dyn PowerModel,
}

impl<'a> PowerTracePredictor<'a> {
    /// Wraps a trained model.
    pub fn new(model: &'a dyn PowerModel) -> Self {
        Self { model }
    }

    /// Predicts the power trace of one run, one sample per simulation interval.
    pub fn predict_trace(&self, run: &RunData) -> PredictedPowerTrace {
        let samples = run
            .sim
            .intervals
            .iter()
            .map(|interval| {
                let events = run.sim.interval_events(interval);
                let power = self.model.predict(&run.config, &events, run.workload);
                PredictedSample {
                    start_cycle: interval.start_cycle,
                    cycles: interval.counters.cycles,
                    power,
                }
            })
            .collect();
        PredictedPowerTrace {
            config: run.config.id,
            workload: run.workload,
            interval_cycles: run.sim.sim_config.interval_cycles,
            samples,
        }
    }
}

/// The error figures Table IV reports for one trace: maximum-power error, minimum-power
/// error, and the average per-interval error, all as fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TraceErrors {
    /// Relative error of the predicted maximum power.
    pub max_power_error: f64,
    /// Relative error of the predicted minimum power.
    pub min_power_error: f64,
    /// Mean absolute relative error over all intervals.
    pub average_error: f64,
}

impl TraceErrors {
    /// Maximum-power error in percent.
    pub fn max_power_error_percent(&self) -> f64 {
        self.max_power_error * 100.0
    }

    /// Minimum-power error in percent.
    pub fn min_power_error_percent(&self) -> f64 {
        self.min_power_error * 100.0
    }

    /// Average error in percent.
    pub fn average_error_percent(&self) -> f64 {
        self.average_error * 100.0
    }
}

/// Compares a predicted trace against the golden trace of the same run.
///
/// # Panics
///
/// Panics if the traces have different lengths or are empty.
pub fn trace_errors(golden: &PowerTrace, predicted: &PredictedPowerTrace) -> TraceErrors {
    assert!(!golden.is_empty(), "golden trace is empty");
    assert_eq!(
        golden.samples.len(),
        predicted.samples.len(),
        "traces must have the same number of intervals"
    );
    let g = golden.totals();
    let p = predicted.totals();
    // Relative error is undefined where the golden power is zero; those
    // intervals are excluded from the numerator AND the denominator (dividing
    // by the full interval count would silently bias the average low).
    let mut n = 0usize;
    let mut sum = 0.0;
    for (t, q) in g.iter().zip(&p) {
        if *t > 0.0 {
            n += 1;
            sum += ((q - t) / t).abs();
        }
    }
    let avg = if n == 0 { 0.0 } else { sum / n as f64 };
    TraceErrors {
        max_power_error: rel_err(golden.max_power(), predicted.max_power()),
        min_power_error: rel_err(golden.min_power(), predicted.min_power()),
        average_error: avg,
    }
}

fn rel_err(truth: f64, pred: f64) -> f64 {
    if truth == 0.0 {
        0.0
    } else {
        ((pred - truth) / truth).abs()
    }
}

/// Convenience: golden trace, predicted trace and their errors for one run.
pub fn evaluate_trace_prediction(
    corpus: &Corpus,
    model: &dyn PowerModel,
    run: &RunData,
) -> (PowerTrace, PredictedPowerTrace, TraceErrors) {
    let golden = corpus.golden_trace(run);
    let predicted = PowerTracePredictor::new(model).predict_trace(run);
    let errors = trace_errors(&golden, &predicted);
    (golden, predicted, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use crate::model::AutoPower;
    use crate::power_model::ModelKind;
    use autopower_config::boom_configs;

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[1], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd, Workload::Gemm],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn predicted_trace_has_one_sample_per_interval() {
        let c = corpus();
        let model = AutoPower::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let run = c.run(ConfigId::new(2), Workload::Gemm).unwrap();
        let trace = PowerTracePredictor::new(&model).predict_trace(run);
        assert_eq!(trace.samples.len(), run.sim.intervals.len());
        assert!(trace.samples.iter().all(|s| s.power.total() > 0.0));
        // AutoPower resolves groups per interval; the typed samples carry them.
        assert!(trace.samples.iter().all(|s| s.power.groups().is_some()));
    }

    #[test]
    fn total_only_models_predict_total_only_traces() {
        let c = corpus();
        let model = ModelKind::McpatCalib
            .train(&c, &[ConfigId::new(1), ConfigId::new(15)])
            .unwrap();
        let run = c.run(ConfigId::new(2), Workload::Gemm).unwrap();
        let trace = PowerTracePredictor::new(model.as_ref()).predict_trace(run);
        assert!(!trace.is_empty());
        for s in &trace.samples {
            assert!(s.power.total() >= 0.0);
            assert!(s.power.groups().is_none(), "no parked group slot");
        }
        let errors = trace_errors(&c.golden_trace(run), &trace);
        assert!(errors.average_error.is_finite());
    }

    #[test]
    fn trace_errors_are_reasonable_for_a_trained_model() {
        let c = corpus();
        let model = AutoPower::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let run = c.run(ConfigId::new(2), Workload::Gemm).unwrap();
        let (_, _, errors) = evaluate_trace_prediction(&c, &model, run);
        // Table IV reports single- to low-double-digit percentage errors; allow a loose
        // band here because the test corpus is tiny.
        assert!(
            errors.average_error < 0.35,
            "average error {}",
            errors.average_error
        );
        assert!(errors.max_power_error < 0.5);
        assert!(errors.min_power_error < 0.5);
    }

    #[test]
    fn identical_traces_have_zero_error() {
        let c = corpus();
        let run = c.run(ConfigId::new(1), Workload::Dhrystone).unwrap();
        let golden = c.golden_trace(run);
        let predicted = PredictedPowerTrace {
            config: golden.config,
            workload: golden.workload,
            interval_cycles: golden.interval_cycles,
            samples: golden
                .samples
                .iter()
                .map(|s| PredictedSample {
                    start_cycle: s.start_cycle,
                    cycles: s.cycles,
                    power: Prediction::grouped(s.power),
                })
                .collect(),
        };
        let e = trace_errors(&golden, &predicted);
        assert_eq!(e.max_power_error, 0.0);
        assert_eq!(e.min_power_error, 0.0);
        assert_eq!(e.average_error, 0.0);
        assert_eq!(e.average_error_percent(), 0.0);
    }

    #[test]
    fn zero_power_intervals_do_not_bias_the_average_error() {
        use autopower_powersim::{PowerGroups, PowerSample};
        let golden_trace = |totals: &[f64]| PowerTrace {
            config: ConfigId::new(1),
            workload: Workload::Gemm,
            interval_cycles: 50,
            samples: totals
                .iter()
                .enumerate()
                .map(|(i, &t)| PowerSample {
                    start_cycle: i as u64 * 50,
                    cycles: 50,
                    power: PowerGroups {
                        clock: t,
                        sram: 0.0,
                        register: 0.0,
                        combinational: 0.0,
                    },
                })
                .collect(),
        };
        let predicted_trace = |totals: &[f64]| PredictedPowerTrace {
            config: ConfigId::new(1),
            workload: Workload::Gemm,
            interval_cycles: 50,
            samples: totals
                .iter()
                .enumerate()
                .map(|(i, &t)| PredictedSample {
                    start_cycle: i as u64 * 50,
                    cycles: 50,
                    power: Prediction::total_only(t),
                })
                .collect(),
        };
        // Golden [10, 0, 20] vs predicted [11, 5, 22]: 10 % relative error on
        // each of the two non-zero intervals.  The zero-power interval carries
        // no defined relative error and must not shrink the mean (the old
        // divide-by-all-intervals code reported 6.67 % here).
        let golden = golden_trace(&[10.0, 0.0, 20.0]);
        let predicted = predicted_trace(&[11.0, 5.0, 22.0]);
        let e = trace_errors(&golden, &predicted);
        assert!((e.average_error - 0.1).abs() < 1e-12, "{}", e.average_error);
        // All-zero golden traces degrade to a zero average error, not NaN.
        let zeros = golden_trace(&[0.0, 0.0]);
        let pred = predicted_trace(&[1.0, 2.0]);
        assert_eq!(trace_errors(&zeros, &pred).average_error, 0.0);
    }

    #[test]
    #[should_panic(expected = "same number of intervals")]
    fn mismatched_traces_panic() {
        let c = corpus();
        let model = AutoPower::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let run_a = c.run(ConfigId::new(1), Workload::Dhrystone).unwrap();
        let run_b = c.run(ConfigId::new(1), Workload::Gemm).unwrap();
        let predicted = PowerTracePredictor::new(&model).predict_trace(run_b);
        let _ = trace_errors(&c.golden_trace(run_a), &predicted);
    }
}
