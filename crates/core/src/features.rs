//! Feature assembly: the `H`, `E` and program-level feature vectors of the sub-models.

use crate::dataset::RunData;
use autopower_config::{Component, CpuConfig, Workload};
use autopower_ml::Matrix;
use autopower_perfsim::EventParams;
use autopower_workloads::ProgramFeatures;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// Hardware-parameter (`H`) features of one component: the values of the Table III
/// parameters the component is sensitive to.
pub fn hw_features(component: Component, config: &CpuConfig) -> Vec<f64> {
    let mut out = Vec::new();
    hw_features_into(component, config, &mut out);
    out
}

/// Appends the component's `H` features to `out` (the allocation-free twin of
/// [`hw_features`]).
pub fn hw_features_into(component: Component, config: &CpuConfig, out: &mut Vec<f64>) {
    out.extend(
        component
            .hw_params()
            .iter()
            .map(|&p| config.params.value(p) as f64),
    );
}

/// Names of the features returned by [`hw_features`], in the same order.
pub fn hw_feature_names(component: Component) -> Vec<String> {
    component
        .hw_params()
        .iter()
        .map(|p| p.name().to_owned())
        .collect()
}

/// Event-parameter (`E`) features of one component: the subset of simulator counters the
/// component's activity depends on.
pub fn event_features(component: Component, events: &EventParams) -> Vec<f64> {
    events.component_features(component)
}

/// Appends the component's `E` features to `out` (the allocation-free twin of
/// [`event_features`]).
pub fn event_features_into(component: Component, events: &EventParams, out: &mut Vec<f64>) {
    events.component_features_into(component, out);
}

/// Assembles one sub-model's feature matrix over a batch of points: one
/// [`model_features`] row per point, in point order.
///
/// The rows are assembled by the same [`model_features_into`] the per-point
/// path uses, so scoring the matrix through
/// [`FlatForest::predict_into`](autopower_ml::FlatForest::predict_into) is
/// bit-identical to predicting each row on its own — the invariant the
/// forest-major batch path ([`PowerModel::predict_batch_with`](crate::PowerModel::predict_batch_with)) relies on.
pub(crate) fn batch_feature_matrix(
    which: ModelFeatures,
    component: Component,
    points: &[crate::power_model::PredictInput<'_>],
) -> Matrix {
    let mut data = Vec::new();
    for p in points {
        model_features_into(which, component, p.config, p.events, p.workload, &mut data);
    }
    Matrix::from_flat(points.len(), data.len() / points.len(), data)
}

/// A reusable feature-row buffer for the allocation-free prediction path.
///
/// Every prediction assembles many short-lived feature rows (one per
/// sub-model per component).  The engines that score thousands of points —
/// [`SweepEngine`](crate::SweepEngine), [`sweep_multi`](crate::sweep_multi) —
/// hand each worker one `FeatureScratch` and thread it through
/// [`PowerModel::predict_with`](crate::PowerModel::predict_with), so the row
/// storage is allocated once per worker instead of once per row.
#[derive(Debug, Clone, Default)]
pub struct FeatureScratch {
    row: Vec<f64>,
}

impl FeatureScratch {
    /// Creates an empty scratch (the first row fill sizes the buffer).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears and hands out the reusable row buffer.
    pub(crate) fn row_mut(&mut self) -> &mut Vec<f64> {
        self.row.clear();
        &mut self.row
    }
}

/// Which feature blocks to include when assembling a sub-model's input row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelFeatures {
    /// Include the component's hardware parameters.
    pub hardware: bool,
    /// Include the component's event parameters.
    pub events: bool,
    /// Include the microarchitecture-independent program-level features.
    pub program: bool,
}

impl ModelFeatures {
    /// Hardware parameters only (`F_reg`, `F_gate`, `F_sta` in the paper).
    pub const HW_ONLY: ModelFeatures = ModelFeatures {
        hardware: true,
        events: false,
        program: false,
    };

    /// Hardware + event parameters (`F_α′`, `F_act`, `F_var`).
    pub const HW_EVENTS: ModelFeatures = ModelFeatures {
        hardware: true,
        events: true,
        program: false,
    };

    /// Hardware + events + program-level features (the SRAM activity model; the paper
    /// notes prior works ignore program-level features and that they improve robustness
    /// to simulator inaccuracy).
    pub const HW_EVENTS_PROGRAM: ModelFeatures = ModelFeatures {
        hardware: true,
        events: true,
        program: true,
    };
}

impl Codec for ModelFeatures {
    fn encode(&self, w: &mut Writer) {
        w.begin("features");
        w.bool("hardware", self.hardware);
        w.bool("events", self.events);
        w.bool("program", self.program);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("features")?;
        let mode = Self {
            hardware: r.bool("hardware")?,
            events: r.bool("events")?,
            program: r.bool("program")?,
        };
        r.end()?;
        Ok(mode)
    }
}

/// Assembles one feature row for a `(component, configuration, workload)` sample.
pub fn model_features(
    which: ModelFeatures,
    component: Component,
    config: &CpuConfig,
    events: &EventParams,
    workload: Workload,
) -> Vec<f64> {
    let mut row = Vec::new();
    model_features_into(which, component, config, events, workload, &mut row);
    row
}

/// Appends one feature row to `out` (the allocation-free twin of
/// [`model_features`]; block order is identical).
pub fn model_features_into(
    which: ModelFeatures,
    component: Component,
    config: &CpuConfig,
    events: &EventParams,
    workload: Workload,
    out: &mut Vec<f64>,
) {
    if which.hardware {
        hw_features_into(component, config, out);
    }
    if which.events {
        event_features_into(component, events, out);
    }
    if which.program {
        ProgramFeatures::of(workload).push_into(out);
    }
}

/// Assembles the flat row-major training matrix of one sub-model: one
/// [`model_features`] row per run, written back to back into a single buffer
/// (no per-row allocation).  Returns `None` when there are no runs.
pub(crate) fn model_feature_matrix(
    which: ModelFeatures,
    component: Component,
    runs: &[&RunData],
) -> Option<Matrix> {
    if runs.is_empty() {
        return None;
    }
    let mut data = Vec::new();
    for run in runs {
        model_features_into(
            which,
            component,
            &run.config,
            &run.sim.events,
            run.workload,
            &mut data,
        );
    }
    let width = data.len() / runs.len();
    Some(Matrix::from_flat(runs.len(), width, data))
}

/// Names of the features assembled by [`model_features`], in the same order.
pub fn model_feature_names(which: ModelFeatures, component: Component) -> Vec<String> {
    let mut names = Vec::new();
    if which.hardware {
        names.extend(hw_feature_names(component));
    }
    if which.events {
        names.extend(
            EventParams::component_feature_names(component)
                .iter()
                .map(|s| (*s).to_owned()),
        );
    }
    if which.program {
        names.extend(ProgramFeatures::names().iter().map(|s| (*s).to_owned()));
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::boom_configs;
    use autopower_perfsim::{simulate, SimConfig};

    fn sample_events() -> EventParams {
        let cfg = boom_configs()[0];
        simulate(
            &cfg,
            Workload::Dhrystone,
            &SimConfig {
                max_instructions: 1_000,
                ..SimConfig::fast()
            },
        )
        .events
    }

    #[test]
    fn hw_features_follow_table_iii() {
        let cfg = boom_configs()[7];
        let f = hw_features(Component::Ifu, &cfg);
        assert_eq!(f, vec![8.0, 3.0, 24.0]);
        assert_eq!(
            hw_feature_names(Component::Ifu),
            vec!["FetchWidth", "DecodeWidth", "FetchBufferEntry"]
        );
    }

    #[test]
    fn feature_rows_match_their_names_for_every_component_and_mode() {
        let cfg = boom_configs()[0];
        let events = sample_events();
        for mode in [
            ModelFeatures::HW_ONLY,
            ModelFeatures::HW_EVENTS,
            ModelFeatures::HW_EVENTS_PROGRAM,
        ] {
            for c in Component::ALL {
                let row = model_features(mode, c, &cfg, &events, Workload::Dhrystone);
                let names = model_feature_names(mode, c);
                assert_eq!(row.len(), names.len(), "{c} mode {mode:?}");
                assert!(row.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn program_features_extend_the_row() {
        let cfg = boom_configs()[0];
        let events = sample_events();
        let without = model_features(
            ModelFeatures::HW_EVENTS,
            Component::Rob,
            &cfg,
            &events,
            Workload::Qsort,
        );
        let with = model_features(
            ModelFeatures::HW_EVENTS_PROGRAM,
            Component::Rob,
            &cfg,
            &events,
            Workload::Qsort,
        );
        assert_eq!(with.len(), without.len() + ProgramFeatures::names().len());
        assert_eq!(&with[..without.len()], &without[..]);
    }
}
