//! The end-to-end AutoPower model: power group decoupling assembled.

use crate::clock::ClockPowerModel;
use crate::dataset::{Corpus, RunData};
use crate::error::AutoPowerError;
use crate::features::{FeatureScratch, ModelFeatures};
use crate::logic::LogicPowerModel;
use crate::power_model::{ModelKind, PowerModel, PredictInput};
use crate::prediction::{ComponentBreakdown, Prediction};
use crate::serialize::{decode_library, encode_library};
use crate::sram::SramPowerModel;
use autopower_config::{Component, ConfigId, CpuConfig, Workload};
use autopower_perfsim::EventParams;
use autopower_powersim::PowerGroups;
use autopower_techlib::TechLibrary;
use serde::codec::{Codec, CodecError, Reader, Writer};

/// The full AutoPower model: one decoupled model per power group.
#[derive(Debug, Clone)]
pub struct AutoPower {
    clock: ClockPowerModel,
    sram: SramPowerModel,
    logic: LogicPowerModel,
    library: TechLibrary,
}

impl AutoPower {
    /// Trains AutoPower on the runs of `train_configs` (the few *known* configurations).
    ///
    /// # Errors
    ///
    /// Returns an error if any sub-model cannot be fitted or a requested configuration is
    /// absent from the corpus.
    pub fn train(corpus: &Corpus, train_configs: &[ConfigId]) -> Result<Self, AutoPowerError> {
        Self::train_with_features(corpus, train_configs, ModelFeatures::HW_EVENTS_PROGRAM)
    }

    /// Trains AutoPower with an explicit SRAM-activity feature mode (used by the
    /// program-level-feature ablation).
    ///
    /// # Errors
    ///
    /// Returns an error if any sub-model cannot be fitted or a requested configuration is
    /// absent from the corpus.
    pub fn train_with_features(
        corpus: &Corpus,
        train_configs: &[ConfigId],
        sram_features: ModelFeatures,
    ) -> Result<Self, AutoPowerError> {
        Ok(Self {
            clock: ClockPowerModel::train(corpus, train_configs)?,
            sram: SramPowerModel::train_with_features(corpus, train_configs, sram_features)?,
            logic: LogicPowerModel::train(corpus, train_configs)?,
            library: corpus.library().clone(),
        })
    }

    /// The clock power model.
    pub fn clock_model(&self) -> &ClockPowerModel {
        &self.clock
    }

    /// The SRAM power model.
    pub fn sram_model(&self) -> &SramPowerModel {
        &self.sram
    }

    /// The logic power model.
    pub fn logic_model(&self) -> &LogicPowerModel {
        &self.logic
    }

    /// Predicts the per-group power of one `(configuration, workload)` point from
    /// architecture-level information only.
    pub fn predict(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> PowerGroups {
        self.predict_scratch(config, events, workload, &mut FeatureScratch::new())
    }

    /// [`AutoPower::predict`] with feature rows assembled in a reusable
    /// scratch — the allocation-free path the batch-inference engines drive.
    pub fn predict_scratch(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> PowerGroups {
        PowerGroups {
            clock: self.clock.predict_with(config, events, workload, scratch),
            sram: self
                .sram
                .predict_with(config, events, workload, &self.library, scratch),
            register: self
                .logic
                .predict_register_with(config, events, workload, scratch),
            combinational: self
                .logic
                .predict_comb_with(config, events, workload, scratch),
        }
    }

    /// Predicts the per-group power of one component.
    pub fn predict_component(
        &self,
        component: Component,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> PowerGroups {
        PowerGroups {
            clock: self
                .clock
                .predict_component(component, config, events, workload),
            sram: self
                .sram
                .predict_component(component, config, events, workload, &self.library),
            register: self
                .logic
                .predict_register_component(component, config, events, workload),
            combinational: self
                .logic
                .predict_comb_component(component, config, events, workload),
        }
    }

    /// Convenience: predicts the power of a corpus run from its reported events.
    pub fn predict_run(&self, run: &RunData) -> PowerGroups {
        self.predict(&run.config, &run.sim.events, run.workload)
    }

    /// Predicted total power in mW for one run.
    pub fn predict_total(&self, run: &RunData) -> f64 {
        self.predict_run(run).total()
    }
}

impl PowerModel for AutoPower {
    fn kind(&self) -> ModelKind {
        ModelKind::AutoPower
    }

    /// Group-resolved: the canonical core-level prediction of the decoupled
    /// group models.
    fn predict_with(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
        scratch: &mut FeatureScratch,
    ) -> Prediction {
        Prediction::grouped(self.predict_scratch(config, events, workload, scratch))
    }

    /// Forest-major batch prediction: every sub-model ensemble scores the
    /// whole batch before the next one runs, instead of ~77 ensembles
    /// alternating per point and evicting each other from cache.
    /// Bit-identical to the per-point default (each sub-model's batch path
    /// pins that invariant), so the sweep engine batches freely without
    /// perturbing goldens.
    fn predict_batch_with(
        &self,
        points: &[PredictInput<'_>],
        scratch: &mut FeatureScratch,
        out: &mut Vec<Prediction>,
    ) {
        let n = points.len();
        let mut clock = vec![0.0; n];
        let mut sram = vec![0.0; n];
        let mut register = vec![0.0; n];
        let mut combinational = vec![0.0; n];
        self.clock.predict_batch_into(points, scratch, &mut clock);
        self.sram
            .predict_batch_into(points, &self.library, scratch, &mut sram);
        self.logic
            .predict_batch_into(points, scratch, &mut register, &mut combinational);
        out.clear();
        out.reserve(n);
        for i in 0..n {
            out.push(Prediction::grouped(PowerGroups {
                clock: clock[i],
                sram: sram[i],
                register: register[i],
                combinational: combinational[i],
            }));
        }
    }

    /// The per-component detail view (each component fully group-resolved).
    fn predict_components(
        &self,
        config: &CpuConfig,
        events: &EventParams,
        workload: Workload,
    ) -> Option<ComponentBreakdown> {
        Some(ComponentBreakdown::from_groups(|component| {
            self.predict_component(component, config, events, workload)
        }))
    }

    fn serialize(&self, w: &mut Writer) {
        Codec::encode(self, w);
    }
}

impl Codec for AutoPower {
    fn encode(&self, w: &mut Writer) {
        w.begin("autopower");
        self.clock.encode(w);
        self.sram.encode(w);
        self.logic.encode(w);
        encode_library(w, &self.library);
        w.end();
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.begin("autopower")?;
        let clock = ClockPowerModel::decode(r)?;
        let sram = SramPowerModel::decode(r)?;
        let logic = LogicPowerModel::decode(r)?;
        let library = decode_library(r)?;
        r.end()?;
        Ok(Self {
            clock,
            sram,
            logic,
            library,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use crate::evaluation::evaluate_totals;
    use autopower_config::boom_configs;

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[4], cfgs[7], cfgs[11], cfgs[14]],
            &[Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn few_shot_training_predicts_unseen_configs_accurately() {
        let c = corpus();
        let train = [ConfigId::new(1), ConfigId::new(15)];
        let model = AutoPower::train(&c, &train).unwrap();
        let test_runs = c.test_runs(&train);
        let summary = evaluate_totals(&test_runs, |run| model.predict_total(run));
        // The paper reports 4.36 % MAPE / 0.96 R2 on the full 15-config corpus; on this
        // reduced test corpus we only require the same ballpark of quality.
        assert!(summary.mape < 0.15, "AutoPower MAPE {}", summary.mape);
        assert!(
            summary.r_squared > 0.8,
            "AutoPower R2 {}",
            summary.r_squared
        );
    }

    #[test]
    fn per_group_predictions_sum_to_the_total() {
        let c = corpus();
        let model = AutoPower::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let run = c.run(ConfigId::new(8), Workload::Qsort).unwrap();
        let p = model.predict_run(run);
        assert!((p.total() - (p.clock + p.sram + p.register + p.combinational)).abs() < 1e-12);
        assert!(p.is_physical());
    }

    #[test]
    fn component_predictions_sum_close_to_core_prediction() {
        let c = corpus();
        let model = AutoPower::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let run = c.run(ConfigId::new(8), Workload::Vvadd).unwrap();
        let core = model.predict_run(run);
        let mut sum = PowerGroups::default();
        for comp in Component::ALL {
            sum += model.predict_component(comp, &run.config, &run.sim.events, run.workload);
        }
        assert!((sum.total() - core.total()).abs() < 1e-9);
    }

    #[test]
    fn batched_prediction_is_bit_identical_to_per_point() {
        let c = corpus();
        let model = AutoPower::train(&c, &[ConfigId::new(1), ConfigId::new(15)]).unwrap();
        let runs = c.runs();
        let points: Vec<PredictInput<'_>> = runs
            .iter()
            .map(|run| PredictInput {
                config: &run.config,
                events: &run.sim.events,
                workload: run.workload,
            })
            .collect();
        let mut scratch = FeatureScratch::new();
        let mut batch = Vec::new();
        PowerModel::predict_batch_with(&model, &points, &mut scratch, &mut batch);
        assert_eq!(batch.len(), runs.len());
        for (run, batched) in runs.iter().zip(&batch) {
            let single = PowerModel::predict_with(
                &model,
                &run.config,
                &run.sim.events,
                run.workload,
                &mut scratch,
            );
            let (s, b) = (single.groups().unwrap(), batched.groups().unwrap());
            for (name, sv, bv) in [
                ("clock", s.clock, b.clock),
                ("sram", s.sram, b.sram),
                ("register", s.register, b.register),
                ("combinational", s.combinational, b.combinational),
            ] {
                assert_eq!(
                    sv.to_bits(),
                    bv.to_bits(),
                    "{name} drifted on {} {}: {sv} vs {bv}",
                    run.config.id,
                    run.workload,
                );
            }
            assert_eq!(single.total().to_bits(), batched.total().to_bits());
        }
    }

    #[test]
    fn training_errors_are_propagated() {
        let c = corpus();
        assert!(AutoPower::train(&c, &[]).is_err());
        assert!(AutoPower::train(&c, &[ConfigId::new(2)]).is_err());
    }
}
