//! Staged, parallel substrate pipeline for corpus generation.
//!
//! Corpus generation is the hottest path of the reproduction: every experiment
//! regenerates one pass of the paper's data-collection flow per
//! `(configuration, workload)` pair.  This module models that flow as three
//! explicit stages and executes each stage across a scoped thread pool:
//!
//! 1. **Synthesize** — one netlist per *configuration* (not per run); the
//!    result is memoized behind an [`Arc`] and shared by every workload of the
//!    configuration.
//! 2. **Simulate** — one performance simulation per `(configuration, workload)`
//!    pair; this is the dominant cost at paper-scale instruction budgets.
//! 3. **Evaluate** — one golden power report per run, combining the stage-1
//!    netlist with the stage-2 activity snapshot.
//!
//! Every stage writes its results into a slot indexed by the *input* position,
//! so the assembled corpus is bit-identical regardless of worker count or
//! scheduling: `threads(1)` reproduces the historical serial behaviour and
//! `threads(n)` merely overlaps independent substrate invocations, all of
//! which are pure functions of their inputs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use autopower_config::{CpuConfig, Workload};
use autopower_netlist::{synthesize, Netlist};
use autopower_perfsim::{simulate_with, SimResult, SimScratch};
use autopower_powersim::{evaluate_run, PowerReport};
use autopower_techlib::TechLibrary;

use crate::dataset::{CorpusSpec, RunData};

/// The staged corpus-generation pipeline.
///
/// Borrows its inputs; [`SubstratePipeline::run`] produces one [`RunData`] per
/// `(configuration, workload)` pair in input order.  Constructed internally by
/// [`Corpus::generate`](crate::Corpus::generate); exposed publicly so callers
/// with bespoke scheduling needs (sharded generation, custom libraries) can
/// drive the stages directly.
#[derive(Debug, Clone, Copy)]
pub struct SubstratePipeline<'a> {
    configs: &'a [CpuConfig],
    workloads: &'a [Workload],
    spec: &'a CorpusSpec,
    library: &'a TechLibrary,
}

impl<'a> SubstratePipeline<'a> {
    /// Creates a pipeline over the full cross product `configs` × `workloads`.
    pub fn new(
        configs: &'a [CpuConfig],
        workloads: &'a [Workload],
        spec: &'a CorpusSpec,
        library: &'a TechLibrary,
    ) -> Self {
        Self {
            configs,
            workloads,
            spec,
            library,
        }
    }

    /// Number of `(configuration, workload)` runs the pipeline will produce.
    pub fn run_count(&self) -> usize {
        self.configs.len() * self.workloads.len()
    }

    /// Stage 1: synthesizes every configuration once, in parallel.
    ///
    /// Returns one shared netlist per configuration, in input order.
    pub fn synthesize_stage(&self, threads: usize) -> Vec<Arc<Netlist>> {
        let configs = self.configs;
        let library = self.library;
        parallel_map(threads, configs.len(), |i| {
            Arc::new(synthesize(&configs[i], library))
        })
    }

    /// Stage 2: performance-simulates every `(configuration, workload)` pair,
    /// in parallel.
    ///
    /// Results are in run order (configuration-major, workload-minor), matching
    /// [`SubstratePipeline::synthesize_stage`] through `run_index /
    /// workloads.len()`.
    pub fn simulate_stage(&self, threads: usize) -> Vec<SimResult> {
        let per_config = self.workloads.len();
        let configs = self.configs;
        let workloads = self.workloads;
        let sim = &self.spec.sim;
        // Each worker reuses one simulation scratch (machine + materialized
        // instruction streams) across every run it claims; results are
        // bit-identical to fresh per-run simulation.
        parallel_map_with(threads, self.run_count(), SimScratch::new, |scratch, i| {
            simulate_with(
                &configs[i / per_config],
                workloads[i % per_config],
                sim,
                scratch,
            )
        })
    }

    /// Stage 3: evaluates the golden power report of every run, in parallel.
    ///
    /// `netlists` and `sims` are the outputs of the two earlier stages.
    ///
    /// # Panics
    ///
    /// Panics if `netlists` or `sims` do not match this pipeline's dimensions.
    pub fn evaluate_stage(
        &self,
        threads: usize,
        netlists: &[Arc<Netlist>],
        sims: &[SimResult],
    ) -> Vec<PowerReport> {
        assert_eq!(
            netlists.len(),
            self.configs.len(),
            "one netlist per configuration"
        );
        assert_eq!(sims.len(), self.run_count(), "one simulation per run");
        let per_config = self.workloads.len();
        let library = self.library;
        parallel_map(threads, self.run_count(), |i| {
            evaluate_run(&netlists[i / per_config], &sims[i], library)
        })
    }

    /// Runs all three stages and assembles the runs in deterministic input
    /// order.
    pub fn run(&self) -> Vec<RunData> {
        let threads = self.spec.effective_threads();
        let netlists = self.synthesize_stage(threads);
        let sims = self.simulate_stage(threads);
        let goldens = self.evaluate_stage(threads, &netlists, &sims);

        let per_config = self.workloads.len().max(1);
        sims.into_iter()
            .zip(goldens)
            .enumerate()
            .map(|(i, (sim, golden))| RunData {
                config: self.configs[i / per_config],
                workload: self.workloads[i % per_config],
                netlist: Arc::clone(&netlists[i / per_config]),
                sim,
                golden,
            })
            .collect()
    }
}

/// Maps `f` over `0..n`, preserving index order in the output.
///
/// With `threads <= 1` (or a trivial input) this is a plain serial loop; the
/// parallel path hands out indices through an atomic cursor to a scoped worker
/// pool and writes each result into its input-indexed slot, so the output is
/// identical to the serial path for any pure `f`.
pub(crate) fn parallel_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(threads, n, || (), |(), i| f(i))
}

/// [`parallel_map`] with per-worker mutable state: `init` builds one state
/// value per worker and `f` receives it alongside the index.
///
/// This is how the batch-inference engines hand each worker a reusable
/// [`FeatureScratch`](crate::features::FeatureScratch): the state lives as
/// long as the worker, so `f` can reuse buffers across every job the worker
/// claims without any sharing or locking.
///
/// When the effective worker count is 1, the closure runs **inline** on the
/// calling thread over one state value — no `thread::scope`, no per-slot
/// mutexes, no atomics (PR 1 measured that pure pool overhead costs ~8 % at
/// one core).  The output is bit-identical either way for any pure `f`,
/// pinned by the thread-invariance tests.
pub(crate) fn parallel_map_with<T, S, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.min(n);
    if workers <= 1 {
        // Serial fast path: inline, allocation-free aside from the output.
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(&mut state, i);
                    *slots[i].lock().expect("result slot poisoned") = Some(value);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::boom_configs;

    #[test]
    fn parallel_map_preserves_order_under_contention() {
        for threads in [1, 2, 5, 16] {
            let out = parallel_map(threads, 97, |i| i * i);
            assert_eq!(out, (0..97).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single_inputs() {
        assert_eq!(parallel_map(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(8, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn stages_share_one_netlist_per_configuration() {
        let cfgs = boom_configs();
        let configs = [cfgs[0], cfgs[14]];
        let workloads = [Workload::Dhrystone, Workload::Vvadd];
        let spec = CorpusSpec::fast().threads(4);
        let library = TechLibrary::tsmc40_like();
        let pipeline = SubstratePipeline::new(&configs, &workloads, &spec, &library);
        let runs = pipeline.run();
        assert_eq!(runs.len(), 4);
        // Both workloads of one configuration point at the same netlist allocation.
        assert!(Arc::ptr_eq(&runs[0].netlist, &runs[1].netlist));
        assert!(Arc::ptr_eq(&runs[2].netlist, &runs[3].netlist));
        assert!(!Arc::ptr_eq(&runs[0].netlist, &runs[2].netlist));
    }

    #[test]
    fn pipeline_matches_serial_generation_bit_for_bit() {
        let cfgs = boom_configs();
        let configs = [cfgs[0], cfgs[7], cfgs[14]];
        let workloads = [Workload::Dhrystone, Workload::Qsort];
        let library = TechLibrary::tsmc40_like();

        let serial_spec = CorpusSpec::fast().threads(1);
        let parallel_spec = CorpusSpec::fast().threads(6);
        let serial = SubstratePipeline::new(&configs, &workloads, &serial_spec, &library).run();
        let parallel = SubstratePipeline::new(&configs, &workloads, &parallel_spec, &library).run();

        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.config.id, p.config.id);
            assert_eq!(s.workload, p.workload);
            assert_eq!(s.netlist, p.netlist);
            assert_eq!(s.sim.counters, p.sim.counters);
            assert_eq!(s.golden.total_mw(), p.golden.total_mw());
        }
    }
}
