//! Cross-validation utilities.
//!
//! The paper evaluates fixed training sets (2 or 3 known configurations).  When an
//! architect actually has `k` known configurations, the natural robustness check is
//! leave-one-configuration-out cross-validation over those known configurations — it
//! estimates how well the few-shot model generalises without touching any additional
//! golden data.  This module provides that utility for every [`ModelKind`] registry
//! model; [`cross_validate`] is the AutoPower shorthand.

use crate::dataset::Corpus;
use crate::error::AutoPowerError;
use crate::evaluation::{AccuracySummary, PredictionPair};
use crate::power_model::ModelKind;
use autopower_config::ConfigId;

/// Result of leave-one-configuration-out cross-validation.
#[derive(Debug, Clone)]
pub struct CrossValidation {
    /// The model that was cross-validated.
    pub model: ModelKind,
    /// The configurations that participated.
    pub configs: Vec<ConfigId>,
    /// One accuracy summary per held-out configuration, in the same order as `configs`.
    pub folds: Vec<AccuracySummary>,
}

impl CrossValidation {
    /// Pooled accuracy over all folds (every held-out run counted once).
    ///
    /// # Panics
    ///
    /// Panics if there are no folds (which [`cross_validate`] never produces).
    pub fn pooled(&self) -> AccuracySummary {
        let pairs: Vec<PredictionPair> = self
            .folds
            .iter()
            .flat_map(|f| f.pairs.iter().copied())
            .collect();
        AccuracySummary::from_pairs(pairs)
    }

    /// Worst-fold MAPE — the pessimistic view an architect would plan around.
    ///
    /// NaN-safe: a fold with an undefined MAPE (e.g. from a degenerate golden
    /// total) makes the worst-fold figure NaN instead of being silently
    /// dropped, as `f64::max` would do.
    pub fn worst_fold_mape(&self) -> f64 {
        self.folds.iter().map(|f| f.mape).fold(0.0, |worst, mape| {
            if worst.is_nan() || mape.is_nan() {
                f64::NAN
            } else {
                worst.max(mape)
            }
        })
    }
}

/// Leave-one-configuration-out cross-validation of AutoPower over `configs`.
///
/// Shorthand for [`cross_validate_model`] with [`ModelKind::AutoPower`].
///
/// # Errors
///
/// See [`cross_validate_model`].
pub fn cross_validate(
    corpus: &Corpus,
    configs: &[ConfigId],
) -> Result<CrossValidation, AutoPowerError> {
    cross_validate_model(corpus, configs, ModelKind::AutoPower)
}

/// Leave-one-configuration-out cross-validation of any registry model over `configs`.
///
/// For every configuration in `configs`, a model of `kind` is trained on the remaining
/// ones and evaluated on the held-out configuration's runs.
///
/// # Errors
///
/// Returns an error if fewer than three configurations are given (each fold needs at
/// least two for training), if a configuration is missing from the corpus, or if any
/// fold fails to train.
pub fn cross_validate_model(
    corpus: &Corpus,
    configs: &[ConfigId],
    kind: ModelKind,
) -> Result<CrossValidation, AutoPowerError> {
    if configs.len() < 3 {
        return Err(AutoPowerError::NoTrainingConfigs);
    }
    let mut folds = Vec::with_capacity(configs.len());
    for &held_out in configs {
        let train: Vec<ConfigId> = configs.iter().copied().filter(|&c| c != held_out).collect();
        let model = kind.train(corpus, &train)?;
        let test_runs = corpus.runs_for(held_out);
        if test_runs.is_empty() {
            return Err(AutoPowerError::MissingConfig(held_out));
        }
        let pairs: Vec<PredictionPair> = test_runs
            .iter()
            .map(|run| PredictionPair {
                config: run.config.id,
                workload: run.workload,
                truth: run.golden.total_mw(),
                prediction: model.predict_total(run),
            })
            .collect();
        folds.push(AccuracySummary::try_from_pairs(pairs)?);
    }
    Ok(CrossValidation {
        model: kind,
        configs: configs.to_vec(),
        folds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusSpec;
    use autopower_config::{boom_configs, Workload};

    fn corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[7], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn loocv_produces_one_fold_per_configuration() {
        let c = corpus();
        let ids = c.config_ids();
        let xv = cross_validate(&c, &ids).unwrap();
        assert_eq!(xv.model, ModelKind::AutoPower);
        assert_eq!(xv.folds.len(), 3);
        let pooled = xv.pooled();
        assert_eq!(pooled.pairs.len(), c.runs().len());
        assert!(pooled.mape < 0.35, "pooled MAPE {}", pooled.mape);
        assert!(xv.worst_fold_mape() >= pooled.mape - 1e-12);
    }

    #[test]
    fn worst_fold_mape_propagates_nan_folds() {
        let fold = |mape: f64| AccuracySummary {
            mape,
            r_squared: 1.0,
            pearson: 1.0,
            pairs: vec![PredictionPair {
                config: ConfigId::new(1),
                workload: Workload::Vvadd,
                truth: 1.0,
                prediction: 1.0,
            }],
        };
        let healthy = CrossValidation {
            model: ModelKind::AutoPower,
            configs: vec![ConfigId::new(1), ConfigId::new(2)],
            folds: vec![fold(0.05), fold(0.12)],
        };
        assert_eq!(healthy.worst_fold_mape(), 0.12);
        let poisoned = CrossValidation {
            model: ModelKind::AutoPower,
            configs: vec![ConfigId::new(1), ConfigId::new(2)],
            folds: vec![fold(f64::NAN), fold(0.12)],
        };
        assert!(poisoned.worst_fold_mape().is_nan());
    }

    #[test]
    fn loocv_runs_under_every_registry_model() {
        let c = corpus();
        let ids = c.config_ids();
        for kind in [ModelKind::McpatCalib, ModelKind::McpatCalibComponent] {
            let xv = cross_validate_model(&c, &ids, kind).unwrap();
            assert_eq!(xv.model, kind);
            assert_eq!(xv.folds.len(), 3);
            let pooled = xv.pooled();
            assert_eq!(pooled.pairs.len(), c.runs().len());
            assert!(pooled.mape.is_finite());
        }
    }

    #[test]
    fn loocv_requires_at_least_three_configurations() {
        let c = corpus();
        let err = cross_validate(&c, &[ConfigId::new(1), ConfigId::new(15)]);
        assert!(matches!(err, Err(AutoPowerError::NoTrainingConfigs)));
    }

    #[test]
    fn loocv_rejects_unknown_configurations() {
        let c = corpus();
        let err = cross_validate(
            &c,
            &[
                ConfigId::new(1),
                ConfigId::new(8),
                ConfigId::new(15),
                ConfigId::new(2),
            ],
        );
        assert!(err.is_err());
    }
}
