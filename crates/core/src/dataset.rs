//! Corpus generation: running the full substrate flow (synthesis → performance
//! simulation → golden power) for a set of configurations and workloads.
//!
//! A [`Corpus`] is the in-memory equivalent of the paper's data collection: for every
//! `(configuration, workload)` pair it holds the synthesized netlist, the performance
//! simulation (event parameters + true activity + intervals) and the golden power
//! report.  Models are then trained on the runs of the *known* configurations and
//! evaluated on the rest; the evaluation only ever reads `H`, `E` and the golden totals.

use std::sync::Arc;

use autopower_config::{ConfigId, CpuConfig, Workload};
use autopower_netlist::Netlist;
use autopower_perfsim::{SimConfig, SimResult};
use autopower_powersim::{evaluate_trace, PowerReport, PowerTrace};
use autopower_techlib::TechLibrary;

use crate::pipeline::SubstratePipeline;

/// Everything the flow produces for one `(configuration, workload)` pair.
#[derive(Debug, Clone)]
pub struct RunData {
    /// The simulated configuration.
    pub config: CpuConfig,
    /// The executed workload.
    pub workload: Workload,
    /// Synthesized netlist of the configuration.  Synthesis runs once per
    /// configuration; all of that configuration's runs share this allocation.
    pub netlist: Arc<Netlist>,
    /// Performance-simulation result (event parameters, true activity, intervals).
    pub sim: SimResult,
    /// Golden average power report.
    pub golden: PowerReport,
}

/// Parameters of corpus generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// Performance-simulation knobs (instruction budget, interval length, distortion).
    pub sim: SimConfig,
    /// Worker threads of the substrate pipeline: `0` (the default) uses one
    /// worker per available core, `1` generates serially, and any other value
    /// is an explicit pool size.  The corpus is bit-identical for every value.
    pub threads: usize,
}

impl CorpusSpec {
    /// The paper-scale settings (50 k instructions per run, 8 % event distortion).
    pub fn paper() -> Self {
        Self {
            sim: SimConfig::paper(),
            threads: 0,
        }
    }

    /// Small, fast settings for tests and doctests.
    pub fn fast() -> Self {
        Self {
            sim: SimConfig::fast(),
            threads: 0,
        }
    }

    /// Same settings with a different event-distortion level (used by the simulator
    /// inaccuracy ablation).
    pub fn with_distortion(mut self, distortion: f64) -> Self {
        self.sim.event_distortion = distortion;
        self
    }

    /// Same settings with an explicit worker-thread count (`0` = one per
    /// available core, `1` = serial generation).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker-thread count generation will actually use: the explicit
    /// setting, or the available parallelism when the setting is `0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self::paper()
    }
}

/// A complete data set: one [`RunData`] per `(configuration, workload)` pair, plus the
/// technology library every run was evaluated with.
#[derive(Debug, Clone)]
pub struct Corpus {
    library: TechLibrary,
    spec: CorpusSpec,
    runs: Vec<RunData>,
}

impl Corpus {
    /// Runs the full flow for every `(configuration, workload)` pair.
    ///
    /// Generation runs on the staged substrate pipeline
    /// ([`SubstratePipeline`]) with the worker count of
    /// [`CorpusSpec::threads`], and is deterministic for every worker count:
    /// the same inputs always produce the same corpus, bit for bit.
    pub fn generate(configs: &[CpuConfig], workloads: &[Workload], spec: &CorpusSpec) -> Self {
        let library = TechLibrary::tsmc40_like();
        Self::generate_with_library(configs, workloads, spec, library)
    }

    /// Like [`Corpus::generate`] but with an explicit technology library.
    pub fn generate_with_library(
        configs: &[CpuConfig],
        workloads: &[Workload],
        spec: &CorpusSpec,
        library: TechLibrary,
    ) -> Self {
        let runs = SubstratePipeline::new(configs, workloads, spec, &library).run();
        Self {
            library,
            spec: *spec,
            runs,
        }
    }

    /// The technology library the corpus was generated with.
    pub fn library(&self) -> &TechLibrary {
        &self.library
    }

    /// The generation parameters.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// All runs.
    pub fn runs(&self) -> &[RunData] {
        &self.runs
    }

    /// All runs of one configuration.
    pub fn runs_for(&self, config: ConfigId) -> Vec<&RunData> {
        self.runs.iter().filter(|r| r.config.id == config).collect()
    }

    /// All runs of the given training configurations.
    pub fn training_runs(&self, train_configs: &[ConfigId]) -> Vec<&RunData> {
        self.runs
            .iter()
            .filter(|r| train_configs.contains(&r.config.id))
            .collect()
    }

    /// All runs *not* belonging to the given training configurations.
    pub fn test_runs(&self, train_configs: &[ConfigId]) -> Vec<&RunData> {
        self.runs
            .iter()
            .filter(|r| !train_configs.contains(&r.config.id))
            .collect()
    }

    /// One specific run, if present.
    pub fn run(&self, config: ConfigId, workload: Workload) -> Option<&RunData> {
        self.runs
            .iter()
            .find(|r| r.config.id == config && r.workload == workload)
    }

    /// The distinct configuration identifiers present in the corpus, in insertion order.
    pub fn config_ids(&self) -> Vec<ConfigId> {
        let mut ids = Vec::new();
        for r in &self.runs {
            if !ids.contains(&r.config.id) {
                ids.push(r.config.id);
            }
        }
        ids
    }

    /// The distinct workloads present in the corpus, in insertion order.
    pub fn workloads(&self) -> Vec<Workload> {
        let mut ws = Vec::new();
        for r in &self.runs {
            if !ws.contains(&r.workload) {
                ws.push(r.workload);
            }
        }
        ws
    }

    /// Golden time-based power trace of one run (computed on demand from the run's
    /// intervals).
    pub fn golden_trace(&self, run: &RunData) -> PowerTrace {
        evaluate_trace(&run.netlist, &run.sim, &self.library)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::boom_configs;

    fn small_corpus() -> Corpus {
        let cfgs = boom_configs();
        Corpus::generate(
            &[cfgs[0], cfgs[14]],
            &[Workload::Dhrystone, Workload::Vvadd],
            &CorpusSpec::fast(),
        )
    }

    #[test]
    fn corpus_contains_every_pair() {
        let c = small_corpus();
        assert_eq!(c.runs().len(), 4);
        assert_eq!(c.config_ids().len(), 2);
        assert_eq!(c.workloads().len(), 2);
        assert!(c.run(ConfigId::new(1), Workload::Vvadd).is_some());
        assert!(c.run(ConfigId::new(8), Workload::Vvadd).is_none());
    }

    #[test]
    fn training_and_test_split_partitions_the_runs() {
        let c = small_corpus();
        let train = c.training_runs(&[ConfigId::new(1)]);
        let test = c.test_runs(&[ConfigId::new(1)]);
        assert_eq!(train.len(), 2);
        assert_eq!(test.len(), 2);
        assert!(train.iter().all(|r| r.config.id == ConfigId::new(1)));
        assert!(test.iter().all(|r| r.config.id == ConfigId::new(15)));
    }

    #[test]
    fn golden_power_is_attached_and_positive() {
        let c = small_corpus();
        for r in c.runs() {
            assert!(r.golden.total_mw() > 0.0);
            assert_eq!(r.golden.config, r.config.id);
            assert_eq!(r.golden.workload, r.workload);
        }
    }

    #[test]
    fn golden_trace_matches_run_intervals() {
        let c = small_corpus();
        let run = &c.runs()[0];
        let trace = c.golden_trace(run);
        assert_eq!(trace.samples.len(), run.sim.intervals.len());
    }

    #[test]
    fn distortion_override_is_applied() {
        let spec = CorpusSpec::fast().with_distortion(0.0);
        assert_eq!(spec.sim.event_distortion, 0.0);
    }
}
