//! Workload profiles: the per-benchmark characteristics that drive the synthetic
//! instruction streams.

use autopower_config::Workload;
use serde::{Deserialize, Serialize};

/// Fractions of each instruction class in the dynamic instruction stream.
///
/// The six fractions must sum to 1 (within floating-point tolerance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstrMix {
    /// Simple integer ALU operations.
    pub int_alu: f64,
    /// Integer multiply / divide.
    pub mul_div: f64,
    /// Floating-point operations.
    pub fp: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Conditional branches and jumps.
    pub branch: f64,
}

impl InstrMix {
    /// Creates a mix, checking that the fractions are non-negative and sum to ≈1.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the sum deviates from 1 by more than 1e-6.
    pub fn new(int_alu: f64, mul_div: f64, fp: f64, load: f64, store: f64, branch: f64) -> Self {
        let mix = Self {
            int_alu,
            mul_div,
            fp,
            load,
            store,
            branch,
        };
        assert!(
            mix.fractions().iter().all(|&f| f >= 0.0),
            "instruction mix fractions must be non-negative"
        );
        let sum: f64 = mix.fractions().iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "instruction mix fractions must sum to 1 (got {sum})"
        );
        mix
    }

    /// The six fractions in a fixed order (int_alu, mul_div, fp, load, store, branch).
    pub fn fractions(&self) -> [f64; 6] {
        [
            self.int_alu,
            self.mul_div,
            self.fp,
            self.load,
            self.store,
            self.branch,
        ]
    }

    /// Fraction of memory instructions (loads + stores).
    pub fn memory_fraction(&self) -> f64 {
        self.load + self.store
    }
}

/// One execution phase of a workload.
///
/// Small riscv-tests workloads have a single phase; GEMM and SPMM alternate between
/// phases with different memory intensity, which is what makes their 50-cycle power
/// traces interesting (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Relative length of the phase (weights are normalised over the phase list).
    pub weight: f64,
    /// Instruction mix during the phase.
    pub mix: InstrMix,
    /// Data working-set size in bytes touched during the phase.
    pub data_working_set: u64,
    /// Instruction working-set (code footprint) in bytes.
    pub code_working_set: u64,
    /// Probability that a branch outcome is effectively data-dependent (hard to predict).
    pub branch_irregularity: f64,
    /// Average register dependency distance (higher ⇒ more instruction-level parallelism).
    pub ilp: f64,
    /// Fraction of loads that stream through memory with unit stride (prefetch friendly).
    pub streaming_fraction: f64,
}

/// The full profile of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Which workload this profile describes.
    pub workload: Workload,
    /// Execution phases, in order; the stream generator cycles through them.
    pub phases: Vec<Phase>,
    /// Nominal dynamic instruction count of one full run of the benchmark.
    pub nominal_instructions: u64,
    /// Number of distinct memory pages touched (drives TLB behaviour).
    pub footprint_pages: u32,
}

impl WorkloadProfile {
    /// Weighted-average instruction mix over all phases.
    pub fn mix(&self) -> InstrMix {
        let total_w: f64 = self.phases.iter().map(|p| p.weight).sum();
        let mut acc = [0.0f64; 6];
        for p in &self.phases {
            for (a, f) in acc.iter_mut().zip(p.mix.fractions()) {
                *a += p.weight / total_w * f;
            }
        }
        InstrMix::new(acc[0], acc[1], acc[2], acc[3], acc[4], acc[5])
    }

    /// Weighted-average data working set in bytes.
    pub fn data_working_set(&self) -> f64 {
        let total_w: f64 = self.phases.iter().map(|p| p.weight).sum();
        self.phases
            .iter()
            .map(|p| p.weight / total_w * p.data_working_set as f64)
            .sum()
    }

    /// Weighted-average branch irregularity.
    pub fn branch_irregularity(&self) -> f64 {
        let total_w: f64 = self.phases.iter().map(|p| p.weight).sum();
        self.phases
            .iter()
            .map(|p| p.weight / total_w * p.branch_irregularity)
            .sum()
    }

    /// Weighted-average instruction-level parallelism.
    pub fn ilp(&self) -> f64 {
        let total_w: f64 = self.phases.iter().map(|p| p.weight).sum();
        self.phases.iter().map(|p| p.weight / total_w * p.ilp).sum()
    }
}

// The catalogue below reads best as one compact positional row per workload.
#[allow(clippy::too_many_arguments)]
fn single_phase(
    workload: Workload,
    mix: InstrMix,
    data_ws: u64,
    code_ws: u64,
    branch_irr: f64,
    ilp: f64,
    streaming: f64,
    instructions: u64,
    pages: u32,
) -> WorkloadProfile {
    WorkloadProfile {
        workload,
        phases: vec![Phase {
            weight: 1.0,
            mix,
            data_working_set: data_ws,
            code_working_set: code_ws,
            branch_irregularity: branch_irr,
            ilp,
            streaming_fraction: streaming,
        }],
        nominal_instructions: instructions,
        footprint_pages: pages,
    }
}

/// Returns the profile of a workload.
///
/// The profiles are fixed, documented constants — they play the role of the benchmark
/// binaries in the paper's flow.
pub fn profile(workload: Workload) -> WorkloadProfile {
    match workload {
        Workload::Dhrystone => single_phase(
            workload,
            InstrMix::new(0.46, 0.02, 0.00, 0.22, 0.12, 0.18),
            6 * 1024,
            10 * 1024,
            0.12,
            2.4,
            0.25,
            200_000,
            8,
        ),
        Workload::Median => single_phase(
            workload,
            InstrMix::new(0.38, 0.01, 0.00, 0.30, 0.13, 0.18),
            16 * 1024,
            4 * 1024,
            0.30,
            2.1,
            0.45,
            120_000,
            10,
        ),
        Workload::Multiply => single_phase(
            workload,
            InstrMix::new(0.34, 0.28, 0.00, 0.18, 0.08, 0.12),
            4 * 1024,
            3 * 1024,
            0.08,
            3.0,
            0.30,
            150_000,
            6,
        ),
        Workload::Qsort => single_phase(
            workload,
            InstrMix::new(0.36, 0.01, 0.00, 0.26, 0.15, 0.22),
            48 * 1024,
            5 * 1024,
            0.55,
            1.8,
            0.15,
            180_000,
            20,
        ),
        Workload::Rsort => single_phase(
            workload,
            InstrMix::new(0.33, 0.02, 0.00, 0.29, 0.24, 0.12),
            96 * 1024,
            4 * 1024,
            0.15,
            2.6,
            0.55,
            220_000,
            32,
        ),
        Workload::Towers => single_phase(
            workload,
            InstrMix::new(0.40, 0.00, 0.00, 0.21, 0.19, 0.20),
            8 * 1024,
            3 * 1024,
            0.22,
            1.7,
            0.20,
            100_000,
            7,
        ),
        Workload::Spmv => single_phase(
            workload,
            InstrMix::new(0.27, 0.02, 0.22, 0.31, 0.06, 0.12),
            160 * 1024,
            4 * 1024,
            0.35,
            2.3,
            0.20,
            200_000,
            48,
        ),
        Workload::Vvadd => single_phase(
            workload,
            InstrMix::new(0.26, 0.00, 0.25, 0.26, 0.17, 0.06),
            64 * 1024,
            2 * 1024,
            0.03,
            3.4,
            0.90,
            140_000,
            24,
        ),
        Workload::Gemm => WorkloadProfile {
            workload,
            phases: vec![
                // Blocked inner-product compute phase: FP heavy, cache friendly.
                Phase {
                    weight: 0.62,
                    mix: InstrMix::new(0.22, 0.01, 0.38, 0.26, 0.05, 0.08),
                    data_working_set: 32 * 1024,
                    code_working_set: 2 * 1024,
                    branch_irregularity: 0.04,
                    ilp: 3.6,
                    streaming_fraction: 0.70,
                },
                // Block refill phase: streaming loads of the next tiles.
                Phase {
                    weight: 0.26,
                    mix: InstrMix::new(0.26, 0.01, 0.12, 0.42, 0.11, 0.08),
                    data_working_set: 256 * 1024,
                    code_working_set: 2 * 1024,
                    branch_irregularity: 0.06,
                    ilp: 3.0,
                    streaming_fraction: 0.92,
                },
                // Result write-back phase: store heavy.
                Phase {
                    weight: 0.12,
                    mix: InstrMix::new(0.27, 0.01, 0.10, 0.16, 0.38, 0.08),
                    data_working_set: 128 * 1024,
                    code_working_set: 2 * 1024,
                    branch_irregularity: 0.05,
                    ilp: 2.8,
                    streaming_fraction: 0.88,
                },
            ],
            nominal_instructions: 2_000_000,
            footprint_pages: 96,
        },
        Workload::Spmm => WorkloadProfile {
            workload,
            phases: vec![
                // Row-pointer traversal: branchy, irregular loads.
                Phase {
                    weight: 0.30,
                    mix: InstrMix::new(0.34, 0.01, 0.05, 0.34, 0.06, 0.20),
                    data_working_set: 192 * 1024,
                    code_working_set: 3 * 1024,
                    branch_irregularity: 0.50,
                    ilp: 1.9,
                    streaming_fraction: 0.20,
                },
                // Accumulation over non-zeros: FP with gather loads.
                Phase {
                    weight: 0.52,
                    mix: InstrMix::new(0.24, 0.01, 0.30, 0.32, 0.05, 0.08),
                    data_working_set: 320 * 1024,
                    code_working_set: 3 * 1024,
                    branch_irregularity: 0.25,
                    ilp: 2.6,
                    streaming_fraction: 0.30,
                },
                // Output row flush: stores.
                Phase {
                    weight: 0.18,
                    mix: InstrMix::new(0.28, 0.01, 0.08, 0.18, 0.35, 0.10),
                    data_working_set: 96 * 1024,
                    code_working_set: 3 * 1024,
                    branch_irregularity: 0.10,
                    ilp: 2.9,
                    streaming_fraction: 0.80,
                },
            ],
            nominal_instructions: 2_400_000,
            footprint_pages: 128,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_a_valid_profile() {
        for w in Workload::ALL {
            let p = profile(w);
            assert_eq!(p.workload, w);
            assert!(!p.phases.is_empty());
            assert!(p.nominal_instructions > 0);
            assert!(p.footprint_pages > 0);
            // mix() asserts the per-phase mixes and the weighted mix are normalised.
            let mix = p.mix();
            assert!((mix.fractions().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_workloads_are_phased() {
        assert!(profile(Workload::Gemm).phases.len() >= 3);
        assert!(profile(Workload::Spmm).phases.len() >= 3);
        for w in Workload::RISCV_TESTS {
            assert_eq!(profile(w).phases.len(), 1);
        }
    }

    #[test]
    fn workloads_span_distinct_regimes() {
        let qsort = profile(Workload::Qsort);
        let vvadd = profile(Workload::Vvadd);
        // qsort is far harder on the branch predictor than vvadd.
        assert!(qsort.branch_irregularity() > 5.0 * vvadd.branch_irregularity());
        // vvadd has far more instruction-level parallelism.
        assert!(vvadd.ilp() > qsort.ilp());
        // spmv touches much more data than dhrystone.
        assert!(
            profile(Workload::Spmv).data_working_set()
                > 10.0 * profile(Workload::Dhrystone).data_working_set()
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_rejected() {
        let _ = InstrMix::new(0.5, 0.1, 0.1, 0.1, 0.1, 0.5);
    }

    #[test]
    fn memory_fraction_is_load_plus_store() {
        let m = InstrMix::new(0.4, 0.0, 0.0, 0.3, 0.1, 0.2);
        assert!((m.memory_fraction() - 0.4).abs() < 1e-12);
    }
}
