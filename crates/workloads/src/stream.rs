//! Synthetic instruction stream generation.

use crate::profile::{profile, Phase, WorkloadProfile};
use autopower_config::{seed, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Class of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrKind {
    /// Simple integer ALU operation.
    IntAlu,
    /// Integer multiply or divide.
    MulDiv,
    /// Floating-point operation.
    Fp,
    /// Load.
    Load,
    /// Store.
    Store,
    /// Conditional branch or jump.
    Branch,
}

impl InstrKind {
    /// All instruction kinds in a stable order.
    pub const ALL: [InstrKind; 6] = [
        InstrKind::IntAlu,
        InstrKind::MulDiv,
        InstrKind::Fp,
        InstrKind::Load,
        InstrKind::Store,
        InstrKind::Branch,
    ];

    /// Whether the instruction accesses data memory.
    pub fn is_memory(self) -> bool {
        matches!(self, InstrKind::Load | InstrKind::Store)
    }
}

/// One dynamic instruction of a synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Instruction class.
    pub kind: InstrKind,
    /// Program counter (byte address within the code working set).
    pub pc: u64,
    /// Distance (in instructions) to the most recent producer of this instruction's
    /// source operand; larger distances expose more instruction-level parallelism.
    pub dep_distance: u32,
    /// Data address for loads and stores, `None` otherwise.
    pub addr: Option<u64>,
    /// For branches: the static branch site identifier (a small integer).
    pub branch_site: Option<u16>,
    /// For branches: the resolved direction.
    pub taken: bool,
    /// Index of the workload phase this instruction was generated in.
    pub phase: u8,
}

/// Deterministic generator of synthetic instruction streams for one workload.
///
/// The generator is an [`Iterator`] over [`Instruction`]s and never terminates on its
/// own; the consumer decides how many instructions to execute (`take(n)` or the
/// simulator's instruction budget).
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    profile: WorkloadProfile,
    rng: StdRng,
    /// Per-phase chunk lengths (instructions) used to cycle through phases.
    chunk_lengths: Vec<u64>,
    phase_index: usize,
    instrs_left_in_phase: u64,
    emitted: u64,
    /// Streaming pointer per phase for unit-stride accesses.
    stream_ptr: u64,
    /// Static branch-site biases (probability taken), indexed by site id.
    site_bias: Vec<f64>,
    /// Loop program counter within the code working set.
    pc: u64,
    data_base: u64,
    code_base: u64,
}

/// Number of instructions of one pass over the phase schedule.
const PHASE_SCHEDULE_LENGTH: u64 = 20_000;
/// Number of distinct static branch sites the generator models.
const BRANCH_SITES: usize = 64;

impl StreamGenerator {
    /// Creates a generator for `workload`, seeded deterministically from `seed_value`.
    pub fn new(workload: Workload, seed_value: u64) -> Self {
        Self::with_profile(profile(workload), seed_value)
    }

    /// Creates a generator from an explicit profile (useful for custom workloads).
    ///
    /// # Panics
    ///
    /// Panics if the profile has no phases.
    pub fn with_profile(profile: WorkloadProfile, seed_value: u64) -> Self {
        assert!(
            !profile.phases.is_empty(),
            "profile must have at least one phase"
        );
        let mixed = seed::combine(seed::hash_str(profile.workload.name()), seed_value);
        let mut rng = StdRng::seed_from_u64(mixed);
        let total_w: f64 = profile.phases.iter().map(|p| p.weight).sum();
        let chunk_lengths: Vec<u64> = profile
            .phases
            .iter()
            .map(|p| ((p.weight / total_w) * PHASE_SCHEDULE_LENGTH as f64).max(1.0) as u64)
            .collect();
        let site_bias: Vec<f64> = (0..BRANCH_SITES)
            .map(|_| if rng.gen_bool(0.5) { 0.92 } else { 0.12 })
            .collect();
        let first_chunk = chunk_lengths[0];
        Self {
            profile,
            rng,
            chunk_lengths,
            phase_index: 0,
            instrs_left_in_phase: first_chunk,
            emitted: 0,
            stream_ptr: 0,
            site_bias,
            pc: 0,
            data_base: 0x8000_0000,
            code_base: 0x1000_0000,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn current_phase(&self) -> &Phase {
        &self.profile.phases[self.phase_index]
    }

    fn advance_phase_if_needed(&mut self) {
        if self.instrs_left_in_phase == 0 {
            self.phase_index = (self.phase_index + 1) % self.profile.phases.len();
            self.instrs_left_in_phase = self.chunk_lengths[self.phase_index];
        }
    }

    fn pick_kind(&mut self) -> InstrKind {
        let mix = self.current_phase().mix;
        let r: f64 = self.rng.gen();
        let f = mix.fractions();
        let mut acc = 0.0;
        for (kind, frac) in InstrKind::ALL.iter().zip(f) {
            acc += frac;
            if r < acc {
                return *kind;
            }
        }
        InstrKind::IntAlu
    }

    fn gen_data_addr(&mut self) -> u64 {
        let phase = *self.current_phase();
        let ws = phase.data_working_set.max(64);
        if self.rng.gen_bool(phase.streaming_fraction) {
            // Unit-stride streaming within the working set.
            self.stream_ptr = (self.stream_ptr + 8) % ws;
            self.data_base + self.stream_ptr
        } else if self.rng.gen_bool(0.6) {
            // Hot region: the first 1/8th of the working set absorbs most irregular
            // accesses (stack, frequently reused indices).
            self.data_base + self.rng.gen_range(0..(ws / 8).max(64))
        } else {
            // Cold irregular access anywhere in the working set.
            self.data_base + self.rng.gen_range(0..ws)
        }
    }

    fn gen_pc(&mut self, kind: InstrKind, taken: bool) -> u64 {
        let code_ws = self.current_phase().code_working_set.max(256);
        if kind == InstrKind::Branch && taken {
            // Mostly backward branches (loops) with occasional far calls.
            if self.rng.gen_bool(0.85) {
                let back = self.rng.gen_range(16..512).min(self.pc.max(16));
                self.pc = self.pc.saturating_sub(back);
            } else {
                self.pc = self.rng.gen_range(0..code_ws) & !3;
            }
        } else {
            self.pc = (self.pc + 4) % code_ws;
        }
        self.code_base + self.pc
    }
}

impl Iterator for StreamGenerator {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        self.advance_phase_if_needed();
        let phase = *self.current_phase();
        let kind = self.pick_kind();

        let (branch_site, taken) = if kind == InstrKind::Branch {
            // Hot-site skew: real programs execute a few branch sites most of the time.
            let site = ((self.rng.gen::<f64>().powi(2)) * BRANCH_SITES as f64) as u16;
            let taken = if self.rng.gen_bool(phase.branch_irregularity) {
                // Data-dependent branch: effectively a coin flip.
                self.rng.gen_bool(0.5)
            } else {
                self.rng.gen_bool(self.site_bias[site as usize])
            };
            (Some(site), taken)
        } else {
            (None, false)
        };

        let addr = if kind.is_memory() {
            Some(self.gen_data_addr())
        } else {
            None
        };

        let pc = self.gen_pc(kind, taken);

        // Dependency distance: geometric-ish around the phase ILP.
        let ilp = phase.ilp.max(1.0);
        let dep_distance = 1 + (self.rng.gen::<f64>() * 2.0 * ilp) as u32;

        self.instrs_left_in_phase -= 1;
        self.emitted += 1;

        Some(Instruction {
            kind,
            pc,
            dep_distance,
            addr,
            branch_site,
            taken,
            phase: self.phase_index as u8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn generator_is_deterministic() {
        let a: Vec<_> = StreamGenerator::new(Workload::Qsort, 7).take(500).collect();
        let b: Vec<_> = StreamGenerator::new(Workload::Qsort, 7).take(500).collect();
        assert_eq!(a, b);
        let c: Vec<_> = StreamGenerator::new(Workload::Qsort, 8).take(500).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn mix_matches_profile_roughly() {
        let n = 40_000usize;
        let instrs: Vec<_> = StreamGenerator::new(Workload::Vvadd, 1).take(n).collect();
        let mut counts: HashMap<InstrKind, usize> = HashMap::new();
        for i in &instrs {
            *counts.entry(i.kind).or_default() += 1;
        }
        let target = profile(Workload::Vvadd).mix();
        let load_frac = counts[&InstrKind::Load] as f64 / n as f64;
        assert!(
            (load_frac - target.load).abs() < 0.03,
            "load fraction {load_frac}"
        );
        let br_frac = *counts.get(&InstrKind::Branch).unwrap_or(&0) as f64 / n as f64;
        assert!(
            (br_frac - target.branch).abs() < 0.02,
            "branch fraction {br_frac}"
        );
    }

    #[test]
    fn memory_instructions_have_addresses() {
        for i in StreamGenerator::new(Workload::Rsort, 3).take(5_000) {
            if i.kind.is_memory() {
                assert!(i.addr.is_some());
            } else {
                assert!(i.addr.is_none());
            }
            if i.kind == InstrKind::Branch {
                assert!(i.branch_site.is_some());
            }
        }
    }

    #[test]
    fn phased_workloads_visit_all_phases() {
        let phases: std::collections::HashSet<u8> = StreamGenerator::new(Workload::Gemm, 11)
            .take(60_000)
            .map(|i| i.phase)
            .collect();
        assert_eq!(phases.len(), profile(Workload::Gemm).phases.len());
    }

    #[test]
    fn streaming_workload_produces_sequential_addresses() {
        // vvadd has 90 % streaming accesses: consecutive memory addresses should very
        // often differ by exactly the stride.
        let addrs: Vec<u64> = StreamGenerator::new(Workload::Vvadd, 2)
            .take(20_000)
            .filter_map(|i| i.addr)
            .collect();
        let sequential = addrs
            .windows(2)
            .filter(|w| w[1] == w[0] + 8 || w[1] < w[0])
            .count();
        assert!(sequential as f64 / (addrs.len() - 1) as f64 > 0.6);
    }

    proptest! {
        /// Addresses stay within the declared working set window for every workload.
        #[test]
        fn addresses_within_working_set(widx in 0usize..10, s in 0u64..1000) {
            let w = Workload::ALL[widx];
            let prof = profile(w);
            let max_ws = prof.phases.iter().map(|p| p.data_working_set).max().unwrap();
            for i in StreamGenerator::new(w, s).take(2_000) {
                if let Some(a) = i.addr {
                    prop_assert!(a >= 0x8000_0000);
                    prop_assert!(a < 0x8000_0000 + max_ws);
                }
            }
        }

        /// Dependency distances are strictly positive and bounded by a small multiple of
        /// the phase ILP.
        #[test]
        fn dep_distance_bounds(s in 0u64..200) {
            for i in StreamGenerator::new(Workload::Gemm, s).take(2_000) {
                prop_assert!(i.dep_distance >= 1);
                prop_assert!(i.dep_distance <= 16);
            }
        }
    }
}
