//! Workload substrate: profiles and synthetic instruction streams.
//!
//! The paper drives its evaluation with eight riscv-tests benchmarks (average power,
//! Figs. 4–8) and two large kernels, GEMM and SPMM, for time-based power-trace
//! prediction (Table IV).  We do not ship RISC-V binaries; instead each workload is
//! described by a [`WorkloadProfile`] — instruction mix, branch behaviour, memory
//! working sets, instruction-level parallelism and phase structure — from which
//! [`StreamGenerator`] produces a deterministic synthetic instruction stream.  The
//! cycle-level performance simulator (`autopower-perfsim`) executes that stream.
//!
//! The profiles are chosen so the ten workloads span clearly distinct activity regimes
//! (branchy vs. streaming, cache-friendly vs. irregular, integer vs. floating point),
//! which is the property the power-model evaluation actually depends on.
//!
//! # Example
//!
//! ```
//! use autopower_config::Workload;
//! use autopower_workloads::{profile, StreamGenerator};
//!
//! let prof = profile(Workload::Qsort);
//! assert!(prof.mix().branch > 0.1); // qsort is branchy
//! let mut gen = StreamGenerator::new(Workload::Qsort, 42);
//! let instrs: Vec<_> = gen.take(1000).collect();
//! assert_eq!(instrs.len(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod features;
mod profile;
mod stream;

pub use features::ProgramFeatures;
pub use profile::{profile, InstrMix, Phase, WorkloadProfile};
pub use stream::{InstrKind, Instruction, StreamGenerator};
