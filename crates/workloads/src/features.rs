//! Program-level features.
//!
//! Section II-B of the paper: the SRAM activity model additionally consumes
//! "program-level features that are independent of microarchitecture, such as the number
//! of branch instructions", because they are not affected by performance-simulator
//! inaccuracy.  This module derives exactly that kind of feature from a workload profile.

use crate::profile::WorkloadProfile;
use autopower_config::Workload;
use serde::{Deserialize, Serialize};

/// Microarchitecture-independent features of one workload.
///
/// These depend only on the program (the workload profile), never on the CPU
/// configuration or on the performance simulator, and are therefore immune to simulator
/// inaccuracy — the property the paper exploits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramFeatures {
    /// Total dynamic instruction count of the nominal run.
    pub instruction_count: f64,
    /// Number of dynamic branch instructions.
    pub branch_count: f64,
    /// Number of dynamic load instructions.
    pub load_count: f64,
    /// Number of dynamic store instructions.
    pub store_count: f64,
    /// Number of dynamic floating-point instructions.
    pub fp_count: f64,
    /// Data working-set size in bytes.
    pub data_working_set: f64,
    /// Branch irregularity (fraction of effectively data-dependent branches).
    pub branch_irregularity: f64,
    /// Average register dependency distance.
    pub ilp: f64,
    /// Number of distinct memory pages touched.
    pub footprint_pages: f64,
}

impl ProgramFeatures {
    /// Derives the program-level features of a workload from its profile.
    pub fn of(workload: Workload) -> Self {
        Self::from_profile(&crate::profile::profile(workload))
    }

    /// Derives the program-level features from an explicit profile.
    pub fn from_profile(profile: &WorkloadProfile) -> Self {
        let mix = profile.mix();
        let n = profile.nominal_instructions as f64;
        Self {
            instruction_count: n,
            branch_count: n * mix.branch,
            load_count: n * mix.load,
            store_count: n * mix.store,
            fp_count: n * mix.fp,
            data_working_set: profile.data_working_set(),
            branch_irregularity: profile.branch_irregularity(),
            ilp: profile.ilp(),
            footprint_pages: profile.footprint_pages as f64,
        }
    }

    /// The features as a fixed-order vector, for use in ML feature matrices.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(Self::names().len());
        self.push_into(&mut out);
        out
    }

    /// Appends the features to `out` in [`ProgramFeatures::to_vec`] order
    /// (the allocation-free twin used by the batch inference hot path).
    pub fn push_into(&self, out: &mut Vec<f64>) {
        out.extend([
            self.instruction_count,
            self.branch_count,
            self.load_count,
            self.store_count,
            self.fp_count,
            self.data_working_set,
            self.branch_irregularity,
            self.ilp,
            self.footprint_pages,
        ]);
    }

    /// Names of the features returned by [`ProgramFeatures::to_vec`], in the same order.
    pub fn names() -> &'static [&'static str] {
        &[
            "prog_instruction_count",
            "prog_branch_count",
            "prog_load_count",
            "prog_store_count",
            "prog_fp_count",
            "prog_data_working_set",
            "prog_branch_irregularity",
            "prog_ilp",
            "prog_footprint_pages",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_matches_names() {
        let f = ProgramFeatures::of(Workload::Qsort);
        assert_eq!(f.to_vec().len(), ProgramFeatures::names().len());
    }

    #[test]
    fn features_distinguish_workloads() {
        let qsort = ProgramFeatures::of(Workload::Qsort);
        let vvadd = ProgramFeatures::of(Workload::Vvadd);
        assert!(qsort.branch_irregularity > vvadd.branch_irregularity);
        assert!(vvadd.fp_count > qsort.fp_count);
    }

    #[test]
    fn features_are_independent_of_any_configuration() {
        // Trivially true by construction, but assert the values are finite and
        // reproducible, which is what the model relies on.
        let a = ProgramFeatures::of(Workload::Gemm);
        let b = ProgramFeatures::of(Workload::Gemm);
        assert_eq!(a, b);
        assert!(a.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn branch_count_consistent_with_mix() {
        let f = ProgramFeatures::of(Workload::Towers);
        let p = crate::profile::profile(Workload::Towers);
        let expected = p.nominal_instructions as f64 * p.mix().branch;
        assert!((f.branch_count - expected).abs() < 1e-9);
    }
}
