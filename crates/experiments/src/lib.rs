//! Experiment harness: regenerates every table and figure of the AutoPower evaluation.
//!
//! Each experiment is a method on [`Experiments`], which owns the (lazily generated and
//! cached) corpora so that several experiments can share the expensive simulation work.
//! The binary `autopower-experiments` exposes every experiment as a subcommand; the
//! Criterion benches in `autopower-bench` wrap the same methods.
//!
//! | Paper artefact | Method | Subcommand |
//! |---|---|---|
//! | Fig. 1 (Observation 1, power-group breakdown) | [`Experiments::obs1_breakdown`] | `obs1` |
//! | Table I (metadata-table scaling example) | [`Experiments::table1_hardware_model`] | `table1` |
//! | Fig. 4 (accuracy, 2 training configurations) | [`Experiments::fig4_accuracy_two_configs`] | `fig4` |
//! | Fig. 5 (accuracy, 3 training configurations) | [`Experiments::fig5_accuracy_three_configs`] | `fig5` |
//! | Fig. 6 (sweep over #training configurations) | [`Experiments::fig6_training_sweep`] | `fig6` |
//! | Fig. 7 (clock detail, all component-resolving models) | [`Experiments::fig7_clock_detail`] | `fig7` |
//! | Fig. 8 (SRAM detail, all component-resolving models) | [`Experiments::fig8_sram_detail`] | `fig8` |
//! | Table IV (time-based power traces) | [`Experiments::table4_power_trace`] | `table4` |
//! | Ablations (program features, simulator inaccuracy) | [`Experiments::ablation_study`] | `ablation` |
//! | Design-space sweep (generated configurations) | [`Experiments::design_space_sweep`] | `sweep` |
//! | Streaming sweep (bounded memory, checkpoint/resume) | [`Experiments::streaming_sweep`] | `sweep --stream` / `--full` |
//! | Pareto frontier (power vs IPC vs area proxy) | [`Experiments::pareto_frontier`] | `pareto` |
//! | Leave-one-out cross-validation | [`Experiments::cross_validation_model`] | `xval` |
//! | Model-disagreement sweep (all registry models) | [`Experiments::model_comparison`] | `compare` |
//!
//! The `sweep`, `table4` and `xval` subcommands accept `--model NAME` and run
//! under any [`ModelKind`](autopower::ModelKind) registry model; `compare`
//! sweeps the same generated design space under *every* registry model and
//! reports where they disagree.
//!
//! Trained models persist across processes: `save-model --model NAME --out
//! FILE` trains on the sweep corpus and writes the registry-tagged model
//! file; `sweep --load-model FILE` (and `table4 --load-model FILE`) restores
//! it with [`autopower::load_model`] and predicts without retraining —
//! bit-identical to the retrained run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablation;
mod accuracy;
mod compare;
mod design_sweep;
mod detail;
mod obs1;
mod report;
mod settings;
mod stream_sweep;
mod surrogate_exp;
mod sweep;
mod table1;
mod trace_exp;
mod xval_exp;

pub use ablation::AblationResult;
pub use accuracy::{compare_methods, AccuracyComparison, MethodAccuracy};
pub use compare::ModelComparison;
pub use design_sweep::DesignSweepResult;
pub use detail::{ComponentDetailRow, GroupDetailResult, SubModelAccuracy};
pub use obs1::BreakdownResult;
pub use report::{format_table, percent};
pub use settings::ExperimentSettings;
pub use stream_sweep::{
    ParetoResult, StreamExtras, StreamOptions, StreamScope, StreamSweepResult, SurrogateSpec,
};
pub use surrogate_exp::{SurrogateOptions, DEFAULT_AUDIT_RATE, DEFAULT_SURROGATE_TRAIN};
pub use sweep::{SweepPoint, SweepResult};
pub use table1::{BlockShape, Table1Result};
pub use trace_exp::{TraceCase, TraceResult};
pub use xval_exp::XvalResult;

use autopower::{Corpus, CorpusSpec};
use autopower_config::Workload;
use std::sync::{Arc, OnceLock};

/// The experiment harness: owns the settings and caches the generated corpora.
///
/// The corpus caches are [`OnceLock`]s, so the harness is `Send + Sync`: benches
/// and parallel drivers can share one `Experiments` (and hence one set of
/// generated corpora) across threads.
pub struct Experiments {
    settings: ExperimentSettings,
    average_corpus: OnceLock<Arc<Corpus>>,
    trace_corpus: OnceLock<Arc<Corpus>>,
    train_corpus: OnceLock<Arc<Corpus>>,
}

impl Experiments {
    /// Creates a harness with the given settings.
    pub fn new(settings: ExperimentSettings) -> Self {
        Self {
            settings,
            average_corpus: OnceLock::new(),
            trace_corpus: OnceLock::new(),
            train_corpus: OnceLock::new(),
        }
    }

    /// Creates a harness with the paper-scale settings.
    pub fn paper() -> Self {
        Self::new(ExperimentSettings::paper())
    }

    /// Creates a harness with small, fast settings (tests, benches, smoke runs).
    pub fn fast() -> Self {
        Self::new(ExperimentSettings::fast())
    }

    /// The settings in use.
    pub fn settings(&self) -> &ExperimentSettings {
        &self.settings
    }

    /// The average-power corpus (riscv-tests workloads), generated on first use.
    ///
    /// Hands out a shared [`Arc`]: the nine experiments all read the same
    /// cached corpus instead of each deep-cloning every run.
    pub fn average_corpus(&self) -> Arc<Corpus> {
        Arc::clone(self.average_corpus.get_or_init(|| {
            Arc::new(Corpus::generate(
                &self.settings.configs,
                &self.settings.average_workloads,
                &CorpusSpec {
                    sim: self.settings.average_sim,
                    threads: self.settings.threads,
                },
            ))
        }))
    }

    /// The trace corpus (GEMM / SPMM on the trace target configurations plus the
    /// training configurations), generated on first use and shared like
    /// [`Experiments::average_corpus`].
    pub fn trace_corpus(&self) -> Arc<Corpus> {
        Arc::clone(self.trace_corpus.get_or_init(|| {
            let mut configs = self.settings.trace_configs.clone();
            for id in &self.settings.train_two {
                let cfg = autopower_config::config_by_id(*id);
                if !configs.iter().any(|c| c.id == cfg.id) {
                    configs.push(cfg);
                }
            }
            let workloads: Vec<Workload> = Workload::TRACE_WORKLOADS.to_vec();
            Arc::new(Corpus::generate(
                &configs,
                &workloads,
                &CorpusSpec {
                    sim: self.settings.trace_sim,
                    threads: self.settings.threads,
                },
            ))
        }))
    }

    /// Trains one registry model exactly the way the `sweep` experiment
    /// does (same corpus, same two-configuration training set) — the
    /// `save-model` CLI path.  A model saved from here and restored with
    /// [`autopower::load_model`] sweeps bit-identically to a
    /// [`Experiments::design_space_sweep_model`] run that retrains.
    ///
    /// # Errors
    ///
    /// Returns an error if training fails.
    pub fn train_sweep_model(
        &self,
        kind: autopower::ModelKind,
    ) -> Result<Box<dyn autopower::PowerModel>, autopower::AutoPowerError> {
        let corpus = self.sweep_training_corpus();
        kind.train(&corpus, &self.settings().train_two)
    }

    /// Corpus backing the design-space sweep's training.
    ///
    /// Training only reads the runs of the training configurations, so a
    /// standalone `sweep` must not pay for golden power on the other 13
    /// configurations: when no earlier experiment has generated the full
    /// average-power corpus yet, a corpus restricted to
    /// [`ExperimentSettings::train_two`] is generated (and cached) instead.
    /// Both corpora contain bit-identical runs for the training
    /// configurations, so the trained model is the same either way.
    pub(crate) fn sweep_training_corpus(&self) -> Arc<Corpus> {
        if let Some(full) = self.average_corpus.get() {
            return Arc::clone(full);
        }
        Arc::clone(self.train_corpus.get_or_init(|| {
            let train: Vec<autopower_config::CpuConfig> = self
                .settings
                .train_two
                .iter()
                .map(|&id| autopower_config::config_by_id(id))
                .collect();
            Arc::new(Corpus::generate(
                &train,
                &self.settings.average_workloads,
                &CorpusSpec {
                    sim: self.settings.average_sim,
                    threads: self.settings.threads,
                },
            ))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_is_shareable_across_threads() {
        fn check<T: Send + Sync>() {}
        check::<Experiments>();
        // A shared harness generates its corpus exactly once even under
        // concurrent first use.
        let exp = std::sync::Arc::new(Experiments::fast());
        let corpora: Vec<Arc<Corpus>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let exp = Arc::clone(&exp);
                    scope.spawn(move || exp.average_corpus())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for c in &corpora[1..] {
            assert!(Arc::ptr_eq(&corpora[0], c));
        }
    }

    #[test]
    fn corpora_are_cached_and_consistent() {
        let exp = Experiments::fast();
        let a = exp.average_corpus();
        let b = exp.average_corpus();
        // Repeated calls hand out the same allocation — no deep clones.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.runs().len(), b.runs().len());
        assert_eq!(
            a.runs().len(),
            exp.settings().configs.len() * exp.settings().average_workloads.len()
        );
        let t = exp.trace_corpus();
        assert!(t.runs().iter().all(|r| r.workload.is_trace_workload()));
    }
}
