//! Design-space sweep: scoring generated (non-seed) configurations through the
//! few-shot model — the tool the paper's introduction promises an architect.
//!
//! Unlike the figure/table experiments, this one leaves the 15 seeded
//! configurations behind: it trains AutoPower on the usual two known
//! configurations, draws `count` fresh configurations from
//! [`DesignSpace::boom`], and batch-predicts their per-group power across the
//! average-power workloads.  No synthesis and no golden power simulation run
//! for any generated configuration — only a fast performance simulation per
//! `(configuration, workload)` pair.

use crate::report::format_table;
use crate::stream_sweep::SurrogateSpec;
use crate::surrogate_exp::{audit_section, refuse_unaudited};
use crate::Experiments;
use autopower::{
    rank_by_efficiency, summarize, AuditReport, AutoPowerError, ConfigSummary, ModelKind,
    SimBackend, SweepEngine, SweepSpec,
};
use autopower_config::{ConfigId, CpuConfig, HwParam, Workload};
use autopower_perfsim::SimCacheStats;
use std::fmt;

/// Seed of the design-space draw: fixed so the swept configurations (and hence
/// the printed summary) are reproducible across runs and thread counts.
pub(crate) const SAMPLE_SEED: u64 = 0xA070_90E5;

/// How many best configurations the ranked summary prints (shared with the
/// streaming report so both top tables cover the same k).
pub(crate) const TOP_K: usize = 10;

/// Result of the design-space sweep experiment.
#[derive(Debug, Clone)]
pub struct DesignSweepResult {
    /// The registry model that scored the sweep.
    pub model: ModelKind,
    /// The known configurations the model was trained on — `None` when the
    /// model was loaded pre-trained: the serialized format carries no
    /// training-set record, so the report does not invent one.
    pub train_configs: Option<Vec<ConfigId>>,
    /// The workloads every configuration was scored on.
    pub workloads: Vec<Workload>,
    /// One summary per generated configuration, in draw order.
    pub summaries: Vec<ConfigSummary>,
    /// Simulation-cache statistics of the sweep — `None` when the cache was
    /// disabled (`--no-sim-cache`).
    pub cache_stats: Option<SimCacheStats>,
    /// Audit error table of the surrogate backend, `None` for exact sweeps.
    pub audit: Option<AuditReport>,
    /// Audited fraction of the surrogate run, `None` for exact sweeps.
    pub audit_rate: Option<f64>,
}

impl DesignSweepResult {
    /// Quantile of the per-configuration mean total power (q in `[0, 1]`,
    /// nearest-rank on the sorted totals).
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    pub fn total_power_quantile(&self, q: f64) -> f64 {
        let totals = sorted(self.summaries.iter().map(|s| s.mean_total).collect());
        quantile(&totals, q)
    }

    /// The `k` most energy-efficient configurations (lowest predicted energy
    /// per instruction), best first.
    pub fn top_by_efficiency(&self, k: usize) -> Vec<&ConfigSummary> {
        let mut ranked = rank_by_efficiency(&self.summaries);
        ranked.truncate(k);
        ranked
    }
}

/// Sorts one power series ascending.
fn sorted(mut values: Vec<f64>) -> Vec<f64> {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite power values"));
    values
}

/// Nearest-rank quantile of an ascending series (the single implementation
/// behind both [`DesignSweepResult::total_power_quantile`] and the printed
/// report).
///
/// # Panics
///
/// Panics if `values` is empty.
fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "empty series has no quantiles");
    values[((values.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize]
}

/// One report row: a label plus min/p25/median/p75/max of a series.
fn quantile_row(label: &str, values: Vec<f64>) -> Vec<String> {
    let values = sorted(values);
    let mut row = vec![label.to_owned()];
    for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
        row.push(format!("{:.2}", quantile(&values, q)));
    }
    row
}

impl fmt::Display for DesignSweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let provenance = match &self.train_configs {
            Some(train) => format!(
                "trained on {}",
                train
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            ),
            None => "loaded pre-trained".to_owned(),
        };
        writeln!(
            f,
            "Design-space sweep — {} generated configurations x {} workloads, \
             {} {}",
            self.summaries.len(),
            self.workloads.len(),
            self.model.paper_name(),
            provenance,
        )?;
        writeln!(f, "{}", describe_cache(self.cache_stats))?;
        writeln!(f)?;
        writeln!(
            f,
            "predicted power across the space (mW, mean over workloads)"
        )?;
        type GroupGetter = fn(&ConfigSummary) -> f64;
        // Per-group quantile rows exist exactly when the summaries carry a
        // group view; a total-only model's report has only the total row —
        // there is no parked slot to print.
        let resolves_groups = self.summaries.iter().all(|s| s.mean_groups.is_some());
        let groups: &[(&str, GroupGetter)] = if resolves_groups {
            &[
                ("clock", |s| s.mean_groups.expect("group-resolved").clock),
                ("sram", |s| s.mean_groups.expect("group-resolved").sram),
                ("register", |s| {
                    s.mean_groups.expect("group-resolved").register
                }),
                ("combinational", |s| {
                    s.mean_groups.expect("group-resolved").combinational
                }),
                ("total", |s| s.mean_total),
            ]
        } else {
            &[("total", |s| s.mean_total)]
        };
        let rows: Vec<Vec<String>> = groups
            .iter()
            .map(|(label, get)| quantile_row(label, self.summaries.iter().map(get).collect()))
            .collect();
        writeln!(
            f,
            "{}",
            format_table(&["group", "min", "p25", "median", "p75", "max"], &rows)
        )?;
        writeln!(
            f,
            "top {} configurations by predicted energy per instruction",
            TOP_K.min(self.summaries.len())
        )?;
        let rows: Vec<Vec<String>> = self
            .top_by_efficiency(TOP_K)
            .iter()
            .map(|s| {
                vec![
                    s.config.id.to_string(),
                    s.config.value(HwParam::FetchWidth).to_string(),
                    s.config.value(HwParam::DecodeWidth).to_string(),
                    s.config.value(HwParam::RobEntry).to_string(),
                    s.config.value(HwParam::IntIssueWidth).to_string(),
                    s.config.value(HwParam::CacheWay).to_string(),
                    format!("{:.2}", s.mean_ipc),
                    format!("{:.2}", s.mean_total),
                    format!("{:.2}", s.energy_per_instruction),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &[
                    "config",
                    "fetch",
                    "decode",
                    "rob",
                    "issue",
                    "ways",
                    "IPC",
                    "power(mW)",
                    "pJ/instr",
                ],
                &rows
            )
        )?;
        if let Some(report) = &self.audit {
            writeln!(f)?;
            write!(
                f,
                "{}",
                audit_section(
                    report,
                    self.audit_rate.unwrap_or(0.0),
                    self.workloads.len(),
                    self.summaries.len() as u64,
                )
            )?;
        }
        Ok(())
    }
}

/// One report line describing what the simulation cache did for a sweep.
///
/// Shared by the `sweep` and `compare` reports so the wording (and the
/// "disabled" spelling the `--no-sim-cache` runs grep for) stays in one place.
pub(crate) fn describe_cache(stats: Option<SimCacheStats>) -> String {
    match stats {
        Some(s) if s.hits > 0 => format!(
            "simulation cache: {} of {} simulations deduplicated ({:.1}% hit rate)",
            s.hits,
            s.lookups(),
            100.0 * s.hit_rate(),
        ),
        // An enabled cache that was never consulted (e.g. a resumed sweep
        // with nothing left to stream) has no hit rate to report — saying
        // "no duplicates among 0 simulations" would be misleading.
        Some(s) if s.lookups() == 0 => {
            "simulation cache: enabled, idle (no simulations ran)".to_owned()
        }
        Some(s) => format!(
            "simulation cache: no duplicates among {} simulations",
            s.misses
        ),
        None => "simulation cache: disabled".to_owned(),
    }
}

/// Everything a design-space sweep needs besides a trained model: the
/// training set, the fixed-seeded generated configurations and the sweep
/// settings.  Deliberately *without* a corpus — a sweep under a loaded model
/// must not pay for corpus generation at all; training paths fetch the
/// corpus separately ([`Experiments::sweep_training_corpus`]).
pub(crate) struct SweepInputs {
    pub train: Vec<ConfigId>,
    pub configs: Vec<CpuConfig>,
    pub workloads: Vec<Workload>,
    pub spec: SweepSpec,
}

impl Experiments {
    /// The shared inputs of the `sweep` and `compare` experiments — one
    /// definition so `compare` provably scores exactly the space (and uses
    /// exactly the settings) the `sweep` experiment does.
    pub(crate) fn sweep_inputs(&self, count: usize) -> SweepInputs {
        SweepInputs {
            train: self.settings().train_two.clone(),
            configs: self.settings().sweep_space.sample(count, SAMPLE_SEED),
            workloads: self.settings().average_workloads.clone(),
            spec: self.sweep_spec(),
        }
    }

    /// The engine settings every sweeping experiment (`sweep`, `compare`,
    /// `pareto`) derives from the experiment settings.
    pub(crate) fn sweep_spec(&self) -> SweepSpec {
        SweepSpec {
            sim: self.settings().average_sim,
            threads: self.settings().threads,
            use_sim_cache: self.settings().sim_cache,
            chunk_configs: match self.settings().chunk_configs {
                0 => SweepSpec::paper().chunk_configs,
                n => n,
            },
        }
    }

    /// Sweeps `count` generated design points through an AutoPower model
    /// trained on the two known configurations.
    ///
    /// Shorthand for [`Experiments::design_space_sweep_model`] with
    /// [`ModelKind::AutoPower`].
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or training fails.
    pub fn design_space_sweep(&self, count: usize) -> DesignSweepResult {
        self.design_space_sweep_model(count, ModelKind::AutoPower)
            .expect("AutoPower training succeeds")
    }

    /// Sweeps `count` generated design points through any registry model
    /// trained on the two known configurations (the `--model` CLI path).
    ///
    /// Deterministic end to end: the design-space draw is fixed-seeded, corpus
    /// generation and batch inference are bit-identical for every thread
    /// count, so the printed summary never depends on `--threads`.
    ///
    /// # Errors
    ///
    /// Returns an error if the model fails to train.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero — an empty sweep has nothing to report.
    pub fn design_space_sweep_model(
        &self,
        count: usize,
        kind: ModelKind,
    ) -> Result<DesignSweepResult, AutoPowerError> {
        assert!(count > 0, "a sweep needs at least one configuration");
        let inputs = self.sweep_inputs(count);
        let corpus = self.sweep_training_corpus();
        let model = kind.train(&corpus, &inputs.train)?;
        let train = Some(inputs.train.clone());
        self.sweep_with(inputs, model.as_ref(), train, None)
    }

    /// [`Experiments::design_space_sweep_model`] scored by a learned activity
    /// surrogate instead of per-point exact simulation (the materializing
    /// `sweep --surrogate` CLI path): every configuration's event rates come
    /// from `spec.surrogate`, and the deterministic `spec.audit_rate` fraction
    /// is additionally simulated exactly to bound the surrogate's error (those
    /// audited points are emitted bit-identically to an exact sweep).
    ///
    /// # Errors
    ///
    /// Returns an error if training fails, the surrogate is incompatible with
    /// the sweep settings, or the run audited zero configurations.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn design_space_sweep_surrogate(
        &self,
        count: usize,
        kind: ModelKind,
        spec: SurrogateSpec<'_>,
    ) -> Result<DesignSweepResult, AutoPowerError> {
        assert!(count > 0, "a sweep needs at least one configuration");
        let inputs = self.sweep_inputs(count);
        let corpus = self.sweep_training_corpus();
        let model = kind.train(&corpus, &inputs.train)?;
        let train = Some(inputs.train.clone());
        self.sweep_with(inputs, model.as_ref(), train, Some(spec))
    }

    /// [`Experiments::design_space_sweep_loaded`] under a surrogate backend
    /// (the `sweep --surrogate --load-model FILE` CLI path).
    ///
    /// # Errors
    ///
    /// Returns an error if the surrogate is incompatible with the sweep
    /// settings or the run audited zero configurations.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn design_space_sweep_loaded_surrogate(
        &self,
        count: usize,
        model: &dyn autopower::PowerModel,
        spec: SurrogateSpec<'_>,
    ) -> Result<DesignSweepResult, AutoPowerError> {
        assert!(count > 0, "a sweep needs at least one configuration");
        let inputs = self.sweep_inputs(count);
        self.sweep_with(inputs, model, None, Some(spec))
    }

    /// Sweeps `count` generated design points through an **already trained**
    /// model — the `--load-model` CLI path, where the model was restored with
    /// [`autopower::load_model`] instead of retrained.  Bit-identical to
    /// [`Experiments::design_space_sweep_model`] for a model trained on the
    /// same corpus (pinned by the serialization parity tests).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn design_space_sweep_loaded(
        &self,
        count: usize,
        model: &dyn autopower::PowerModel,
    ) -> DesignSweepResult {
        assert!(count > 0, "a sweep needs at least one configuration");
        // The training corpus is not touched: a loaded model sweeps without
        // regenerating any golden data, and the report states it was loaded
        // (the file records no training set).
        let inputs = self.sweep_inputs(count);
        self.sweep_with(inputs, model, None, None)
            .expect("exact sweeps cannot fail")
    }

    fn sweep_with(
        &self,
        inputs: SweepInputs,
        model: &dyn autopower::PowerModel,
        train_configs: Option<Vec<ConfigId>>,
        surrogate: Option<SurrogateSpec<'_>>,
    ) -> Result<DesignSweepResult, AutoPowerError> {
        let mut engine = SweepEngine::new(model, inputs.spec);
        if let Some(s) = &surrogate {
            engine = engine.with_backend(SimBackend::Surrogate {
                surrogate: s.surrogate,
                audit_rate: s.audit_rate,
            })?;
        }
        let points = engine.run(&inputs.configs, &inputs.workloads);
        let audit = engine.audit_report();
        if let (Some(report), Some(s)) = (&audit, &surrogate) {
            refuse_unaudited(report, inputs.configs.len() as u64, s.audit_rate)?;
        }
        Ok(DesignSweepResult {
            model: model.kind(),
            train_configs,
            summaries: summarize(&points, inputs.workloads.len()),
            workloads: inputs.workloads,
            cache_stats: inputs.spec.use_sim_cache.then(|| engine.cache_stats()),
            audit,
            audit_rate: surrogate.map(|s| s.audit_rate),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate_exp::SurrogateOptions;

    #[test]
    fn surrogate_materialized_sweep_audits_and_matches_exact_under_full_audit() {
        let exp = Experiments::fast();
        let surrogate = exp
            .sweep_surrogate(&SurrogateOptions {
                train_count: 10,
                ..SurrogateOptions::default()
            })
            .unwrap();
        let exact = exp.design_space_sweep(12);
        let audited = exp
            .design_space_sweep_surrogate(
                12,
                ModelKind::AutoPower,
                SurrogateSpec {
                    surrogate: &surrogate,
                    audit_rate: 1.0,
                },
            )
            .unwrap();
        // Every point was simulated exactly, so the summaries are bit-equal.
        assert_eq!(audited.summaries, exact.summaries);
        let report = audited
            .audit
            .as_ref()
            .expect("surrogate sweeps carry an audit");
        assert_eq!(
            report.audited_points,
            12 * exp.settings().average_workloads.len() as u64
        );
        let text = audited.to_string();
        assert!(text.contains("surrogate audit"), "got: {text}");
        assert!(text.contains("predicted total power"));
        assert!(!exact.to_string().contains("surrogate audit"));

        // A materialized surrogate sweep that audits nothing is refused
        // outright — it is never "interrupted", so there is no exemption.
        let err = exp
            .design_space_sweep_surrogate(
                12,
                ModelKind::AutoPower,
                SurrogateSpec {
                    surrogate: &surrogate,
                    audit_rate: 1e-9,
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("audited zero"), "got: {err}");
    }

    #[test]
    fn sweep_scores_the_requested_number_of_generated_configs() {
        let exp = Experiments::fast();
        let result = exp.design_space_sweep(24);
        assert_eq!(result.summaries.len(), 24);
        for s in &result.summaries {
            assert!(!s.config.id.is_seed(), "{} is a seed", s.config.id);
            assert!(s.mean_total > 0.0);
            assert!(s.mean_groups.is_some(), "AutoPower resolves groups");
            assert!(s.mean_ipc > 0.0);
        }
        // Quantiles are ordered and the efficiency ranking is sorted.
        assert!(result.total_power_quantile(0.0) <= result.total_power_quantile(0.5));
        assert!(result.total_power_quantile(0.5) <= result.total_power_quantile(1.0));
        let top = result.top_by_efficiency(5);
        assert_eq!(top.len(), 5);
        for pair in top.windows(2) {
            assert!(pair[0].energy_per_instruction <= pair[1].energy_per_instruction);
        }
        // The printed summary names the sweep and contains both tables.
        let text = result.to_string();
        assert!(text.contains("24 generated configurations"));
        assert!(text.contains("median"));
        assert!(text.contains("pJ/instr"));
    }

    #[test]
    fn sweep_runs_under_a_baseline_model() {
        let exp = Experiments::fast();
        let result = exp
            .design_space_sweep_model(12, ModelKind::McpatCalib)
            .unwrap();
        assert_eq!(result.model, ModelKind::McpatCalib);
        assert_eq!(result.summaries.len(), 12);
        for s in &result.summaries {
            assert!(s.mean_total > 0.0);
            // Total-only model: the typed summary simply has no group view.
            assert!(s.mean_groups.is_none());
        }
        let text = result.to_string();
        assert!(text.contains("McPAT-Calib"));
        // The per-group quantile rows are suppressed for total-only models.
        assert!(!text.contains("clock"));
        assert!(text.contains("total"));
    }

    #[test]
    fn sweep_is_reproducible() {
        let exp = Experiments::fast();
        let a = exp.design_space_sweep(8);
        let b = exp.design_space_sweep(8);
        assert_eq!(a.summaries, b.summaries);
    }

    #[test]
    fn standalone_sweep_matches_sweep_after_full_corpus() {
        // A standalone sweep trains on the restricted (train-configs-only)
        // corpus; after another experiment populated the full average-power
        // corpus, training reuses it.  Both paths must produce the same model
        // and hence the same sweep.
        let standalone = Experiments::fast();
        let a = standalone.design_space_sweep(6);
        let warmed = Experiments::fast();
        let _ = warmed.average_corpus();
        let b = warmed.design_space_sweep(6);
        assert_eq!(a.summaries, b.summaries);
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn empty_sweep_is_rejected() {
        let _ = Experiments::fast().design_space_sweep(0);
    }
}
