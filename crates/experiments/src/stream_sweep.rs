//! Streaming design-space sweep and Pareto-frontier experiments.
//!
//! The materializing `sweep` experiment retains every scored point; this
//! module is the bounded-memory counterpart built on
//! [`SweepEngine::stream`](autopower::SweepEngine) + [`SweepAggregator`]:
//! it can walk the **full** enumerable design space (`--full`), not just
//! `--count N` samples, holding O(top-k + sketches + one chunk) memory, and it
//! can checkpoint at every chunk boundary (`--checkpoint FILE`) and resume
//! (`--resume`) to a byte-identical report.
//!
//! Two reproducibility contracts shape the code:
//!
//! * **Bit-identity with the materialized path.** A sampled streaming sweep
//!   folds the exact points `SweepEngine::run` would produce (same scoring
//!   path), through the same per-configuration fold, so its top-k table is
//!   `rank_by_efficiency(...)[..k]` bit for bit and its (uncompacted) sketch
//!   quantiles match the materialized nearest-rank table.
//! * **Resume-invariance of the report.** [`StreamSweepResult`]'s `Display`
//!   depends only on state a resumed run rebuilds exactly (the aggregator and
//!   the sweep inputs).  Process-local observations — cache hit rates, peak
//!   retained points — go to [`StreamSweepResult::diagnostics`] (printed to
//!   stderr by the CLI), because a resumed process's cache never saw the
//!   chunks before the checkpoint and would report different numbers.

use crate::design_sweep::{describe_cache, SAMPLE_SEED, TOP_K};
use crate::report::format_table;
use crate::surrogate_exp::{audit_section, refuse_unaudited};
use crate::Experiments;
use autopower::{
    encode_model, encode_surrogate, load_checkpoint_salvaged, save_checkpoint, ActivitySurrogate,
    AuditReport, AutoPowerError, CheckpointSalvage, ChunkCursor, ModelKind, ParetoConstraints,
    ParetoEntry, PowerModel, PowerSeries, SimBackend, StreamSpec, SweepAggregator, SweepCheckpoint,
    SweepEngine,
};
use autopower_config::{ConfigId, DesignSpace, HwParam, Workload};
use autopower_perfsim::{SimCacheStats, SimConfig};
use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Per-level capacity of the streaming quantile sketches: exact quantiles up
/// to 1024 configurations per series, bounded-error summaries beyond.
const SKETCH_LEVEL_CAPACITY: usize = 1024;

/// Which configurations a streaming sweep scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamScope {
    /// The fixed-seeded `count`-configuration sample the materializing
    /// `sweep` experiment scores (same seed, same draw).
    Sampled(usize),
    /// Every valid non-seed configuration of the design space, in enumeration
    /// order (`--full`).
    Full,
}

/// Checkpoint/interruption knobs of a streaming sweep.
#[derive(Debug, Clone, Default)]
pub struct StreamOptions {
    /// Write a checkpoint here after every completed chunk.
    pub checkpoint: Option<PathBuf>,
    /// Resume from the checkpoint instead of starting over (requires
    /// `checkpoint`).
    pub resume: bool,
    /// Stop (checkpointed) after this many chunks; `0` streams to the end.
    /// The deterministic stand-in for "the process was killed at a chunk
    /// boundary" used by tests and the CI resume smoke.
    pub max_chunks: u64,
}

/// Surrogate backing of a sweep run: the trained per-event surrogate plus the
/// deterministic audit fraction (`--surrogate` / `--audit-rate`).
#[derive(Debug, Clone, Copy)]
pub struct SurrogateSpec<'a> {
    /// The trained surrogate the engine predicts raw event rates with.
    pub surrogate: &'a ActivitySurrogate,
    /// Fraction of swept configurations simulated exactly to bound the
    /// surrogate's error; must be in `(0, 1]`.
    pub audit_rate: f64,
}

/// Scoring extras of a sweep run beyond model/scope/checkpointing: surrogate
/// backing and Pareto feasibility constraints.  `Default` is the classic run —
/// exact simulation, unconstrained frontier.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamExtras<'a> {
    /// Score with a learned surrogate instead of exact simulation.
    pub surrogate: Option<SurrogateSpec<'a>>,
    /// Feasibility constraints applied before the Pareto frontier fold
    /// (`--max-power` / `--min-ipc`; the `pareto` verb only).
    pub constraints: ParetoConstraints,
}

/// Result of a streaming design-space sweep.
#[derive(Debug, Clone)]
pub struct StreamSweepResult {
    /// The registry model that scored the sweep.
    pub model: ModelKind,
    /// The training set, `None` when the model was loaded pre-trained.
    pub train_configs: Option<Vec<ConfigId>>,
    /// The workloads every configuration was scored on.
    pub workloads: Vec<Workload>,
    /// What was swept.
    pub scope: StreamScope,
    /// Exact cardinality of the scope ([`DesignSpace::total`] for
    /// [`StreamScope::Full`]).
    pub scope_total: u64,
    /// Configurations folded so far (equals `scope_total` when `complete`).
    pub streamed: u64,
    /// Whether the scope was exhausted (`false` after a `max_chunks` stop).
    pub complete: bool,
    /// The checkpoint the sweep wrote to / resumed from, if any.
    pub checkpoint: Option<PathBuf>,
    /// The folded aggregate: top-k, sketches, Pareto frontier.
    pub aggregator: SweepAggregator,
    /// This-process cache statistics (`None` when the cache was disabled).
    /// **Not** resume-invariant — reported via
    /// [`StreamSweepResult::diagnostics`], never in `Display`.
    pub cache_stats: Option<SimCacheStats>,
    /// This-process peak number of points materialized at once (one chunk).
    pub peak_retained_points: usize,
    /// Audit error table of the surrogate backend, `None` for exact sweeps.
    /// Resume-invariant: the accumulator travels with the checkpoint.
    pub audit: Option<AuditReport>,
    /// Audited fraction of the surrogate run, `None` for exact sweeps.
    pub audit_rate: Option<f64>,
    /// What checkpoint salvage had to recover on resume (torn main file,
    /// newer `.tmp` sibling), `None` for a clean load.  **Not**
    /// resume-invariant — reported via [`StreamSweepResult::diagnostics`],
    /// never in `Display`.
    pub salvage: Option<CheckpointSalvage>,
}

impl StreamSweepResult {
    /// Describes what the scope covers, e.g. `"full space (59832
    /// configurations)"`.
    fn scope_description(&self) -> String {
        match self.scope {
            StreamScope::Sampled(count) => format!("{count} sampled configurations"),
            StreamScope::Full => format!("full space ({} configurations)", self.scope_total),
        }
    }

    /// Process-local observations excluded from the (resume-invariant)
    /// report: cache behaviour and memory high-water marks.  The CLI prints
    /// this to stderr so one-shot and resumed stdout stay byte-identical.
    pub fn diagnostics(&self) -> String {
        let mut text = describe_cache(self.cache_stats);
        let _ = write!(
            text,
            "\npeak retained points: {} (materializing this scope would retain {}); \
             aggregator state: {} values",
            self.peak_retained_points,
            self.scope_total * self.workloads.len() as u64,
            self.aggregator.retained_state(),
        );
        if let Some(salvage) = &self.salvage {
            let _ = write!(text, "\ncheckpoint salvaged: {}", salvage.reason);
        }
        text
    }
}

impl fmt::Display for StreamSweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let provenance = match &self.train_configs {
            Some(train) => format!(
                "trained on {}",
                train
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            ),
            None => "loaded pre-trained".to_owned(),
        };
        writeln!(
            f,
            "Streaming design-space sweep — {} x {} workloads, {} {}",
            self.scope_description(),
            self.workloads.len(),
            self.model.paper_name(),
            provenance,
        )?;
        if !self.complete {
            writeln!(
                f,
                "interrupted at a chunk boundary: {} of {} configurations folded; \
                 rerun with --resume to continue",
                self.streamed, self.scope_total
            )?;
            return Ok(());
        }
        writeln!(
            f,
            "bounded-memory aggregation: top-{} retention + per-group quantile sketches",
            self.aggregator.top_k()
        )?;
        writeln!(f)?;
        let exact = PowerSeries::ALL
            .iter()
            .all(|&s| self.aggregator.series(s).sketch().is_exact());
        writeln!(
            f,
            "predicted power across the space (mW, mean over workloads; {})",
            if exact {
                "exact quantiles"
            } else {
                "sketched quantiles, exact min/max"
            }
        )?;
        let series: &[PowerSeries] = if self.aggregator.resolves_groups() {
            &PowerSeries::ALL
        } else {
            &[PowerSeries::Total]
        };
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|&s| {
                let sketch = self.aggregator.series(s);
                let cell = |v: Option<f64>| format!("{:.2}", v.expect("non-empty sweep"));
                vec![
                    s.label().to_owned(),
                    cell(sketch.min()),
                    cell(sketch.quantile(0.25)),
                    cell(sketch.quantile(0.5)),
                    cell(sketch.quantile(0.75)),
                    cell(sketch.max()),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            format_table(&["group", "min", "p25", "median", "p75", "max"], &rows)
        )?;
        let top = self.aggregator.top();
        writeln!(
            f,
            "top {} configurations by predicted energy per instruction",
            top.len()
        )?;
        let rows: Vec<Vec<String>> = top
            .iter()
            .map(|s| {
                vec![
                    s.config.id.to_string(),
                    s.config.value(HwParam::FetchWidth).to_string(),
                    s.config.value(HwParam::DecodeWidth).to_string(),
                    s.config.value(HwParam::RobEntry).to_string(),
                    s.config.value(HwParam::IntIssueWidth).to_string(),
                    s.config.value(HwParam::CacheWay).to_string(),
                    format!("{:.2}", s.mean_ipc),
                    format!("{:.2}", s.mean_total),
                    format!("{:.2}", s.energy_per_instruction),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &[
                    "config",
                    "fetch",
                    "decode",
                    "rob",
                    "issue",
                    "ways",
                    "IPC",
                    "power(mW)",
                    "pJ/instr",
                ],
                &rows
            )
        )?;
        if let Some(report) = &self.audit {
            writeln!(f)?;
            write!(
                f,
                "{}",
                audit_section(
                    report,
                    self.audit_rate.unwrap_or(0.0),
                    self.workloads.len(),
                    self.streamed,
                )
            )?;
        }
        Ok(())
    }
}

/// Result of the `pareto` experiment: the non-dominated
/// power-vs-IPC-vs-area-proxy frontier of a streamed sweep.
#[derive(Debug, Clone)]
pub struct ParetoResult {
    /// The registry model that scored the sweep.
    pub model: ModelKind,
    /// The training set, `None` when the model was loaded pre-trained.
    pub train_configs: Option<Vec<ConfigId>>,
    /// The workloads every configuration was scored on.
    pub workloads: Vec<Workload>,
    /// What was swept.
    pub scope: StreamScope,
    /// Exact cardinality of the scope.
    pub scope_total: u64,
    /// The frontier, sorted by mean total power ascending.
    pub frontier: Vec<ParetoEntry>,
    /// Feasibility constraints applied before the frontier fold
    /// (`--max-power` / `--min-ipc`); default = unconstrained.
    pub constraints: ParetoConstraints,
    /// Audit error table of the surrogate backend, `None` for exact runs.
    pub audit: Option<AuditReport>,
    /// Audited fraction of the surrogate run, `None` for exact runs.
    pub audit_rate: Option<f64>,
    /// This-process cache statistics (stderr diagnostics, like the streaming
    /// sweep's).
    pub cache_stats: Option<SimCacheStats>,
}

impl ParetoResult {
    /// Process-local observations excluded from the report (see
    /// [`StreamSweepResult::diagnostics`]).
    pub fn diagnostics(&self) -> String {
        describe_cache(self.cache_stats)
    }
}

impl fmt::Display for ParetoResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let provenance = match &self.train_configs {
            Some(train) => format!(
                "trained on {}",
                train
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            ),
            None => "loaded pre-trained".to_owned(),
        };
        let scope = match self.scope {
            StreamScope::Sampled(count) => format!("{count} sampled configurations"),
            StreamScope::Full => format!("full space ({} configurations)", self.scope_total),
        };
        writeln!(
            f,
            "Pareto frontier — {} x {} workloads, {} {}",
            scope,
            self.workloads.len(),
            self.model.paper_name(),
            provenance,
        )?;
        writeln!(
            f,
            "{} non-dominated configurations (minimize power and area proxy, maximize IPC)",
            self.frontier.len()
        )?;
        if self.constraints.is_constrained() {
            let mut bounds = Vec::new();
            if let Some(p) = self.constraints.max_power {
                bounds.push(format!("mean power <= {p} mW"));
            }
            if let Some(i) = self.constraints.min_ipc {
                bounds.push(format!("mean IPC >= {i}"));
            }
            writeln!(
                f,
                "feasibility: {} (applied before the frontier fold)",
                bounds.join(", ")
            )?;
        }
        writeln!(f)?;
        let rows: Vec<Vec<String>> = self
            .frontier
            .iter()
            .map(|e| {
                let s = &e.summary;
                vec![
                    s.config.id.to_string(),
                    s.config.value(HwParam::FetchWidth).to_string(),
                    s.config.value(HwParam::DecodeWidth).to_string(),
                    s.config.value(HwParam::RobEntry).to_string(),
                    s.config.value(HwParam::IntIssueWidth).to_string(),
                    s.config.value(HwParam::CacheWay).to_string(),
                    format!("{:.2}", s.mean_total),
                    format!("{:.2}", s.mean_ipc),
                    format!("{:.1}", e.area),
                    format!("{:.2}", s.energy_per_instruction),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &[
                    "config",
                    "fetch",
                    "decode",
                    "rob",
                    "issue",
                    "ways",
                    "power(mW)",
                    "IPC",
                    "area(kFBE)",
                    "pJ/instr",
                ],
                &rows
            )
        )?;
        if let Some(report) = &self.audit {
            writeln!(f)?;
            write!(
                f,
                "{}",
                audit_section(
                    report,
                    self.audit_rate.unwrap_or(0.0),
                    self.workloads.len(),
                    self.scope_total,
                )
            )?;
        }
        Ok(())
    }
}

/// 64-bit FNV-1a, the checkpoint fingerprint hash.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = if seed == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        seed
    };
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of everything a checkpoint's aggregate depends on: the space
/// axes, the workloads, the trained model (its serialized text, so two
/// same-kind models with different weights collide with probability ~0), the
/// scope and the simulation settings.  Resume refuses a checkpoint whose
/// fingerprint does not match — folding the tail of a *different* sweep onto
/// a checkpointed head would silently corrupt the report.
fn sweep_fingerprint(
    space: &DesignSpace,
    workloads: &[Workload],
    model: &dyn PowerModel,
    scope: StreamScope,
    sim: &SimConfig,
) -> u64 {
    let mut canonical = String::new();
    for axis in space.axes() {
        let _ = write!(canonical, "axis {}:", axis.param.name());
        for v in &axis.values {
            let _ = write!(canonical, "{v},");
        }
        canonical.push(';');
    }
    for w in workloads {
        let _ = write!(canonical, "workload {w};");
    }
    match scope {
        StreamScope::Sampled(count) => {
            let _ = write!(canonical, "scope sampled:{count}:{SAMPLE_SEED:016x};");
        }
        StreamScope::Full => canonical.push_str("scope full;"),
    }
    let _ = write!(
        canonical,
        "sim {}:{}:{:016x}:{};",
        sim.max_instructions,
        sim.stream_seed,
        sim.event_distortion.to_bits(),
        sim.interval_cycles,
    );
    let hash = fnv1a(0, canonical.as_bytes());
    fnv1a(hash, encode_model(model).as_bytes())
}

impl Experiments {
    /// Streams the design space through a freshly trained registry model with
    /// bounded memory (the `sweep --stream` / `sweep --full` CLI path).
    ///
    /// # Errors
    ///
    /// Returns an error if training fails or checkpoint handling fails.
    ///
    /// # Panics
    ///
    /// Panics if the scope is empty ([`StreamScope::Sampled`] with zero).
    pub fn streaming_sweep(
        &self,
        scope: StreamScope,
        kind: ModelKind,
        options: &StreamOptions,
    ) -> Result<StreamSweepResult, AutoPowerError> {
        self.streaming_sweep_opts(scope, kind, options, &StreamExtras::default())
    }

    /// [`Experiments::streaming_sweep`] with scoring extras: a surrogate
    /// backend (`--surrogate`) and/or Pareto feasibility constraints.
    ///
    /// # Errors
    ///
    /// Returns an error if training fails, checkpoint handling fails, the
    /// surrogate is incompatible with the sweep, or a *completed* surrogate
    /// sweep audited zero configurations (its error table would be empty).
    ///
    /// # Panics
    ///
    /// Panics if `extras.constraints` carry a non-finite or non-positive
    /// bound (the CLI validates them at parse time).
    pub fn streaming_sweep_opts(
        &self,
        scope: StreamScope,
        kind: ModelKind,
        options: &StreamOptions,
        extras: &StreamExtras<'_>,
    ) -> Result<StreamSweepResult, AutoPowerError> {
        let corpus = self.sweep_training_corpus();
        let model = kind.train(&corpus, &self.settings().train_two)?;
        self.streaming_sweep_with(
            scope,
            model.as_ref(),
            Some(self.settings().train_two.clone()),
            options,
            extras,
        )
    }

    /// Streams the design space through an already-trained model (the
    /// `sweep --stream --load-model FILE` CLI path).
    ///
    /// # Errors
    ///
    /// Returns an error if checkpoint handling fails.
    pub fn streaming_sweep_loaded(
        &self,
        scope: StreamScope,
        model: &dyn PowerModel,
        options: &StreamOptions,
    ) -> Result<StreamSweepResult, AutoPowerError> {
        self.streaming_sweep_with(scope, model, None, options, &StreamExtras::default())
    }

    /// [`Experiments::streaming_sweep_loaded`] with scoring extras (see
    /// [`Experiments::streaming_sweep_opts`] for the error and panic
    /// contract).
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as
    /// [`Experiments::streaming_sweep_opts`].
    pub fn streaming_sweep_loaded_opts(
        &self,
        scope: StreamScope,
        model: &dyn PowerModel,
        options: &StreamOptions,
        extras: &StreamExtras<'_>,
    ) -> Result<StreamSweepResult, AutoPowerError> {
        self.streaming_sweep_with(scope, model, None, options, extras)
    }

    fn streaming_sweep_with(
        &self,
        scope: StreamScope,
        model: &dyn PowerModel,
        train_configs: Option<Vec<ConfigId>>,
        options: &StreamOptions,
        extras: &StreamExtras<'_>,
    ) -> Result<StreamSweepResult, AutoPowerError> {
        let space = &self.settings().sweep_space;
        let workloads = self.settings().average_workloads.clone();
        let spec = self.sweep_spec();
        let scope_total = match scope {
            StreamScope::Sampled(count) => {
                assert!(count > 0, "a sweep needs at least one configuration");
                count as u64
            }
            StreamScope::Full => space.total(),
        };
        assert!(scope_total > 0, "the design space is empty");
        let mut fingerprint = sweep_fingerprint(space, &workloads, model, scope, &spec.sim);
        // Surrogate backing and constraints join the fingerprint: resuming a
        // checkpoint under a different surrogate, audit rate or feasibility
        // bound would silently mix two different sweeps.  Exact unconstrained
        // runs fold nothing, keeping their fingerprints (and old checkpoints)
        // unchanged.
        let mut extra = String::new();
        if let Some(p) = extras.constraints.max_power {
            let _ = write!(extra, "max-power {:016x};", p.to_bits());
        }
        if let Some(i) = extras.constraints.min_ipc {
            let _ = write!(extra, "min-ipc {:016x};", i.to_bits());
        }
        if let Some(s) = &extras.surrogate {
            let _ = write!(extra, "audit-rate {:016x};", s.audit_rate.to_bits());
        }
        fingerprint = fnv1a(fingerprint, extra.as_bytes());
        if let Some(s) = &extras.surrogate {
            fingerprint = fnv1a(fingerprint, encode_surrogate(s.surrogate).as_bytes());
        }
        let stream_spec = StreamSpec {
            top_k: TOP_K,
            sketch_level_capacity: SKETCH_LEVEL_CAPACITY,
        };
        let (mut aggregator, start, saved_audit, salvage) = if options.resume {
            let path = options.checkpoint.as_ref().ok_or_else(|| {
                AutoPowerError::Checkpoint("--resume requires --checkpoint FILE".to_owned())
            })?;
            // Salvage mode: a main file torn by a crash falls back to a
            // complete fingerprint-matching `.tmp` sibling; what was
            // recovered is surfaced through `diagnostics()`.
            let (checkpoint, salvage) = load_checkpoint_salvaged(path, Some(fingerprint))?;
            if checkpoint.fingerprint != fingerprint {
                return Err(AutoPowerError::Checkpoint(format!(
                    "{} belongs to a different sweep (space, workloads, model, scope or \
                     simulation settings changed since it was written)",
                    path.display()
                )));
            }
            if checkpoint.aggregator.per_config() != workloads.len() {
                return Err(AutoPowerError::Checkpoint(format!(
                    "{} aggregates {} workload(s) per configuration, this sweep has {}",
                    path.display(),
                    checkpoint.aggregator.per_config(),
                    workloads.len()
                )));
            }
            (
                checkpoint.aggregator,
                checkpoint.cursor.offset,
                checkpoint.audit,
                salvage,
            )
        } else {
            (
                SweepAggregator::new(workloads.len(), &stream_spec)
                    .with_pareto_constraints(extras.constraints),
                0,
                None,
                None,
            )
        };

        let mut engine = SweepEngine::new(model, spec);
        if let Some(s) = &extras.surrogate {
            engine = engine.with_backend(SimBackend::Surrogate {
                surrogate: s.surrogate,
                audit_rate: s.audit_rate,
            })?;
        }
        let engine = engine;
        if let Some(audit) = saved_audit {
            engine.restore_audit_state(audit);
        }
        let checkpoint_path = options.checkpoint.clone();
        let max_chunks = options.max_chunks;
        let mut chunks_done = 0u64;
        let after_chunk = |aggregator: &SweepAggregator, folded: u64| {
            if let Some(path) = &checkpoint_path {
                save_checkpoint(
                    &SweepCheckpoint {
                        fingerprint,
                        cursor: ChunkCursor {
                            offset: start + folded,
                        },
                        aggregator: aggregator.clone(),
                        audit: engine.audit_state(),
                    },
                    path,
                )?;
            }
            chunks_done += 1;
            Ok(max_chunks == 0 || chunks_done < max_chunks)
        };
        let skip = usize::try_from(start)
            .map_err(|_| AutoPowerError::Checkpoint(format!("cursor offset {start} overflows")))?;
        let progress = match scope {
            StreamScope::Full => engine.stream(
                space.enumerate().skip(skip),
                &workloads,
                &mut aggregator,
                after_chunk,
            )?,
            StreamScope::Sampled(count) => engine.stream(
                space.sample(count, SAMPLE_SEED).into_iter().skip(skip),
                &workloads,
                &mut aggregator,
                after_chunk,
            )?,
        };
        debug_assert_eq!(
            aggregator.configs_folded(),
            start + progress.configs_streamed
        );
        let audit = engine.audit_report();
        if let (Some(report), Some(s)) = (&audit, &extras.surrogate) {
            // An *interrupted* run may legitimately have audited nothing yet;
            // a completed one presenting an empty error table would be a
            // silently-unvalidated report.
            if progress.complete {
                refuse_unaudited(report, aggregator.configs_folded(), s.audit_rate)?;
            }
        }
        Ok(StreamSweepResult {
            model: model.kind(),
            train_configs,
            workloads,
            scope,
            scope_total,
            streamed: aggregator.configs_folded(),
            complete: progress.complete,
            checkpoint: options.checkpoint.clone(),
            cache_stats: spec.use_sim_cache.then(|| engine.cache_stats()),
            peak_retained_points: progress.peak_retained_points,
            audit,
            audit_rate: extras.surrogate.as_ref().map(|s| s.audit_rate),
            salvage,
            aggregator,
        })
    }

    /// Computes the power-vs-IPC-vs-area Pareto frontier of the design space
    /// under a freshly trained registry model (the `pareto` CLI verb).
    /// Always streams — the frontier needs no point retention.
    ///
    /// # Errors
    ///
    /// Returns an error if training fails.
    pub fn pareto_frontier(
        &self,
        scope: StreamScope,
        kind: ModelKind,
    ) -> Result<ParetoResult, AutoPowerError> {
        self.pareto_frontier_opts(scope, kind, &StreamExtras::default())
    }

    /// [`Experiments::pareto_frontier`] with scoring extras: feasibility
    /// constraints (`--max-power` / `--min-ipc`) applied before the frontier
    /// fold and/or a surrogate backend (`--surrogate`).
    ///
    /// # Errors
    ///
    /// Returns an error if training fails, the surrogate is incompatible, or
    /// a surrogate run audited zero configurations.
    ///
    /// # Panics
    ///
    /// Panics if `extras.constraints` carry a non-finite or non-positive
    /// bound (the CLI validates them at parse time).
    pub fn pareto_frontier_opts(
        &self,
        scope: StreamScope,
        kind: ModelKind,
        extras: &StreamExtras<'_>,
    ) -> Result<ParetoResult, AutoPowerError> {
        let corpus = self.sweep_training_corpus();
        let model = kind.train(&corpus, &self.settings().train_two)?;
        self.pareto_with(
            scope,
            model.as_ref(),
            Some(self.settings().train_two.clone()),
            extras,
        )
    }

    /// [`Experiments::pareto_frontier`] under an already-trained model (the
    /// `pareto --load-model FILE` CLI path).
    ///
    /// # Errors
    ///
    /// Returns an error if the streaming sweep fails.
    pub fn pareto_frontier_loaded(
        &self,
        scope: StreamScope,
        model: &dyn PowerModel,
    ) -> Result<ParetoResult, AutoPowerError> {
        self.pareto_with(scope, model, None, &StreamExtras::default())
    }

    /// [`Experiments::pareto_frontier_loaded`] with scoring extras (see
    /// [`Experiments::pareto_frontier_opts`]).
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as
    /// [`Experiments::pareto_frontier_opts`].
    pub fn pareto_frontier_loaded_opts(
        &self,
        scope: StreamScope,
        model: &dyn PowerModel,
        extras: &StreamExtras<'_>,
    ) -> Result<ParetoResult, AutoPowerError> {
        self.pareto_with(scope, model, None, extras)
    }

    fn pareto_with(
        &self,
        scope: StreamScope,
        model: &dyn PowerModel,
        train_configs: Option<Vec<ConfigId>>,
        extras: &StreamExtras<'_>,
    ) -> Result<ParetoResult, AutoPowerError> {
        let sweep = self.streaming_sweep_with(
            scope,
            model,
            train_configs,
            &StreamOptions::default(),
            extras,
        )?;
        Ok(ParetoResult {
            model: sweep.model,
            train_configs: sweep.train_configs,
            workloads: sweep.workloads,
            scope: sweep.scope,
            scope_total: sweep.scope_total,
            frontier: sweep
                .aggregator
                .pareto()
                .sorted_by_power()
                .into_iter()
                .cloned()
                .collect(),
            constraints: *sweep.aggregator.pareto_constraints(),
            audit: sweep.audit,
            audit_rate: sweep.audit_rate,
            cache_stats: sweep.cache_stats,
        })
    }
}

/// A design space folded small enough that full-space streaming is test-cheap
/// (a few dozen valid configurations).
#[cfg(test)]
fn tiny_space() -> DesignSpace {
    DesignSpace::boom()
        .with_axis(HwParam::FetchWidth, vec![4])
        .with_axis(HwParam::DecodeWidth, vec![2])
        .with_axis(HwParam::RobEntry, vec![48, 64])
        .with_axis(HwParam::IntIssueWidth, vec![2])
        .with_axis(HwParam::MemFpIssueWidth, vec![1])
        .with_axis(HwParam::CacheWay, vec![2, 4])
        .with_axis(HwParam::DtlbEntry, vec![8])
        .with_axis(HwParam::BranchCount, vec![8, 12])
        .with_axis(HwParam::MshrEntry, vec![2, 4])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate_exp::SurrogateOptions;
    use crate::ExperimentSettings;
    use autopower::area_proxy;

    #[test]
    fn sampled_streaming_matches_the_materialized_sweep_bit_for_bit() {
        let exp = Experiments::fast();
        let materialized = exp.design_space_sweep(16);
        let streamed = exp
            .streaming_sweep(
                StreamScope::Sampled(16),
                ModelKind::AutoPower,
                &StreamOptions::default(),
            )
            .unwrap();
        assert!(streamed.complete);
        assert_eq!(streamed.streamed, 16);

        // Same top-10, bit for bit.
        let expected = materialized.top_by_efficiency(TOP_K);
        assert_eq!(streamed.aggregator.top(), expected);

        // Exact (uncompacted) quantiles equal the materialized report's.
        let series = streamed.aggregator.series(PowerSeries::Total);
        assert!(series.sketch().is_exact());
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let expected = materialized.total_power_quantile(q);
            let got = series.quantile(q).unwrap();
            assert_eq!(got.to_bits(), expected.to_bits(), "quantile {q} diverged");
        }
        assert_eq!(series.min(), Some(materialized.total_power_quantile(0.0)));
        assert_eq!(series.max(), Some(materialized.total_power_quantile(1.0)));

        let text = streamed.to_string();
        assert!(text.contains("16 sampled configurations"));
        assert!(text.contains("exact quantiles"));
        assert!(text.contains("pJ/instr"));
        // Process-local numbers stay out of the resume-invariant report.
        assert!(!text.contains("cache"));
        assert!(streamed.diagnostics().contains("simulation cache"));
        assert!(streamed.diagnostics().contains("peak retained points"));
    }

    #[test]
    fn full_space_streaming_covers_total_exactly() {
        let space = tiny_space();
        let total = space.total();
        assert!(total > 0);
        let settings = ExperimentSettings::fast()
            .with_sweep_space(space)
            .with_chunk(4);
        let exp = Experiments::new(settings);
        let result = exp
            .streaming_sweep(
                StreamScope::Full,
                ModelKind::AutoPower,
                &StreamOptions::default(),
            )
            .unwrap();
        assert!(result.complete);
        assert_eq!(result.scope_total, total);
        assert_eq!(result.streamed, total);
        assert_eq!(result.aggregator.configs_folded(), total);
        // One chunk's points at a time, never the whole space.
        assert_eq!(
            result.peak_retained_points,
            4 * exp.settings().average_workloads.len()
        );
        assert!(result.to_string().contains("full space"));
    }

    #[test]
    fn max_chunks_interrupts_and_resume_completes_byte_identically() {
        let dir = std::env::temp_dir().join(format!("autopower-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.ckpt");
        let settings = || {
            ExperimentSettings::fast()
                .with_sweep_space(tiny_space())
                .with_chunk(3)
                .with_threads(2)
        };
        let scope = StreamScope::Full;

        // One-shot reference run, no checkpointing at all.
        let one_shot = Experiments::new(settings())
            .streaming_sweep(scope, ModelKind::AutoPower, &StreamOptions::default())
            .unwrap();
        assert!(one_shot.complete);

        // "Killed" after two chunks, at a checkpointed boundary.
        let interrupted = Experiments::new(settings())
            .streaming_sweep(
                scope,
                ModelKind::AutoPower,
                &StreamOptions {
                    checkpoint: Some(path.clone()),
                    resume: false,
                    max_chunks: 2,
                },
            )
            .unwrap();
        assert!(!interrupted.complete);
        assert_eq!(interrupted.streamed, 6);
        assert!(interrupted.to_string().contains("--resume"));

        // Resumed in a fresh harness (fresh corpus, fresh caches).
        let resumed = Experiments::new(settings())
            .streaming_sweep(
                scope,
                ModelKind::AutoPower,
                &StreamOptions {
                    checkpoint: Some(path.clone()),
                    resume: true,
                    max_chunks: 0,
                },
            )
            .unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.streamed, one_shot.streamed);
        assert_eq!(resumed.aggregator, one_shot.aggregator);
        assert_eq!(
            resumed.to_string(),
            one_shot.to_string(),
            "resumed report is not byte-identical to the one-shot run"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_refuses_a_foreign_checkpoint() {
        let dir = std::env::temp_dir().join(format!("autopower-foreign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foreign.ckpt");
        let exp = Experiments::fast();
        // Checkpoint a 6-config sampled sweep...
        exp.streaming_sweep(
            StreamScope::Sampled(6),
            ModelKind::AutoPower,
            &StreamOptions {
                checkpoint: Some(path.clone()),
                resume: false,
                max_chunks: 0,
            },
        )
        .unwrap();
        // ...then try to resume it as a different scope and a different model.
        for (scope, kind) in [
            (StreamScope::Sampled(8), ModelKind::AutoPower),
            (StreamScope::Sampled(6), ModelKind::McpatCalib),
        ] {
            let err = exp
                .streaming_sweep(
                    scope,
                    kind,
                    &StreamOptions {
                        checkpoint: Some(path.clone()),
                        resume: true,
                        max_chunks: 0,
                    },
                )
                .unwrap_err();
            assert!(
                err.to_string().contains("different sweep"),
                "unexpected error: {err}"
            );
        }
        // Resume without a checkpoint path is rejected up front.
        let err = exp
            .streaming_sweep(
                StreamScope::Sampled(6),
                ModelKind::AutoPower,
                &StreamOptions {
                    checkpoint: None,
                    resume: true,
                    max_chunks: 0,
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("--checkpoint"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn total_only_streaming_reports_only_the_total_row() {
        let exp = Experiments::fast();
        let result = exp
            .streaming_sweep(
                StreamScope::Sampled(6),
                ModelKind::McpatCalib,
                &StreamOptions::default(),
            )
            .unwrap();
        assert!(!result.aggregator.resolves_groups());
        let text = result.to_string();
        assert!(!text.contains("clock"));
        assert!(text.contains("total"));
        assert!(text.contains("McPAT-Calib"));
    }

    #[test]
    fn pareto_frontier_is_non_dominated_and_sorted_by_power() {
        let settings = ExperimentSettings::fast().with_sweep_space(tiny_space());
        let exp = Experiments::new(settings);
        let result = exp
            .pareto_frontier(StreamScope::Full, ModelKind::AutoPower)
            .unwrap();
        assert!(!result.frontier.is_empty());
        assert!(result.frontier.len() as u64 <= result.scope_total);
        for pair in result.frontier.windows(2) {
            assert!(pair[0].summary.mean_total <= pair[1].summary.mean_total);
        }
        for a in &result.frontier {
            assert_eq!(a.area, area_proxy(&a.summary.config));
            for b in &result.frontier {
                let dominates = a.summary.mean_total <= b.summary.mean_total
                    && a.summary.mean_ipc >= b.summary.mean_ipc
                    && a.area <= b.area;
                assert!(
                    std::ptr::eq(a, b) || !dominates,
                    "{} dominates {}",
                    a.summary.config.id,
                    b.summary.config.id
                );
            }
        }
        let text = result.to_string();
        assert!(text.contains("Pareto frontier"));
        assert!(text.contains("area(kFBE)"));
        assert!(text.contains("full space"));
    }

    #[test]
    fn surrogate_streaming_with_full_audit_matches_exact_bit_for_bit() {
        let exp = Experiments::fast();
        let surrogate = exp
            .sweep_surrogate(&SurrogateOptions {
                train_count: 10,
                ..SurrogateOptions::default()
            })
            .unwrap();
        let exact = exp
            .streaming_sweep(
                StreamScope::Sampled(12),
                ModelKind::AutoPower,
                &StreamOptions::default(),
            )
            .unwrap();
        let extras = StreamExtras {
            surrogate: Some(SurrogateSpec {
                surrogate: &surrogate,
                audit_rate: 1.0,
            }),
            ..StreamExtras::default()
        };
        let audited = exp
            .streaming_sweep_opts(
                StreamScope::Sampled(12),
                ModelKind::AutoPower,
                &StreamOptions::default(),
                &extras,
            )
            .unwrap();
        // Audit rate 1.0 simulates every configuration exactly, so the folded
        // aggregate is bit-identical to the exact backend's.
        assert_eq!(audited.aggregator, exact.aggregator);
        let report = audited
            .audit
            .as_ref()
            .expect("surrogate runs carry an audit");
        assert_eq!(
            report.audited_points,
            12 * exp.settings().average_workloads.len() as u64
        );
        assert_eq!(audited.audit_rate, Some(1.0));
        let text = audited.to_string();
        assert!(text.contains("surrogate audit"), "got: {text}");
        assert!(text.contains("12 of 12 configurations"), "got: {text}");
        assert!(text.contains("predicted total power"));
        // Exact sweeps print no audit section at all.
        assert!(exact.audit.is_none());
        assert!(!exact.to_string().contains("surrogate audit"));
    }

    #[test]
    fn surrogate_checkpoint_resume_is_byte_identical_including_the_audit_table() {
        let dir = std::env::temp_dir().join(format!("autopower-surres-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("surrogate.ckpt");
        let settings = || {
            ExperimentSettings::fast()
                .with_sweep_space(tiny_space())
                .with_chunk(3)
                .with_threads(2)
        };
        let scope = StreamScope::Full;
        // The surrogate is trained deterministically, so each harness can
        // train its own copy and the fingerprints still match.
        let train = |exp: &Experiments| {
            exp.sweep_surrogate(&SurrogateOptions {
                train_count: 8,
                ..SurrogateOptions::default()
            })
            .unwrap()
        };

        let one_shot_exp = Experiments::new(settings());
        let one_shot_surrogate = train(&one_shot_exp);
        let extras = |surrogate| StreamExtras {
            surrogate: Some(SurrogateSpec {
                surrogate,
                audit_rate: 0.5,
            }),
            ..StreamExtras::default()
        };
        let one_shot = one_shot_exp
            .streaming_sweep_opts(
                scope,
                ModelKind::AutoPower,
                &StreamOptions::default(),
                &extras(&one_shot_surrogate),
            )
            .unwrap();
        assert!(one_shot.complete);
        assert!(one_shot.audit.as_ref().unwrap().audited_points > 0);

        let interrupted_exp = Experiments::new(settings());
        let interrupted_surrogate = train(&interrupted_exp);
        let interrupted = interrupted_exp
            .streaming_sweep_opts(
                scope,
                ModelKind::AutoPower,
                &StreamOptions {
                    checkpoint: Some(path.clone()),
                    resume: false,
                    max_chunks: 2,
                },
                &extras(&interrupted_surrogate),
            )
            .unwrap();
        assert!(!interrupted.complete);

        let resumed_exp = Experiments::new(settings());
        let resumed_surrogate = train(&resumed_exp);
        let resumed = resumed_exp
            .streaming_sweep_opts(
                scope,
                ModelKind::AutoPower,
                &StreamOptions {
                    checkpoint: Some(path.clone()),
                    resume: true,
                    max_chunks: 0,
                },
                &extras(&resumed_surrogate),
            )
            .unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.aggregator, one_shot.aggregator);
        assert_eq!(resumed.audit, one_shot.audit);
        assert_eq!(
            resumed.to_string(),
            one_shot.to_string(),
            "resumed surrogate report (audit table included) is not byte-identical"
        );

        // An exact checkpoint cannot be resumed as a surrogate sweep (and
        // vice versa): the surrogate and audit rate join the fingerprint.
        let err = resumed_exp
            .streaming_sweep(
                scope,
                ModelKind::AutoPower,
                &StreamOptions {
                    checkpoint: Some(path.clone()),
                    resume: true,
                    max_chunks: 0,
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("different sweep"), "got: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unaudited_surrogate_runs_are_refused_unless_interrupted() {
        let dir = std::env::temp_dir().join(format!("autopower-unaud-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unaudited.ckpt");
        // Two-configuration chunks, so `max_chunks: 1` genuinely interrupts
        // the six-configuration sweep below.
        let exp = Experiments::new(ExperimentSettings::fast().with_chunk(2));
        let surrogate = exp
            .sweep_surrogate(&SurrogateOptions {
                train_count: 8,
                ..SurrogateOptions::default()
            })
            .unwrap();
        // An audit rate this small deterministically selects none of the
        // sampled configurations.
        let extras = StreamExtras {
            surrogate: Some(SurrogateSpec {
                surrogate: &surrogate,
                audit_rate: 1e-9,
            }),
            ..StreamExtras::default()
        };
        let err = exp
            .streaming_sweep_opts(
                StreamScope::Sampled(6),
                ModelKind::AutoPower,
                &StreamOptions::default(),
                &extras,
            )
            .unwrap_err();
        assert!(err.to_string().contains("audited zero"), "got: {err}");

        // Interrupted at a chunk boundary the same run is *not* refused (the
        // audit may simply not have reached an audited configuration yet) —
        // and with zero exact simulations the enabled cache reports itself
        // idle instead of a misleading 0.0% hit rate.
        let interrupted = exp
            .streaming_sweep_opts(
                StreamScope::Sampled(6),
                ModelKind::AutoPower,
                &StreamOptions {
                    checkpoint: Some(path.clone()),
                    resume: false,
                    max_chunks: 1,
                },
                &extras,
            )
            .unwrap();
        assert!(!interrupted.complete);
        assert_eq!(interrupted.audit.as_ref().unwrap().audited_points, 0);
        let diagnostics = interrupted.diagnostics();
        assert!(diagnostics.contains("idle"), "got: {diagnostics}");
        assert!(!diagnostics.contains("0.0%"), "got: {diagnostics}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn constrained_pareto_drops_infeasible_configurations_end_to_end() {
        let settings = ExperimentSettings::fast().with_sweep_space(tiny_space());
        let exp = Experiments::new(settings);
        let unconstrained = exp
            .pareto_frontier(StreamScope::Full, ModelKind::AutoPower)
            .unwrap();
        assert!(!unconstrained.constraints.is_constrained());
        assert!(
            unconstrained.frontier.len() >= 2,
            "need a splittable frontier"
        );
        // Bound the power between the frontier's extremes so the constraint
        // genuinely carves something away.
        let bound = unconstrained.frontier[unconstrained.frontier.len() / 2]
            .summary
            .mean_total;
        let extras = StreamExtras {
            constraints: ParetoConstraints {
                max_power: Some(bound),
                min_ipc: None,
            },
            ..StreamExtras::default()
        };
        let constrained = exp
            .pareto_frontier_opts(StreamScope::Full, ModelKind::AutoPower, &extras)
            .unwrap();
        assert!(constrained.frontier.len() < unconstrained.frontier.len());
        assert!(!constrained.frontier.is_empty());
        for entry in &constrained.frontier {
            assert!(entry.summary.mean_total <= bound);
            // For a max-power bound, pre-filtering coincides with filtering
            // the unconstrained frontier: every surviving entry is one of
            // the unconstrained frontier's entries.
            assert!(
                unconstrained
                    .frontier
                    .iter()
                    .any(|u| u.summary.config.id == entry.summary.config.id),
                "{} is not on the unconstrained frontier",
                entry.summary.config.id
            );
        }
        let text = constrained.to_string();
        assert!(text.contains("feasibility:"), "got: {text}");
        assert!(text.contains("applied before the frontier fold"));
        assert!(!unconstrained.to_string().contains("feasibility:"));
    }

    #[test]
    fn surrogate_pareto_reports_the_audit_table() {
        let settings = ExperimentSettings::fast().with_sweep_space(tiny_space());
        let exp = Experiments::new(settings);
        let surrogate = exp
            .sweep_surrogate(&SurrogateOptions {
                train_count: 8,
                ..SurrogateOptions::default()
            })
            .unwrap();
        let extras = StreamExtras {
            surrogate: Some(SurrogateSpec {
                surrogate: &surrogate,
                audit_rate: 1.0,
            }),
            ..StreamExtras::default()
        };
        let result = exp
            .pareto_frontier_opts(StreamScope::Full, ModelKind::AutoPower, &extras)
            .unwrap();
        // Full audit: the frontier equals the exact run's.
        let exact = exp
            .pareto_frontier(StreamScope::Full, ModelKind::AutoPower)
            .unwrap();
        assert_eq!(result.frontier, exact.frontier);
        assert!(result.audit.as_ref().unwrap().audited_points > 0);
        let text = result.to_string();
        assert!(text.contains("surrogate audit"), "got: {text}");
        assert!(text.contains("predicted total power"));
    }

    #[test]
    fn surrogate_error_bound_stays_within_the_committed_envelope() {
        // The acceptance space: 200 sampled configurations, default training
        // budget, default audit rate.  The thresholds are the committed error
        // envelope — if surrogate quality regresses past them, this fails.
        let exp = Experiments::fast();
        let surrogate = exp.sweep_surrogate(&SurrogateOptions::default()).unwrap();
        let extras = StreamExtras {
            surrogate: Some(SurrogateSpec {
                surrogate: &surrogate,
                audit_rate: 0.25,
            }),
            ..StreamExtras::default()
        };
        let result = exp
            .streaming_sweep_opts(
                StreamScope::Sampled(200),
                ModelKind::AutoPower,
                &StreamOptions::default(),
                &extras,
            )
            .unwrap();
        let report = result.audit.expect("audited sweep");
        assert!(report.audited_points > 0);
        let ipc = &report.per_event[0];
        assert_eq!(ipc.name, "ipc");
        let ipc_mape = ipc.mape.expect("ipc error is defined");
        let total_mape = report.total_mape.expect("total error is defined");
        assert!(
            ipc_mape < 0.15,
            "surrogate ipc MAPE {ipc_mape:.4} breached the committed 15% envelope"
        );
        assert!(
            total_mape < 0.10,
            "surrogate total-power MAPE {total_mape:.4} breached the committed 10% envelope"
        );
    }

    #[test]
    fn fingerprint_separates_every_input_dimension() {
        let exp = Experiments::fast();
        let corpus = exp.sweep_training_corpus();
        let auto = ModelKind::AutoPower
            .train(&corpus, &exp.settings().train_two)
            .unwrap();
        let mcpat = ModelKind::McpatCalib
            .train(&corpus, &exp.settings().train_two)
            .unwrap();
        let space = DesignSpace::boom();
        let workloads = [Workload::Dhrystone, Workload::Qsort];
        let sim = SimConfig::fast();
        let base = sweep_fingerprint(
            &space,
            &workloads,
            auto.as_ref(),
            StreamScope::Sampled(8),
            &sim,
        );
        // Stable for identical inputs.
        assert_eq!(
            base,
            sweep_fingerprint(
                &space,
                &workloads,
                auto.as_ref(),
                StreamScope::Sampled(8),
                &sim
            )
        );
        // Any dimension changing changes the fingerprint.
        let variants = [
            sweep_fingerprint(
                &space.clone().with_axis(HwParam::CacheWay, vec![2]),
                &workloads,
                auto.as_ref(),
                StreamScope::Sampled(8),
                &sim,
            ),
            sweep_fingerprint(
                &space,
                &[Workload::Dhrystone],
                auto.as_ref(),
                StreamScope::Sampled(8),
                &sim,
            ),
            sweep_fingerprint(
                &space,
                &workloads,
                mcpat.as_ref(),
                StreamScope::Sampled(8),
                &sim,
            ),
            sweep_fingerprint(&space, &workloads, auto.as_ref(), StreamScope::Full, &sim),
            sweep_fingerprint(
                &space,
                &workloads,
                auto.as_ref(),
                StreamScope::Sampled(9),
                &sim,
            ),
            sweep_fingerprint(
                &space,
                &workloads,
                auto.as_ref(),
                StreamScope::Sampled(8),
                &SimConfig {
                    stream_seed: sim.stream_seed + 1,
                    ..sim
                },
            ),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} collided with the base fingerprint");
        }
    }
}
