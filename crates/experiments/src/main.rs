//! Command-line entry point of the experiment harness.
//!
//! ```text
//! autopower-experiments [--fast] [EXPERIMENT ...]
//! ```
//!
//! `EXPERIMENT` is one of `obs1`, `table1`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`,
//! `table4`, `ablation`, or `all` (the default).  `--fast` switches to the reduced
//! settings used by tests and benches.

use autopower_experiments::Experiments;
use std::process::ExitCode;

const USAGE: &str = "usage: autopower-experiments [--fast] [obs1|table1|fig4|fig5|fig6|fig7|fig8|table4|ablation|all ...]";

fn run_one(experiments: &Experiments, name: &str) -> Result<(), String> {
    match name {
        "obs1" => println!("{}\n", experiments.obs1_breakdown()),
        "table1" => println!("{}\n", experiments.table1_hardware_model()),
        "fig4" => println!("{}\n", experiments.fig4_accuracy_two_configs()),
        "fig5" => println!("{}\n", experiments.fig5_accuracy_three_configs()),
        "fig6" => println!("{}\n", experiments.fig6_training_sweep()),
        "fig7" => println!("{}\n", experiments.fig7_clock_detail()),
        "fig8" => println!("{}\n", experiments.fig8_sram_detail()),
        "table4" => println!("{}\n", experiments.table4_power_trace()),
        "ablation" => println!("{}\n", experiments.ablation_study()),
        other => return Err(format!("unknown experiment '{other}'\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let mut requested: Vec<String> = args
        .into_iter()
        .filter(|a| a != "--fast")
        .collect();
    if requested.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if requested.is_empty() || requested.iter().any(|a| a == "all") {
        requested = [
            "obs1", "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "table4", "ablation",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    }

    let experiments = if fast {
        Experiments::fast()
    } else {
        Experiments::paper()
    };
    println!(
        "AutoPower experiment harness ({} settings)\n",
        if fast { "fast" } else { "paper" }
    );

    for name in &requested {
        if let Err(message) = run_one(&experiments, name) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
