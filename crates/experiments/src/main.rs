//! Command-line entry point of the experiment harness.
//!
//! ```text
//! autopower-experiments [--fast] [--threads N] [--count N] [--model NAME] [EXPERIMENT ...]
//! ```
//!
//! `EXPERIMENT` is one of `obs1`, `table1`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`,
//! `table4`, `ablation`, `sweep`, `xval`, `compare`, or `all` (the default).
//! `--fast` switches to the reduced settings used by tests and benches;
//! `--threads N` sets the worker count of the corpus-generation and sweep
//! pipelines (default: one per available core, `1` = serial); `--count N` sets
//! how many generated configurations the `sweep` and `compare` experiments
//! score; `--model NAME` selects the registry model the `sweep`, `table4` and
//! `xval` experiments run under (`autopower`, `mcpat-calib`,
//! `mcpat-calib-component`, `autopower-minus`).  Flags and experiment names may
//! appear in any order; unknown or duplicate experiment names and unknown model
//! names are rejected before any corpus is generated.

use autopower::{CorpusSpec, ModelKind};
use autopower_experiments::{ExperimentSettings, Experiments};
use std::process::ExitCode;

const ALL_EXPERIMENTS: [&str; 12] = [
    "obs1", "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "table4", "ablation", "sweep",
    "xval", "compare",
];

/// The usage string, with the experiment and model lists derived from
/// [`ALL_EXPERIMENTS`] and [`ModelKind::ALL`] so help text cannot drift from
/// the registries.
fn usage() -> String {
    let models: Vec<&str> = ModelKind::ALL
        .iter()
        .map(|kind| kind.registry_name())
        .collect();
    format!(
        "usage: autopower-experiments [--fast] [--threads N] [--count N] [--model NAME] \
         [{}|all ...]\nmodels: {} (default: {})",
        ALL_EXPERIMENTS.join("|"),
        models.join(", "),
        ModelKind::AutoPower,
    )
}

/// Default number of generated configurations the `sweep` and `compare`
/// experiments score.
const DEFAULT_SWEEP_COUNT: usize = 256;

/// Everything the command line selects: settings knobs and the experiment list.
#[derive(Debug)]
struct CliArgs {
    fast: bool,
    threads: usize,
    count: usize,
    model: ModelKind,
    help: bool,
    requested: Vec<String>,
}

/// Parses the argument list; flags and experiment names may be interleaved freely.
///
/// Experiment names are validated against [`ALL_EXPERIMENTS`] and de-duplicated
/// here, at parse time — a typo fails fast with the usage string instead of
/// surfacing only after minutes of corpus generation.
fn parse_args(args: impl IntoIterator<Item = String>) -> Result<CliArgs, String> {
    let mut parsed = CliArgs {
        fast: false,
        threads: 0,
        count: DEFAULT_SWEEP_COUNT,
        model: ModelKind::AutoPower,
        help: false,
        requested: Vec::new(),
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fast" => parsed.fast = true,
            "--help" | "-h" => parsed.help = true,
            "--threads" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--threads needs a value\n{}", usage()))?;
                parsed.threads = parse_count(&value, "--threads")?;
            }
            "--count" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--count needs a value\n{}", usage()))?;
                parsed.count = parse_sweep_count(&value)?;
            }
            "--model" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--model needs a value\n{}", usage()))?;
                parsed.model = parse_model(&value)?;
            }
            other => {
                if let Some(value) = other.strip_prefix("--threads=") {
                    parsed.threads = parse_count(value, "--threads")?;
                } else if let Some(value) = other.strip_prefix("--count=") {
                    parsed.count = parse_sweep_count(value)?;
                } else if let Some(value) = other.strip_prefix("--model=") {
                    parsed.model = parse_model(value)?;
                } else if other.starts_with('-') {
                    return Err(format!("unknown flag '{other}'\n{}", usage()));
                } else if other == "all" || ALL_EXPERIMENTS.contains(&other) {
                    if !parsed.requested.iter().any(|r| r == other) {
                        parsed.requested.push(other.to_owned());
                    }
                } else {
                    return Err(format!("unknown experiment '{other}'\n{}", usage()));
                }
            }
        }
    }
    if parsed.requested.is_empty() || parsed.requested.iter().any(|a| a == "all") {
        parsed.requested = ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()).collect();
    }
    Ok(parsed)
}

fn parse_count(value: &str, flag: &str) -> Result<usize, String> {
    value.parse::<usize>().map_err(|_| {
        format!(
            "{flag} expects a non-negative integer, got '{value}'\n{}",
            usage()
        )
    })
}

/// Like [`parse_count`] but rejects zero: an empty sweep has nothing to report
/// (whereas `--threads 0` legitimately means "auto").
fn parse_sweep_count(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "--count expects a positive integer, got '{value}'\n{}",
            usage()
        )),
    }
}

/// Resolves a `--model` value against the [`ModelKind`] registry.
fn parse_model(value: &str) -> Result<ModelKind, String> {
    value
        .parse::<ModelKind>()
        .map_err(|e| format!("{e}\n{}", usage()))
}

fn run_one(experiments: &Experiments, name: &str, args: &CliArgs) -> Result<(), String> {
    let err = |e: autopower::AutoPowerError| format!("{name}: {e}");
    match name {
        "obs1" => println!("{}\n", experiments.obs1_breakdown()),
        "table1" => println!("{}\n", experiments.table1_hardware_model()),
        "fig4" => println!(
            "{}\n",
            experiments.fig4_accuracy_two_configs().map_err(err)?
        ),
        "fig5" => println!(
            "{}\n",
            experiments.fig5_accuracy_three_configs().map_err(err)?
        ),
        "fig6" => println!("{}\n", experiments.fig6_training_sweep().map_err(err)?),
        "fig7" => println!("{}\n", experiments.fig7_clock_detail()),
        "fig8" => println!("{}\n", experiments.fig8_sram_detail()),
        "table4" => println!(
            "{}\n",
            experiments
                .table4_power_trace_model(args.model)
                .map_err(err)?
        ),
        "ablation" => println!("{}\n", experiments.ablation_study()),
        "sweep" => println!(
            "{}\n",
            experiments
                .design_space_sweep_model(args.count, args.model)
                .map_err(err)?
        ),
        "xval" => println!(
            "{}\n",
            experiments
                .cross_validation_model(args.model)
                .map_err(err)?
        ),
        "compare" => println!(
            "{}\n",
            experiments.model_comparison(args.count).map_err(err)?
        ),
        other => return Err(format!("unknown experiment '{other}'\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let settings = if args.fast {
        ExperimentSettings::fast()
    } else {
        ExperimentSettings::paper()
    }
    .with_threads(args.threads);
    let experiments = Experiments::new(settings);
    // Resolve through CorpusSpec so the banner always matches the worker count
    // generation will actually use.
    let effective = CorpusSpec::paper()
        .threads(args.threads)
        .effective_threads();
    let label = if args.threads == 0 {
        format!("{effective} (auto)")
    } else {
        effective.to_string()
    };
    println!(
        "AutoPower experiment harness ({} settings, {label} corpus worker{})\n",
        if args.fast { "fast" } else { "paper" },
        if effective == 1 { "" } else { "s" },
    );

    for name in &args.requested {
        if let Err(message) = run_one(&experiments, name, &args) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn flags_are_order_independent() {
        for permutation in [
            &["--fast", "--threads", "3", "fig4"][..],
            &["fig4", "--threads", "3", "--fast"][..],
            &["--threads=3", "fig4", "--fast"][..],
        ] {
            let parsed = parse_args(args(permutation)).expect("valid arguments");
            assert!(parsed.fast);
            assert_eq!(parsed.threads, 3);
            assert_eq!(parsed.requested, vec!["fig4".to_owned()]);
            assert!(!parsed.help);
        }
    }

    #[test]
    fn help_wins_regardless_of_position() {
        for permutation in [&["--fast", "--help"][..], &["--help", "--fast", "fig4"][..]] {
            let parsed = parse_args(args(permutation)).expect("valid arguments");
            assert!(parsed.help);
        }
    }

    #[test]
    fn empty_or_all_expands_to_every_experiment() {
        let default = parse_args(args(&[])).expect("valid arguments");
        assert_eq!(default.requested.len(), ALL_EXPERIMENTS.len());
        let all = parse_args(args(&["all", "--fast"])).expect("valid arguments");
        assert_eq!(all.requested.len(), ALL_EXPERIMENTS.len());
    }

    #[test]
    fn bad_flags_and_thread_counts_are_rejected() {
        assert!(parse_args(args(&["--nope"])).is_err());
        assert!(parse_args(args(&["--threads"])).is_err());
        assert!(parse_args(args(&["--threads", "many"])).is_err());
        assert!(parse_args(args(&["--threads=-2"])).is_err());
        assert!(parse_args(args(&["--count"])).is_err());
        assert!(parse_args(args(&["--count", "lots"])).is_err());
        assert!(parse_args(args(&["--count", "0"])).is_err());
        assert!(parse_args(args(&["--count=0"])).is_err());
    }

    #[test]
    fn unknown_experiments_fail_at_parse_time() {
        let err = parse_args(args(&["fig4", "fig9"])).unwrap_err();
        assert!(err.contains("unknown experiment 'fig9'"));
        assert!(err.contains("usage:"), "error must repeat the usage line");
    }

    #[test]
    fn duplicate_experiments_run_once() {
        let parsed = parse_args(args(&["fig4", "sweep", "fig4"])).expect("valid arguments");
        assert_eq!(
            parsed.requested,
            vec!["fig4".to_owned(), "sweep".to_owned()]
        );
    }

    #[test]
    fn sweep_count_flag_is_parsed_in_both_forms() {
        let parsed = parse_args(args(&["sweep"])).expect("valid arguments");
        assert_eq!(parsed.count, DEFAULT_SWEEP_COUNT);
        let parsed = parse_args(args(&["sweep", "--count", "200"])).expect("valid arguments");
        assert_eq!(parsed.count, 200);
        let parsed = parse_args(args(&["--count=64", "sweep"])).expect("valid arguments");
        assert_eq!(parsed.count, 64);
    }

    #[test]
    fn model_flag_selects_a_registry_model_in_both_forms() {
        let parsed = parse_args(args(&["sweep"])).expect("valid arguments");
        assert_eq!(parsed.model, ModelKind::AutoPower);
        let parsed =
            parse_args(args(&["sweep", "--model", "mcpat-calib"])).expect("valid arguments");
        assert_eq!(parsed.model, ModelKind::McpatCalib);
        let parsed =
            parse_args(args(&["--model=autopower-minus", "xval"])).expect("valid arguments");
        assert_eq!(parsed.model, ModelKind::AutoPowerMinus);
    }

    #[test]
    fn unknown_models_fail_at_parse_time() {
        let err = parse_args(args(&["sweep", "--model", "xgboost"])).unwrap_err();
        assert!(err.contains("unknown model 'xgboost'"));
        assert!(err.contains("usage:"), "error must repeat the usage line");
        assert!(parse_args(args(&["--model"])).is_err());
    }

    #[test]
    fn new_experiment_verbs_are_registered() {
        for verb in ["xval", "compare"] {
            let parsed = parse_args(args(&[verb])).expect("valid arguments");
            assert_eq!(parsed.requested, vec![verb.to_owned()]);
        }
        assert!(ALL_EXPERIMENTS.contains(&"xval"));
        assert!(ALL_EXPERIMENTS.contains(&"compare"));
    }
}
