//! Command-line entry point of the experiment harness.
//!
//! ```text
//! autopower-experiments [--fast] [--threads N] [--count N] [--model NAME]
//!                       [--load-model FILE] [--out FILE] [--no-sim-cache]
//!                       [--stream] [--full] [--chunk N] [--checkpoint FILE]
//!                       [--resume] [--max-chunks N] [EXPERIMENT ...]
//! ```
//!
//! `EXPERIMENT` is one of `obs1`, `table1`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`,
//! `table4`, `ablation`, `sweep`, `pareto`, `xval`, `compare`, `save-model`, or
//! `all` (the default; `all` does not include `save-model`, which writes a file).
//! `--fast` switches to the reduced settings used by tests and benches;
//! `--threads N` sets the worker count of the corpus-generation and sweep
//! pipelines (default: one per available core, `1` = serial); `--count N` sets
//! how many generated configurations the `sweep` and `compare` experiments
//! score; `--model NAME` selects the registry model the `sweep`, `table4`,
//! `xval` and `save-model` verbs run under (`autopower`, `mcpat-calib`,
//! `mcpat-calib-component`, `autopower-minus`).
//!
//! Model persistence: `save-model` trains `--model` on the sweep corpus and
//! writes it to `--out FILE` (default `<model>.apm`); `--load-model FILE`
//! makes `sweep` and `table4` restore that trained model instead of
//! retraining — the results are bit-identical to the retrained run.  Flags
//! and experiment names may appear in any order; unknown or duplicate
//! experiment names, unknown model names, `--load-model` on experiments
//! that retrain by design and `--no-sim-cache` on experiments that never
//! cache simulations are rejected before any corpus is generated.
//!
//! `--no-sim-cache` disables the sweep engine's exact simulation memoization
//! (`sweep`, `compare` and `pareto` only) — an audit knob; the scored points
//! are bit-identical either way.
//!
//! Streaming sweeps: `sweep --stream` folds the sampled configurations through
//! the bounded-memory aggregator (same report, O(top-k + sketches + one chunk)
//! memory) and `sweep --full` streams the **entire** enumerable design space
//! instead of `--count` samples.  `--chunk N` sets the configurations per
//! chunk, `--checkpoint FILE` snapshots the aggregate after every chunk,
//! `--resume` continues from that snapshot (byte-identical final report), and
//! `--max-chunks N` stops after N chunks — the deterministic stand-in for an
//! interrupt, used by the CI resume smoke.  `pareto` streams the space and
//! prints the power-vs-IPC-vs-area-proxy non-dominated frontier.  Process-local
//! diagnostics (cache hit rates, peak retained points) go to stderr so
//! one-shot and resumed stdout compare equal.

use autopower::{CorpusSpec, ModelKind, ParetoConstraints};
use autopower_experiments::{
    ExperimentSettings, Experiments, StreamExtras, StreamOptions, StreamScope, StreamSweepResult,
    SurrogateOptions, SurrogateSpec, DEFAULT_AUDIT_RATE, DEFAULT_SURROGATE_TRAIN,
};
use std::path::PathBuf;
use std::process::ExitCode;

const ALL_EXPERIMENTS: [&str; 13] = [
    "obs1", "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "table4", "ablation", "sweep",
    "pareto", "xval", "compare",
];

/// Experiments `--load-model` applies to: the ones that consume exactly one
/// trained model (everything else retrains by design — `xval` per fold,
/// `compare` for every registry entry).
const LOADABLE_EXPERIMENTS: [&str; 3] = ["sweep", "table4", "pareto"];

/// Experiments `--no-sim-cache` applies to: the ones that run the batch sweep
/// engine and therefore memoize simulations across configurations.  The flag
/// is an audit knob — the scored points are bit-identical either way.
const SIM_CACHE_EXPERIMENTS: [&str; 3] = ["sweep", "compare", "pareto"];

/// Experiments that can walk the full design space (`--full`) or stream
/// (`--stream`); `--chunk` is accepted for these plus `compare` (any user of
/// the sweep engine).
const STREAM_EXPERIMENTS: [&str; 2] = ["sweep", "pareto"];

/// Experiments `--checkpoint`/`--resume`/`--max-chunks` apply to: only the
/// streaming sweep persists its aggregate (`pareto` re-streams cheaply and
/// keeps no checkpoint file).
const CHECKPOINT_EXPERIMENTS: [&str; 1] = ["sweep"];

/// Experiments `--surrogate` (and its `--surrogate-train`, `--audit-rate`,
/// `--save-surrogate`, `--load-surrogate` companions) applies to: the
/// design-space scoring verbs.  Everything else reproduces paper numbers and
/// must simulate exactly.
const SURROGATE_EXPERIMENTS: [&str; 2] = ["sweep", "pareto"];

/// Experiments `--max-power`/`--min-ipc` apply to: only the frontier fold
/// filters by feasibility.
const CONSTRAINT_EXPERIMENTS: [&str; 1] = ["pareto"];

/// The verb that trains and saves a model instead of running an experiment
/// (deliberately not part of `all`: it writes a file).
const SAVE_MODEL: &str = "save-model";

/// The usage string, with the experiment and model lists derived from
/// [`ALL_EXPERIMENTS`] and [`ModelKind::ALL`] so help text cannot drift from
/// the registries.
fn usage() -> String {
    let models: Vec<&str> = ModelKind::ALL
        .iter()
        .map(|kind| kind.registry_name())
        .collect();
    format!(
        "usage: autopower-experiments [--fast] [--threads N] [--count N] [--model NAME] \
         [--load-model FILE] [--out FILE] [--no-sim-cache] [--stream] [--full] [--chunk N] \
         [--checkpoint FILE] [--resume] [--max-chunks N] [--surrogate] [--surrogate-train N] \
         [--audit-rate R] [--save-surrogate FILE] [--load-surrogate FILE] [--max-power MW] \
         [--min-ipc IPC] [{}|{SAVE_MODEL}|all ...]\n\
         models: {} (default: {})\n\
         {SAVE_MODEL} trains --model and writes it to --out (default <model>.apm); \
         --load-model applies to {} only; --no-sim-cache disables sweep simulation \
         memoization ({} only, bit-identical output)\n\
         streaming ({} only): --stream folds with bounded memory, --full streams the whole \
         enumerable space (instead of --count samples), --chunk sets configurations per \
         chunk; --checkpoint writes a snapshot after every chunk, --resume continues from \
         it (byte-identical report), --max-chunks stops after N chunks ({} only)\n\
         surrogate ({} only): --surrogate scores with a learned activity surrogate and \
         simulates only a deterministic --audit-rate fraction (default {DEFAULT_AUDIT_RATE}, \
         in (0, 1]) exactly to report the error bound; --surrogate-train N sets the oracle \
         training-set size (default {DEFAULT_SURROGATE_TRAIN}); --save-surrogate/\
         --load-surrogate persist the trained surrogate\n\
         pareto feasibility ({} only): --max-power keeps configurations predicted at or \
         under the bound (mW), --min-ipc keeps those at or above the IPC bound; both are \
         applied before the frontier fold",
        ALL_EXPERIMENTS.join("|"),
        models.join(", "),
        ModelKind::AutoPower,
        LOADABLE_EXPERIMENTS.join("/"),
        SIM_CACHE_EXPERIMENTS.join("/"),
        STREAM_EXPERIMENTS.join("/"),
        CHECKPOINT_EXPERIMENTS.join("/"),
        SURROGATE_EXPERIMENTS.join("/"),
        CONSTRAINT_EXPERIMENTS.join("/"),
    )
}

/// Default number of generated configurations the `sweep` and `compare`
/// experiments score.
const DEFAULT_SWEEP_COUNT: usize = 256;

/// Everything the command line selects: settings knobs and the experiment list.
#[derive(Debug)]
struct CliArgs {
    fast: bool,
    threads: usize,
    count: usize,
    model: ModelKind,
    /// Whether `--model` was given explicitly (a loaded model of a different
    /// kind is then a hard error instead of silently winning).
    model_explicit: bool,
    /// Path to a saved model to restore instead of retraining (`sweep`,
    /// `table4`).
    load_model: Option<String>,
    /// Output path of the `save-model` verb.
    out: Option<String>,
    /// Whether the sweep experiments memoize simulations across
    /// configurations (`--no-sim-cache` clears it; `sweep`/`compare` only).
    sim_cache: bool,
    /// Whether `--count` was given explicitly (conflicts with `--full`, which
    /// makes the count meaningless).
    count_explicit: bool,
    /// `--stream`: fold the sweep through the bounded-memory aggregator.
    stream: bool,
    /// `--full`: stream the whole enumerable design space.
    full: bool,
    /// `--chunk N`: configurations per streamed chunk (`0` = engine default).
    chunk: usize,
    /// `--checkpoint FILE`: snapshot the aggregate after every chunk.
    checkpoint: Option<String>,
    /// `--resume`: continue from the `--checkpoint` file.
    resume: bool,
    /// `--max-chunks N`: stop (checkpointed) after N chunks (`0` = no limit).
    max_chunks: u64,
    /// `--surrogate`: score the sweep with a learned activity surrogate,
    /// simulating only the audited fraction exactly.
    surrogate: bool,
    /// `--surrogate-train N`: oracle training-set size (`None` = default).
    surrogate_train: Option<usize>,
    /// `--audit-rate R`: deterministic fraction of swept configurations
    /// simulated exactly (`None` = default).
    audit_rate: Option<f64>,
    /// `--save-surrogate FILE`: persist the trained surrogate.
    save_surrogate: Option<String>,
    /// `--load-surrogate FILE`: restore a surrogate instead of training.
    load_surrogate: Option<String>,
    /// `--max-power MW`: pareto feasibility bound on mean total power.
    max_power: Option<f64>,
    /// `--min-ipc IPC`: pareto feasibility bound on mean IPC.
    min_ipc: Option<f64>,
    help: bool,
    requested: Vec<String>,
}

impl CliArgs {
    /// Whether the `sweep` verb should stream instead of materializing: any
    /// streaming-only capability being asked for implies it.
    fn wants_streaming_sweep(&self) -> bool {
        self.stream || self.full || self.checkpoint.is_some() || self.resume
    }

    /// The scope streaming verbs walk.
    fn stream_scope(&self) -> StreamScope {
        if self.full {
            StreamScope::Full
        } else {
            StreamScope::Sampled(self.count)
        }
    }

    /// The checkpoint/interrupt options of a streaming sweep.
    fn stream_options(&self) -> StreamOptions {
        StreamOptions {
            checkpoint: self.checkpoint.as_ref().map(PathBuf::from),
            resume: self.resume,
            max_chunks: self.max_chunks,
        }
    }

    /// How the surrogate is acquired (`--surrogate-train` /
    /// `--load-surrogate` / `--save-surrogate`).
    fn surrogate_options(&self) -> SurrogateOptions {
        SurrogateOptions {
            train_count: self.surrogate_train.unwrap_or(DEFAULT_SURROGATE_TRAIN),
            load: self.load_surrogate.as_ref().map(PathBuf::from),
            save: self.save_surrogate.as_ref().map(PathBuf::from),
        }
    }

    /// The audited fraction of a surrogate sweep.
    fn effective_audit_rate(&self) -> f64 {
        self.audit_rate.unwrap_or(DEFAULT_AUDIT_RATE)
    }

    /// The pareto feasibility bounds (validated at parse time).
    fn constraints(&self) -> ParetoConstraints {
        ParetoConstraints {
            max_power: self.max_power,
            min_ipc: self.min_ipc,
        }
    }
}

/// Parses the argument list; flags and experiment names may be interleaved freely.
///
/// Experiment names are validated against [`ALL_EXPERIMENTS`] and de-duplicated
/// here, at parse time — a typo fails fast with the usage string instead of
/// surfacing only after minutes of corpus generation.
fn parse_args(args: impl IntoIterator<Item = String>) -> Result<CliArgs, String> {
    let mut parsed = CliArgs {
        fast: false,
        threads: 0,
        count: DEFAULT_SWEEP_COUNT,
        model: ModelKind::AutoPower,
        model_explicit: false,
        load_model: None,
        out: None,
        sim_cache: true,
        count_explicit: false,
        stream: false,
        full: false,
        chunk: 0,
        checkpoint: None,
        resume: false,
        max_chunks: 0,
        surrogate: false,
        surrogate_train: None,
        audit_rate: None,
        save_surrogate: None,
        load_surrogate: None,
        max_power: None,
        min_ipc: None,
        help: false,
        requested: Vec::new(),
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fast" => parsed.fast = true,
            "--no-sim-cache" => parsed.sim_cache = false,
            "--help" | "-h" => parsed.help = true,
            "--threads" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--threads needs a value\n{}", usage()))?;
                parsed.threads = parse_count(&value, "--threads")?;
            }
            "--count" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--count needs a value\n{}", usage()))?;
                parsed.count = parse_sweep_count(&value)?;
                parsed.count_explicit = true;
            }
            "--stream" => parsed.stream = true,
            "--full" => parsed.full = true,
            "--resume" => parsed.resume = true,
            "--surrogate" => parsed.surrogate = true,
            "--surrogate-train" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--surrogate-train needs a value\n{}", usage()))?;
                parsed.surrogate_train = Some(
                    parse_sweep_count(&value)
                        .map_err(|e| e.replace("--count", "--surrogate-train"))?,
                );
            }
            "--audit-rate" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--audit-rate needs a value\n{}", usage()))?;
                parsed.audit_rate = Some(parse_audit_rate(&value)?);
            }
            "--save-surrogate" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--save-surrogate needs a file path\n{}", usage()))?;
                parsed.save_surrogate = Some(value);
            }
            "--load-surrogate" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--load-surrogate needs a file path\n{}", usage()))?;
                parsed.load_surrogate = Some(value);
            }
            "--max-power" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--max-power needs a value\n{}", usage()))?;
                parsed.max_power = Some(parse_bound(&value, "--max-power")?);
            }
            "--min-ipc" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--min-ipc needs a value\n{}", usage()))?;
                parsed.min_ipc = Some(parse_bound(&value, "--min-ipc")?);
            }
            "--chunk" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--chunk needs a value\n{}", usage()))?;
                parsed.chunk =
                    parse_sweep_count(&value).map_err(|e| e.replace("--count", "--chunk"))?;
            }
            "--checkpoint" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--checkpoint needs a file path\n{}", usage()))?;
                parsed.checkpoint = Some(value);
            }
            "--max-chunks" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--max-chunks needs a value\n{}", usage()))?;
                parsed.max_chunks = parse_sweep_count(&value)
                    .map_err(|e| e.replace("--count", "--max-chunks"))?
                    as u64;
            }
            "--model" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--model needs a value\n{}", usage()))?;
                parsed.model = parse_model(&value)?;
                parsed.model_explicit = true;
            }
            "--load-model" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--load-model needs a file path\n{}", usage()))?;
                parsed.load_model = Some(value);
            }
            "--out" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--out needs a file path\n{}", usage()))?;
                parsed.out = Some(value);
            }
            other => {
                if let Some(value) = other.strip_prefix("--threads=") {
                    parsed.threads = parse_count(value, "--threads")?;
                } else if let Some(value) = other.strip_prefix("--count=") {
                    parsed.count = parse_sweep_count(value)?;
                    parsed.count_explicit = true;
                } else if let Some(value) = other.strip_prefix("--chunk=") {
                    parsed.chunk =
                        parse_sweep_count(value).map_err(|e| e.replace("--count", "--chunk"))?;
                } else if let Some(value) = other.strip_prefix("--checkpoint=") {
                    parsed.checkpoint = Some(value.to_owned());
                } else if let Some(value) = other.strip_prefix("--max-chunks=") {
                    parsed.max_chunks = parse_sweep_count(value)
                        .map_err(|e| e.replace("--count", "--max-chunks"))?
                        as u64;
                } else if let Some(value) = other.strip_prefix("--surrogate-train=") {
                    parsed.surrogate_train = Some(
                        parse_sweep_count(value)
                            .map_err(|e| e.replace("--count", "--surrogate-train"))?,
                    );
                } else if let Some(value) = other.strip_prefix("--audit-rate=") {
                    parsed.audit_rate = Some(parse_audit_rate(value)?);
                } else if let Some(value) = other.strip_prefix("--save-surrogate=") {
                    parsed.save_surrogate = Some(value.to_owned());
                } else if let Some(value) = other.strip_prefix("--load-surrogate=") {
                    parsed.load_surrogate = Some(value.to_owned());
                } else if let Some(value) = other.strip_prefix("--max-power=") {
                    parsed.max_power = Some(parse_bound(value, "--max-power")?);
                } else if let Some(value) = other.strip_prefix("--min-ipc=") {
                    parsed.min_ipc = Some(parse_bound(value, "--min-ipc")?);
                } else if let Some(value) = other.strip_prefix("--model=") {
                    parsed.model = parse_model(value)?;
                    parsed.model_explicit = true;
                } else if let Some(value) = other.strip_prefix("--load-model=") {
                    parsed.load_model = Some(value.to_owned());
                } else if let Some(value) = other.strip_prefix("--out=") {
                    parsed.out = Some(value.to_owned());
                } else if other.starts_with('-') {
                    return Err(format!("unknown flag '{other}'\n{}", usage()));
                } else if other == "all" || other == SAVE_MODEL || ALL_EXPERIMENTS.contains(&other)
                {
                    if !parsed.requested.iter().any(|r| r == other) {
                        parsed.requested.push(other.to_owned());
                    }
                } else {
                    return Err(format!("unknown experiment '{other}'\n{}", usage()));
                }
            }
        }
    }
    if parsed.requested.is_empty() || parsed.requested.iter().any(|a| a == "all") {
        let keep_save = parsed.requested.iter().any(|a| a == SAVE_MODEL);
        parsed.requested = ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()).collect();
        if keep_save {
            parsed.requested.push(SAVE_MODEL.to_owned());
        }
    }
    if parsed.load_model.is_some() {
        if let Some(bad) = parsed
            .requested
            .iter()
            .find(|name| !LOADABLE_EXPERIMENTS.contains(&name.as_str()))
        {
            return Err(format!(
                "--load-model applies to {} only; '{bad}' retrains by design\n{}",
                LOADABLE_EXPERIMENTS.join("/"),
                usage()
            ));
        }
    }
    if !parsed.sim_cache {
        if let Some(bad) = parsed
            .requested
            .iter()
            .find(|name| !SIM_CACHE_EXPERIMENTS.contains(&name.as_str()))
        {
            return Err(format!(
                "--no-sim-cache applies to {} only; '{bad}' never caches simulations\n{}",
                SIM_CACHE_EXPERIMENTS.join("/"),
                usage()
            ));
        }
    }
    if parsed.out.is_some() && !parsed.requested.iter().any(|a| a == SAVE_MODEL) {
        return Err(format!(
            "--out only makes sense with {SAVE_MODEL}\n{}",
            usage()
        ));
    }
    if parsed.full && parsed.count_explicit {
        return Err(format!(
            "--full streams the whole design space; --count does not apply\n{}",
            usage()
        ));
    }
    if parsed.stream || parsed.full {
        let flag = if parsed.full { "--full" } else { "--stream" };
        if let Some(bad) = parsed
            .requested
            .iter()
            .find(|name| !STREAM_EXPERIMENTS.contains(&name.as_str()))
        {
            return Err(format!(
                "{flag} applies to {} only; '{bad}' does not stream\n{}",
                STREAM_EXPERIMENTS.join("/"),
                usage()
            ));
        }
    }
    if parsed.resume && parsed.checkpoint.is_none() {
        return Err(format!("--resume requires --checkpoint FILE\n{}", usage()));
    }
    if parsed.max_chunks > 0 && parsed.checkpoint.is_none() {
        return Err(format!(
            "--max-chunks stops a checkpointed run; it requires --checkpoint FILE\n{}",
            usage()
        ));
    }
    if parsed.checkpoint.is_some() {
        if let Some(bad) = parsed
            .requested
            .iter()
            .find(|name| !CHECKPOINT_EXPERIMENTS.contains(&name.as_str()))
        {
            return Err(format!(
                "--checkpoint/--resume/--max-chunks apply to {} only; '{bad}' keeps no \
                 checkpoint\n{}",
                CHECKPOINT_EXPERIMENTS.join("/"),
                usage()
            ));
        }
    }
    if parsed.chunk > 0 {
        if let Some(bad) = parsed
            .requested
            .iter()
            .find(|name| !SIM_CACHE_EXPERIMENTS.contains(&name.as_str()))
        {
            return Err(format!(
                "--chunk applies to {} only; '{bad}' does not run the sweep engine\n{}",
                SIM_CACHE_EXPERIMENTS.join("/"),
                usage()
            ));
        }
    }
    for (flag, present) in [
        ("--surrogate-train", parsed.surrogate_train.is_some()),
        ("--audit-rate", parsed.audit_rate.is_some()),
        ("--save-surrogate", parsed.save_surrogate.is_some()),
        ("--load-surrogate", parsed.load_surrogate.is_some()),
    ] {
        if present && !parsed.surrogate {
            return Err(format!(
                "{flag} configures the surrogate backend; it requires --surrogate\n{}",
                usage()
            ));
        }
    }
    if parsed.save_surrogate.is_some() && parsed.load_surrogate.is_some() {
        return Err(format!(
            "--save-surrogate with --load-surrogate would rewrite the file it just read; \
             pick one\n{}",
            usage()
        ));
    }
    if parsed.surrogate_train.is_some() && parsed.load_surrogate.is_some() {
        return Err(format!(
            "--surrogate-train sizes a fresh training run; it conflicts with \
             --load-surrogate\n{}",
            usage()
        ));
    }
    if parsed.surrogate {
        if let Some(bad) = parsed
            .requested
            .iter()
            .find(|name| !SURROGATE_EXPERIMENTS.contains(&name.as_str()))
        {
            return Err(format!(
                "--surrogate applies to {} only; '{bad}' always simulates exactly\n{}",
                SURROGATE_EXPERIMENTS.join("/"),
                usage()
            ));
        }
    }
    if parsed.max_power.is_some() || parsed.min_ipc.is_some() {
        if let Some(bad) = parsed
            .requested
            .iter()
            .find(|name| !CONSTRAINT_EXPERIMENTS.contains(&name.as_str()))
        {
            return Err(format!(
                "--max-power/--min-ipc apply to {} only; '{bad}' computes no frontier\n{}",
                CONSTRAINT_EXPERIMENTS.join("/"),
                usage()
            ));
        }
        if let Err(message) = parsed.constraints().validate() {
            return Err(format!("{message}\n{}", usage()));
        }
    }
    Ok(parsed)
}

fn parse_count(value: &str, flag: &str) -> Result<usize, String> {
    value.parse::<usize>().map_err(|_| {
        format!(
            "{flag} expects a non-negative integer, got '{value}'\n{}",
            usage()
        )
    })
}

/// Like [`parse_count`] but rejects zero: an empty sweep has nothing to report
/// (whereas `--threads 0` legitimately means "auto").
fn parse_sweep_count(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "--count expects a positive integer, got '{value}'\n{}",
            usage()
        )),
    }
}

/// Parses `--audit-rate`: a finite fraction in `(0, 1]`.  Zero is rejected
/// here — a surrogate sweep that can never audit would only fail later with
/// "audited zero configurations".
fn parse_audit_rate(value: &str) -> Result<f64, String> {
    match value.parse::<f64>() {
        Ok(rate) if rate.is_finite() && rate > 0.0 && rate <= 1.0 => Ok(rate),
        _ => Err(format!(
            "--audit-rate expects a fraction in (0, 1], got '{value}'\n{}",
            usage()
        )),
    }
}

/// Parses a pareto feasibility bound as a number; domain checks (finite,
/// sign) are [`ParetoConstraints::validate`]'s, so the CLI and the library
/// reject exactly the same bounds.
fn parse_bound(value: &str, flag: &str) -> Result<f64, String> {
    value
        .parse::<f64>()
        .map_err(|_| format!("{flag} expects a number, got '{value}'\n{}", usage()))
}

/// Resolves a `--model` value against the [`ModelKind`] registry.
fn parse_model(value: &str) -> Result<ModelKind, String> {
    value
        .parse::<ModelKind>()
        .map_err(|e| format!("{e}\n{}", usage()))
}

/// Restores the `--load-model` file and checks it against an explicit
/// `--model` flag (a silent kind mismatch would be a confusing foot-gun).
fn load_cli_model(args: &CliArgs, path: &str) -> Result<Box<dyn autopower::PowerModel>, String> {
    let model = autopower::load_model(path).map_err(|e| format!("--load-model {path}: {e}"))?;
    if args.model_explicit && model.kind() != args.model {
        return Err(format!(
            "--load-model {path} holds a '{}' model but --model asked for '{}'",
            model.kind(),
            args.model
        ));
    }
    Ok(model)
}

/// Prints a streaming-sweep result: the resume-invariant report to stdout,
/// the process-local diagnostics (cache hit rate, peak retained points) to
/// stderr — so a resumed run's stdout is byte-identical to a one-shot run's.
fn print_streaming(result: &StreamSweepResult) {
    println!("{result}\n");
    eprintln!("{}", result.diagnostics());
}

/// Trains or loads the `--surrogate` backend for a sweep verb (`None` when
/// the flag is absent).
fn acquire_surrogate(
    experiments: &Experiments,
    name: &str,
    args: &CliArgs,
) -> Result<Option<autopower::ActivitySurrogate>, String> {
    if !args.surrogate {
        return Ok(None);
    }
    experiments
        .sweep_surrogate(&args.surrogate_options())
        .map(Some)
        .map_err(|e| format!("{name}: {e}"))
}

fn run_one(experiments: &Experiments, name: &str, args: &CliArgs) -> Result<(), String> {
    let err = |e: autopower::AutoPowerError| format!("{name}: {e}");
    if name == SAVE_MODEL {
        let model = experiments.train_sweep_model(args.model).map_err(err)?;
        let path = args
            .out
            .clone()
            .unwrap_or_else(|| format!("{}.apm", args.model));
        autopower::save_model(model.as_ref(), &path).map_err(err)?;
        println!(
            "saved trained '{}' model to {path} (format v{})\n",
            args.model,
            autopower::MODEL_FORMAT_VERSION
        );
        return Ok(());
    }
    match name {
        "obs1" => println!("{}\n", experiments.obs1_breakdown()),
        "table1" => println!("{}\n", experiments.table1_hardware_model()),
        "fig4" => println!(
            "{}\n",
            experiments.fig4_accuracy_two_configs().map_err(err)?
        ),
        "fig5" => println!(
            "{}\n",
            experiments.fig5_accuracy_three_configs().map_err(err)?
        ),
        "fig6" => println!("{}\n", experiments.fig6_training_sweep().map_err(err)?),
        "fig7" => println!("{}\n", experiments.fig7_clock_detail()),
        "fig8" => println!("{}\n", experiments.fig8_sram_detail()),
        "table4" => match &args.load_model {
            Some(path) => {
                let model = load_cli_model(args, path)?;
                println!(
                    "{}\n",
                    experiments.table4_power_trace_loaded(model.as_ref())
                );
            }
            None => println!(
                "{}\n",
                experiments
                    .table4_power_trace_model(args.model)
                    .map_err(err)?
            ),
        },
        "ablation" => println!("{}\n", experiments.ablation_study()),
        "sweep" if args.wants_streaming_sweep() => {
            let scope = args.stream_scope();
            let options = args.stream_options();
            let surrogate = acquire_surrogate(experiments, name, args)?;
            let extras = StreamExtras {
                surrogate: surrogate.as_ref().map(|s| SurrogateSpec {
                    surrogate: s,
                    audit_rate: args.effective_audit_rate(),
                }),
                constraints: ParetoConstraints::default(),
            };
            let result = match &args.load_model {
                Some(path) => {
                    let model = load_cli_model(args, path)?;
                    experiments
                        .streaming_sweep_loaded_opts(scope, model.as_ref(), &options, &extras)
                        .map_err(err)?
                }
                None => experiments
                    .streaming_sweep_opts(scope, args.model, &options, &extras)
                    .map_err(err)?,
            };
            print_streaming(&result);
        }
        "sweep" => {
            let surrogate = acquire_surrogate(experiments, name, args)?;
            let spec = surrogate.as_ref().map(|s| SurrogateSpec {
                surrogate: s,
                audit_rate: args.effective_audit_rate(),
            });
            match (&args.load_model, spec) {
                (Some(path), Some(spec)) => {
                    let model = load_cli_model(args, path)?;
                    println!(
                        "{}\n",
                        experiments
                            .design_space_sweep_loaded_surrogate(args.count, model.as_ref(), spec)
                            .map_err(err)?
                    );
                }
                (Some(path), None) => {
                    let model = load_cli_model(args, path)?;
                    println!(
                        "{}\n",
                        experiments.design_space_sweep_loaded(args.count, model.as_ref())
                    );
                }
                (None, Some(spec)) => println!(
                    "{}\n",
                    experiments
                        .design_space_sweep_surrogate(args.count, args.model, spec)
                        .map_err(err)?
                ),
                (None, None) => println!(
                    "{}\n",
                    experiments
                        .design_space_sweep_model(args.count, args.model)
                        .map_err(err)?
                ),
            }
        }
        "pareto" => {
            let scope = args.stream_scope();
            let surrogate = acquire_surrogate(experiments, name, args)?;
            let extras = StreamExtras {
                surrogate: surrogate.as_ref().map(|s| SurrogateSpec {
                    surrogate: s,
                    audit_rate: args.effective_audit_rate(),
                }),
                constraints: args.constraints(),
            };
            let result = match &args.load_model {
                Some(path) => {
                    let model = load_cli_model(args, path)?;
                    experiments
                        .pareto_frontier_loaded_opts(scope, model.as_ref(), &extras)
                        .map_err(err)?
                }
                None => experiments
                    .pareto_frontier_opts(scope, args.model, &extras)
                    .map_err(err)?,
            };
            println!("{result}\n");
            eprintln!("{}", result.diagnostics());
        }
        "xval" => println!(
            "{}\n",
            experiments
                .cross_validation_model(args.model)
                .map_err(err)?
        ),
        "compare" => println!(
            "{}\n",
            experiments.model_comparison(args.count).map_err(err)?
        ),
        other => return Err(format!("unknown experiment '{other}'\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let settings = if args.fast {
        ExperimentSettings::fast()
    } else {
        ExperimentSettings::paper()
    }
    .with_threads(args.threads)
    .with_sim_cache(args.sim_cache)
    .with_chunk(args.chunk);
    let experiments = Experiments::new(settings);
    // Resolve through CorpusSpec so the banner always matches the worker count
    // generation will actually use.
    let effective = CorpusSpec::paper()
        .threads(args.threads)
        .effective_threads();
    let label = if args.threads == 0 {
        format!("{effective} (auto)")
    } else {
        effective.to_string()
    };
    println!(
        "AutoPower experiment harness ({} settings, {label} corpus worker{})\n",
        if args.fast { "fast" } else { "paper" },
        if effective == 1 { "" } else { "s" },
    );

    for name in &args.requested {
        if let Err(message) = run_one(&experiments, name, &args) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn flags_are_order_independent() {
        for permutation in [
            &["--fast", "--threads", "3", "fig4"][..],
            &["fig4", "--threads", "3", "--fast"][..],
            &["--threads=3", "fig4", "--fast"][..],
        ] {
            let parsed = parse_args(args(permutation)).expect("valid arguments");
            assert!(parsed.fast);
            assert_eq!(parsed.threads, 3);
            assert_eq!(parsed.requested, vec!["fig4".to_owned()]);
            assert!(!parsed.help);
        }
    }

    #[test]
    fn help_wins_regardless_of_position() {
        for permutation in [&["--fast", "--help"][..], &["--help", "--fast", "fig4"][..]] {
            let parsed = parse_args(args(permutation)).expect("valid arguments");
            assert!(parsed.help);
        }
    }

    #[test]
    fn empty_or_all_expands_to_every_experiment() {
        let default = parse_args(args(&[])).expect("valid arguments");
        assert_eq!(default.requested.len(), ALL_EXPERIMENTS.len());
        let all = parse_args(args(&["all", "--fast"])).expect("valid arguments");
        assert_eq!(all.requested.len(), ALL_EXPERIMENTS.len());
    }

    #[test]
    fn bad_flags_and_thread_counts_are_rejected() {
        assert!(parse_args(args(&["--nope"])).is_err());
        assert!(parse_args(args(&["--threads"])).is_err());
        assert!(parse_args(args(&["--threads", "many"])).is_err());
        assert!(parse_args(args(&["--threads=-2"])).is_err());
        assert!(parse_args(args(&["--count"])).is_err());
        assert!(parse_args(args(&["--count", "lots"])).is_err());
        assert!(parse_args(args(&["--count", "0"])).is_err());
        assert!(parse_args(args(&["--count=0"])).is_err());
    }

    #[test]
    fn unknown_experiments_fail_at_parse_time() {
        let err = parse_args(args(&["fig4", "fig9"])).unwrap_err();
        assert!(err.contains("unknown experiment 'fig9'"));
        assert!(err.contains("usage:"), "error must repeat the usage line");
    }

    #[test]
    fn duplicate_experiments_run_once() {
        let parsed = parse_args(args(&["fig4", "sweep", "fig4"])).expect("valid arguments");
        assert_eq!(
            parsed.requested,
            vec!["fig4".to_owned(), "sweep".to_owned()]
        );
    }

    #[test]
    fn sweep_count_flag_is_parsed_in_both_forms() {
        let parsed = parse_args(args(&["sweep"])).expect("valid arguments");
        assert_eq!(parsed.count, DEFAULT_SWEEP_COUNT);
        let parsed = parse_args(args(&["sweep", "--count", "200"])).expect("valid arguments");
        assert_eq!(parsed.count, 200);
        let parsed = parse_args(args(&["--count=64", "sweep"])).expect("valid arguments");
        assert_eq!(parsed.count, 64);
    }

    #[test]
    fn model_flag_selects_a_registry_model_in_both_forms() {
        let parsed = parse_args(args(&["sweep"])).expect("valid arguments");
        assert_eq!(parsed.model, ModelKind::AutoPower);
        let parsed =
            parse_args(args(&["sweep", "--model", "mcpat-calib"])).expect("valid arguments");
        assert_eq!(parsed.model, ModelKind::McpatCalib);
        let parsed =
            parse_args(args(&["--model=autopower-minus", "xval"])).expect("valid arguments");
        assert_eq!(parsed.model, ModelKind::AutoPowerMinus);
    }

    #[test]
    fn unknown_models_fail_at_parse_time() {
        let err = parse_args(args(&["sweep", "--model", "xgboost"])).unwrap_err();
        assert!(err.contains("unknown model 'xgboost'"));
        assert!(err.contains("usage:"), "error must repeat the usage line");
        assert!(parse_args(args(&["--model"])).is_err());
    }

    #[test]
    fn new_experiment_verbs_are_registered() {
        for verb in ["xval", "compare"] {
            let parsed = parse_args(args(&[verb])).expect("valid arguments");
            assert_eq!(parsed.requested, vec![verb.to_owned()]);
        }
        assert!(ALL_EXPERIMENTS.contains(&"xval"));
        assert!(ALL_EXPERIMENTS.contains(&"compare"));
    }

    #[test]
    fn save_model_verb_parses_but_is_not_part_of_all() {
        let parsed = parse_args(args(&[
            SAVE_MODEL,
            "--model",
            "mcpat-calib",
            "--out",
            "m.apm",
        ]))
        .expect("valid arguments");
        assert_eq!(parsed.requested, vec![SAVE_MODEL.to_owned()]);
        assert_eq!(parsed.model, ModelKind::McpatCalib);
        assert_eq!(parsed.out.as_deref(), Some("m.apm"));
        // `all` (and the empty default) never includes the file-writing verb.
        let all = parse_args(args(&["all"])).expect("valid arguments");
        assert!(!all.requested.iter().any(|r| r == SAVE_MODEL));
        let default = parse_args(args(&[])).expect("valid arguments");
        assert!(!default.requested.iter().any(|r| r == SAVE_MODEL));
    }

    #[test]
    fn load_model_flag_parses_in_both_forms_and_only_for_loadable_experiments() {
        let parsed =
            parse_args(args(&["sweep", "--load-model", "m.apm"])).expect("valid arguments");
        assert_eq!(parsed.load_model.as_deref(), Some("m.apm"));
        let parsed = parse_args(args(&["--load-model=m.apm", "table4"])).expect("valid arguments");
        assert_eq!(parsed.load_model.as_deref(), Some("m.apm"));
        // Experiments that retrain by design reject a pre-trained model.
        let err = parse_args(args(&["xval", "--load-model", "m.apm"])).unwrap_err();
        assert!(err.contains("retrains by design"));
        let err = parse_args(args(&["compare", "--load-model", "m.apm"])).unwrap_err();
        assert!(err.contains("retrains by design"));
        assert!(parse_args(args(&["--load-model"])).is_err());
    }

    #[test]
    fn no_sim_cache_flag_applies_to_sweeping_experiments_only() {
        // Default: the cache is on.
        let parsed = parse_args(args(&["sweep"])).expect("valid arguments");
        assert!(parsed.sim_cache);
        // Accepted on the sweeping verbs, alone or together.
        for list in [
            &["sweep", "--no-sim-cache"][..],
            &["--no-sim-cache", "compare"][..],
        ] {
            let parsed = parse_args(args(list)).expect("valid arguments");
            assert!(!parsed.sim_cache);
        }
        let parsed =
            parse_args(args(&["--no-sim-cache", "sweep", "compare"])).expect("valid arguments");
        assert!(!parsed.sim_cache);
        // Rejected at parse time on experiments that never cache simulations
        // (including the implicit `all` expansion).
        let err = parse_args(args(&["fig4", "--no-sim-cache"])).unwrap_err();
        assert!(err.contains("never caches simulations"));
        assert!(parse_args(args(&["--no-sim-cache"])).is_err());
        assert!(parse_args(args(&["all", "--no-sim-cache"])).is_err());
        // `--no-sim-cache=x` is not a form the flag takes.
        let err = parse_args(args(&["sweep", "--no-sim-cache=1"])).unwrap_err();
        assert!(err.contains("unknown flag"));
    }

    #[test]
    fn streaming_flags_parse_in_both_forms() {
        let parsed = parse_args(args(&[
            "sweep",
            "--stream",
            "--chunk",
            "32",
            "--checkpoint",
            "/tmp/s.ckpt",
            "--max-chunks",
            "2",
        ]))
        .expect("valid arguments");
        assert!(parsed.stream);
        assert!(!parsed.full);
        assert_eq!(parsed.chunk, 32);
        assert_eq!(parsed.checkpoint.as_deref(), Some("/tmp/s.ckpt"));
        assert_eq!(parsed.max_chunks, 2);
        assert!(parsed.wants_streaming_sweep());
        assert_eq!(parsed.stream_scope(), StreamScope::Sampled(parsed.count));

        let parsed = parse_args(args(&[
            "sweep",
            "--chunk=16",
            "--checkpoint=/tmp/s.ckpt",
            "--resume",
        ]))
        .expect("valid arguments");
        assert_eq!(parsed.chunk, 16);
        assert!(parsed.resume);
        assert!(parsed.wants_streaming_sweep());
        let options = parsed.stream_options();
        assert!(options.resume);
        assert_eq!(options.checkpoint.as_deref(), Some("/tmp/s.ckpt".as_ref()));

        // A plain sweep still materializes.
        let plain = parse_args(args(&["sweep"])).expect("valid arguments");
        assert!(!plain.wants_streaming_sweep());

        // Bad values fail with the right flag named.
        assert!(parse_args(args(&["sweep", "--chunk"])).is_err());
        let e = parse_args(args(&["sweep", "--chunk", "0"])).unwrap_err();
        assert!(e.contains("--chunk"));
        let e = parse_args(args(&["sweep", "--checkpoint=c", "--max-chunks=0"])).unwrap_err();
        assert!(e.contains("--max-chunks"));
    }

    #[test]
    fn full_flag_selects_the_whole_space_and_conflicts_with_count() {
        let parsed = parse_args(args(&["sweep", "--full"])).expect("valid arguments");
        assert!(parsed.full);
        assert_eq!(parsed.stream_scope(), StreamScope::Full);
        assert!(parsed.wants_streaming_sweep());
        let parsed = parse_args(args(&["pareto", "--full"])).expect("valid arguments");
        assert_eq!(parsed.stream_scope(), StreamScope::Full);
        let err = parse_args(args(&["sweep", "--full", "--count", "64"])).unwrap_err();
        assert!(err.contains("--count does not apply"));
        // Non-streaming verbs (and the implicit `all` expansion) reject it.
        let err = parse_args(args(&["fig4", "--full"])).unwrap_err();
        assert!(err.contains("does not stream"));
        assert!(parse_args(args(&["--full"])).is_err());
        let err = parse_args(args(&["xval", "--stream"])).unwrap_err();
        assert!(err.contains("does not stream"));
    }

    #[test]
    fn checkpoint_flags_are_validated() {
        // --resume and --max-chunks need --checkpoint.
        let err = parse_args(args(&["sweep", "--resume"])).unwrap_err();
        assert!(err.contains("--resume requires --checkpoint"));
        let err = parse_args(args(&["sweep", "--max-chunks", "2"])).unwrap_err();
        assert!(err.contains("requires --checkpoint"));
        // Checkpointing is a sweep-only capability.
        let err = parse_args(args(&["pareto", "--checkpoint", "c.ckpt"])).unwrap_err();
        assert!(err.contains("keeps no checkpoint"));
        assert!(parse_args(args(&["--checkpoint"])).is_err());
        // --chunk rides along on any sweep-engine verb, but nothing else.
        assert!(parse_args(args(&["compare", "--chunk", "8"])).is_ok());
        let err = parse_args(args(&["fig4", "--chunk", "8"])).unwrap_err();
        assert!(err.contains("sweep engine"));
    }

    #[test]
    fn pareto_verb_is_registered_and_loadable() {
        let parsed = parse_args(args(&["pareto"])).expect("valid arguments");
        assert_eq!(parsed.requested, vec!["pareto".to_owned()]);
        assert!(ALL_EXPERIMENTS.contains(&"pareto"));
        assert!(parse_args(args(&["pareto", "--load-model", "m.apm"])).is_ok());
        assert!(parse_args(args(&["pareto", "--no-sim-cache"])).is_ok());
    }

    #[test]
    fn out_flag_requires_the_save_model_verb() {
        let err = parse_args(args(&["sweep", "--out", "m.apm"])).unwrap_err();
        assert!(err.contains("--out"));
        assert!(parse_args(args(&["--out"])).is_err());
        let parsed = parse_args(args(&[SAVE_MODEL, "--out=x.apm"])).expect("valid arguments");
        assert_eq!(parsed.out.as_deref(), Some("x.apm"));
    }

    #[test]
    fn surrogate_flags_parse_in_both_forms_with_defaults() {
        let parsed = parse_args(args(&["sweep"])).expect("valid arguments");
        assert!(!parsed.surrogate);
        assert_eq!(parsed.effective_audit_rate(), DEFAULT_AUDIT_RATE);
        assert_eq!(
            parsed.surrogate_options().train_count,
            DEFAULT_SURROGATE_TRAIN
        );

        let parsed = parse_args(args(&[
            "sweep",
            "--surrogate",
            "--surrogate-train",
            "48",
            "--audit-rate",
            "0.5",
            "--save-surrogate",
            "/tmp/s.aps",
        ]))
        .expect("valid arguments");
        assert!(parsed.surrogate);
        assert_eq!(parsed.surrogate_options().train_count, 48);
        assert_eq!(parsed.effective_audit_rate(), 0.5);
        assert_eq!(
            parsed.surrogate_options().save.as_deref(),
            Some("/tmp/s.aps".as_ref())
        );

        let parsed = parse_args(args(&[
            "pareto",
            "--surrogate",
            "--audit-rate=1",
            "--load-surrogate=/tmp/s.aps",
        ]))
        .expect("valid arguments");
        assert_eq!(parsed.effective_audit_rate(), 1.0);
        assert_eq!(
            parsed.surrogate_options().load.as_deref(),
            Some("/tmp/s.aps".as_ref())
        );
    }

    #[test]
    fn surrogate_flags_are_validated_at_parse_time() {
        // The companions require --surrogate itself.
        for list in [
            &["sweep", "--surrogate-train", "48"][..],
            &["sweep", "--audit-rate", "0.5"][..],
            &["sweep", "--save-surrogate", "s.aps"][..],
            &["pareto", "--load-surrogate", "s.aps"][..],
        ] {
            let err = parse_args(args(list)).unwrap_err();
            assert!(err.contains("requires --surrogate"), "got: {err}");
        }
        // Save and load together are contradictory, as is sizing a training
        // run that --load-surrogate skips.
        let err = parse_args(args(&[
            "sweep",
            "--surrogate",
            "--save-surrogate=a",
            "--load-surrogate=b",
        ]))
        .unwrap_err();
        assert!(err.contains("pick one"), "got: {err}");
        let err = parse_args(args(&[
            "sweep",
            "--surrogate",
            "--surrogate-train=8",
            "--load-surrogate=b",
        ]))
        .unwrap_err();
        assert!(err.contains("conflicts with"), "got: {err}");
        // Audit rate domain: (0, 1], finite.
        for bad in ["0", "0.0", "1.5", "-0.25", "inf", "nan", "lots"] {
            let err = parse_args(args(&["sweep", "--surrogate", "--audit-rate", bad])).unwrap_err();
            assert!(err.contains("(0, 1]"), "'{bad}' got: {err}");
        }
        // Training-set size must be positive.
        let err =
            parse_args(args(&["sweep", "--surrogate", "--surrogate-train", "0"])).unwrap_err();
        assert!(err.contains("--surrogate-train"), "got: {err}");
        // The surrogate applies to the design-space scoring verbs only
        // (including the implicit `all` expansion).
        let err = parse_args(args(&["fig4", "--surrogate"])).unwrap_err();
        assert!(err.contains("simulates exactly"), "got: {err}");
        assert!(parse_args(args(&["--surrogate"])).is_err());
        assert!(parse_args(args(&["sweep", "--surrogate"])).is_ok());
        assert!(parse_args(args(&["pareto", "--surrogate"])).is_ok());
    }

    #[test]
    fn pareto_constraint_flags_parse_and_are_validated() {
        let parsed = parse_args(args(&["pareto", "--max-power", "12.5", "--min-ipc=0.8"]))
            .expect("valid arguments");
        assert_eq!(parsed.max_power, Some(12.5));
        assert_eq!(parsed.min_ipc, Some(0.8));
        let constraints = parsed.constraints();
        assert!(constraints.is_constrained());
        assert!(constraints.validate().is_ok());

        // Pareto-only.
        let err = parse_args(args(&["sweep", "--max-power", "10"])).unwrap_err();
        assert!(err.contains("computes no frontier"), "got: {err}");
        assert!(parse_args(args(&["--min-ipc", "1"])).is_err());
        // Non-finite or out-of-domain bounds fail at parse time.
        for bad in [
            &["pareto", "--max-power", "0"][..],
            &["pareto", "--max-power", "-3"][..],
            &["pareto", "--max-power", "inf"][..],
            &["pareto", "--max-power", "watts"][..],
            &["pareto", "--min-ipc", "-0.1"][..],
            &["pareto", "--min-ipc", "nan"][..],
        ] {
            assert!(parse_args(args(bad)).is_err(), "accepted {bad:?}");
        }
        // Zero is a legal IPC floor (inclusive bound).
        assert!(parse_args(args(&["pareto", "--min-ipc", "0"])).is_ok());
    }

    #[test]
    fn explicit_model_flag_is_tracked_for_load_mismatch_detection() {
        let parsed = parse_args(args(&["sweep"])).expect("valid arguments");
        assert!(!parsed.model_explicit);
        let parsed = parse_args(args(&["sweep", "--model", "autopower"])).expect("valid arguments");
        assert!(parsed.model_explicit);
    }
}
