//! Observation 1 (Fig. 1, left): clock and SRAM dominate total power.

use crate::report::{format_table, percent};
use crate::Experiments;
use std::fmt;

/// Average power-group breakdown over the whole corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownResult {
    /// Average fraction of total power in the clock group.
    pub clock_fraction: f64,
    /// Average fraction of total power in the SRAM group.
    pub sram_fraction: f64,
    /// Average fraction of total power in the register (non-clock) group.
    pub register_fraction: f64,
    /// Average fraction of total power in the combinational group.
    pub combinational_fraction: f64,
    /// Number of `(configuration, workload)` runs averaged over.
    pub runs: usize,
}

impl BreakdownResult {
    /// Fraction of total power in clock + SRAM (the quantity Observation 1 is about).
    pub fn clock_plus_sram(&self) -> f64 {
        self.clock_fraction + self.sram_fraction
    }
}

impl fmt::Display for BreakdownResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Observation 1 — power-group breakdown averaged over {} runs (Fig. 1, left)",
            self.runs
        )?;
        let rows = vec![
            vec!["clock".to_owned(), percent(self.clock_fraction)],
            vec!["SRAM".to_owned(), percent(self.sram_fraction)],
            vec!["register".to_owned(), percent(self.register_fraction)],
            vec![
                "combinational".to_owned(),
                percent(self.combinational_fraction),
            ],
            vec!["clock + SRAM".to_owned(), percent(self.clock_plus_sram())],
        ];
        write!(
            f,
            "{}",
            format_table(&["power group", "share of total"], &rows)
        )
    }
}

impl Experiments {
    /// Regenerates the Observation 1 breakdown (Fig. 1, left).
    pub fn obs1_breakdown(&self) -> BreakdownResult {
        let corpus = self.average_corpus();
        let mut clock = 0.0;
        let mut sram = 0.0;
        let mut register = 0.0;
        let mut comb = 0.0;
        let n = corpus.runs().len();
        for run in corpus.runs() {
            let total = run.golden.total_mw();
            clock += run.golden.total.clock / total;
            sram += run.golden.total.sram / total;
            register += run.golden.total.register / total;
            comb += run.golden.total.combinational / total;
        }
        BreakdownResult {
            clock_fraction: clock / n as f64,
            sram_fraction: sram / n as f64,
            register_fraction: register / n as f64,
            combinational_fraction: comb / n as f64,
            runs: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_and_sram_dominate() {
        let exp = Experiments::fast();
        let b = exp.obs1_breakdown();
        let sum =
            b.clock_fraction + b.sram_fraction + b.register_fraction + b.combinational_fraction;
        assert!((sum - 1.0).abs() < 1e-9);
        // Observation 1 of the paper: clock + SRAM dominate.
        assert!(
            b.clock_plus_sram() > 0.5,
            "clock+SRAM = {}",
            b.clock_plus_sram()
        );
        // And the printed report mentions every group.
        let text = b.to_string();
        assert!(text.contains("clock"));
        assert!(text.contains("SRAM"));
        assert!(text.contains("combinational"));
    }
}
