//! Table I: the metadata-table walk-through of the scaling-pattern hardware model.

use crate::report::format_table;
use crate::Experiments;
use autopower::PositionHardwareModel;
use autopower_config::{Component, ConfigId, SramPositionId};
use std::fmt;

/// An SRAM block shape triple `(width, depth, count)`.
pub type BlockShape = (u32, u32, u32);

/// Result of the Table I experiment: the training rows and the fitted rules for the IFU
/// metadata table (`ftq_meta`).
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// The SRAM Position used in the walk-through.
    pub position: SramPositionId,
    /// `(config, FetchWidth, DecodeWidth, FetchBufferEntry, width, depth, count)` of the
    /// training configurations.
    pub training_rows: Vec<(ConfigId, u32, u32, u32, u32, u32, u32)>,
    /// The fitted hardware model.
    pub model: PositionHardwareModel,
    /// Predicted and true block shapes `(config, predicted, true)` on every evaluated
    /// configuration.
    pub predictions: Vec<(ConfigId, BlockShape, BlockShape)>,
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table I — SRAM Block hardware model walk-through for {}",
            self.position
        )?;
        let rows: Vec<Vec<String>> = self
            .training_rows
            .iter()
            .map(|(id, fw, dw, fbe, w, d, c)| {
                vec![
                    id.to_string(),
                    fw.to_string(),
                    dw.to_string(),
                    fbe.to_string(),
                    w.to_string(),
                    d.to_string(),
                    c.to_string(),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            format_table(
                &[
                    "config",
                    "FetchWidth",
                    "DecodeWidth",
                    "FetchBufferEntry",
                    "width",
                    "depth",
                    "count"
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "fitted capacity rule:   {:.1} x {}",
            self.model.capacity.coefficient,
            self.model
                .capacity
                .params
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(" x ")
        )?;
        writeln!(
            f,
            "fitted throughput rule: {:.1} x {}",
            self.model.throughput.coefficient,
            self.model
                .throughput
                .params
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(" x ")
        )?;
        let pred_rows: Vec<Vec<String>> = self
            .predictions
            .iter()
            .map(|(id, p, t)| {
                vec![
                    id.to_string(),
                    format!("{}x{}x{}", p.0, p.1, p.2),
                    format!("{}x{}x{}", t.0, t.1, t.2),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &["config", "predicted (w x d x c)", "true (w x d x c)"],
                &pred_rows
            )
        )
    }
}

impl Experiments {
    /// Regenerates the Table I walk-through.
    pub fn table1_hardware_model(&self) -> Table1Result {
        let corpus = self.average_corpus();
        let position = autopower_config::sram_positions_for(Component::Ifu)
            .into_iter()
            .find(|p| p.id.name == "ftq_meta")
            .expect("the IFU metadata table exists")
            .id;
        let train = &self.settings().train_two;
        let model = PositionHardwareModel::fit(position, &corpus, train)
            .expect("the metadata table always has a scaling rule");

        let training_rows = train
            .iter()
            .map(|&id| {
                let run = corpus.runs_for(id)[0];
                let block = run
                    .netlist
                    .component(Component::Ifu)
                    .blocks_of(position)
                    .expect("ftq_meta block exists");
                (
                    id,
                    run.config.value(autopower_config::HwParam::FetchWidth),
                    run.config.value(autopower_config::HwParam::DecodeWidth),
                    run.config
                        .value(autopower_config::HwParam::FetchBufferEntry),
                    block.width,
                    block.depth,
                    block.count,
                )
            })
            .collect();

        let predictions = corpus
            .config_ids()
            .into_iter()
            .map(|id| {
                let run = corpus.runs_for(id)[0];
                let block = run
                    .netlist
                    .component(Component::Ifu)
                    .blocks_of(position)
                    .expect("ftq_meta block exists");
                let p = model.predict_block(&run.config);
                (
                    id,
                    (p.width, p.depth, p.count),
                    (block.width, block.depth, block.count),
                )
            })
            .collect();

        Table1Result {
            position,
            training_rows,
            model,
            predictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower_config::HwParam;

    #[test]
    fn table1_matches_the_paper_walkthrough() {
        let exp = Experiments::fast();
        let r = exp.table1_hardware_model();
        // Training row of C1: width 120, depth 8, count 1 (Table I of the paper).
        let c1 = r
            .training_rows
            .iter()
            .find(|row| row.0 == ConfigId::new(1))
            .unwrap();
        assert_eq!((c1.4, c1.5, c1.6), (120, 8, 1));
        // The fitted capacity rule uses FetchWidth x DecodeWidth with coefficient 240.
        assert_eq!(
            r.model.capacity.params,
            vec![HwParam::FetchWidth, HwParam::DecodeWidth]
        );
        assert!((r.model.capacity.coefficient - 240.0).abs() < 1e-6);
        // Every prediction matches the true shape exactly.
        for (id, pred, truth) in &r.predictions {
            assert_eq!(pred, truth, "{id}");
        }
        // The printed report contains the fitted rule.
        assert!(r.to_string().contains("FetchWidth x DecodeWidth"));
    }
}
