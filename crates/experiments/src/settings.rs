//! Experiment settings: which configurations, workloads and simulation budgets to use.

use autopower_config::{boom_configs, ConfigId, CpuConfig, DesignSpace, Workload};
use autopower_perfsim::SimConfig;

/// Settings shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentSettings {
    /// Configurations of the evaluated design space.
    pub configs: Vec<CpuConfig>,
    /// Workloads used for the average-power experiments.
    pub average_workloads: Vec<Workload>,
    /// Simulation settings for the average-power corpus.
    pub average_sim: SimConfig,
    /// Configurations on which the power-trace experiment is evaluated (Table IV uses
    /// C2, C3 and C4).
    pub trace_configs: Vec<CpuConfig>,
    /// Simulation settings for the trace corpus (longer runs, 50-cycle intervals).
    pub trace_sim: SimConfig,
    /// The two known configurations of the headline experiment (Fig. 4).
    pub train_two: Vec<ConfigId>,
    /// The three known configurations of Fig. 5.
    pub train_three: Vec<ConfigId>,
    /// Training sets of increasing size for the Fig. 6 sweep.
    pub sweep_training_sets: Vec<Vec<ConfigId>>,
    /// Worker threads of the corpus-generation pipeline (`0` = one per
    /// available core, `1` = serial); forwarded to the `threads` knob of
    /// [`CorpusSpec`](autopower::CorpusSpec).
    pub threads: usize,
    /// Whether the sweep experiments memoize simulations across configurations
    /// (forwarded to [`SweepSpec::use_sim_cache`](autopower::SweepSpec)); the
    /// scored points are bit-identical either way.
    pub sim_cache: bool,
    /// Configurations per sweep chunk (forwarded to
    /// [`SweepSpec::chunk_configs`](autopower::SweepSpec)); `0` keeps the
    /// engine default.  Bounds streaming-sweep point memory and sets how often
    /// checkpoints land; the folded results are bit-identical for every value.
    pub chunk_configs: usize,
    /// The design space swept by the `sweep`/`pareto` experiments.  The
    /// default BOOM space everywhere; tests fold it smaller so full-space
    /// streaming stays cheap.
    pub sweep_space: DesignSpace,
}

fn ids(indices: &[u8]) -> Vec<ConfigId> {
    indices.iter().map(|&i| ConfigId::new(i)).collect()
}

impl ExperimentSettings {
    /// Paper-scale settings: all 15 configurations, all 8 riscv-tests workloads, 50 k
    /// instructions per run, trace prediction on C2–C4 with longer runs.
    pub fn paper() -> Self {
        let configs = boom_configs();
        Self {
            trace_configs: vec![configs[1], configs[2], configs[3]],
            configs,
            average_workloads: Workload::RISCV_TESTS.to_vec(),
            average_sim: SimConfig::paper(),
            trace_sim: SimConfig {
                max_instructions: 400_000,
                ..SimConfig::paper()
            },
            train_two: ids(&[1, 15]),
            train_three: ids(&[1, 8, 15]),
            sweep_training_sets: vec![
                ids(&[1, 15]),
                ids(&[1, 8, 15]),
                ids(&[1, 5, 10, 15]),
                ids(&[1, 4, 8, 12, 15]),
                ids(&[1, 4, 7, 10, 13, 15]),
            ],
            threads: 0,
            sim_cache: true,
            chunk_configs: 0,
            sweep_space: DesignSpace::boom(),
        }
    }

    /// Reduced settings used by tests and benches: a 6-configuration subset, three
    /// workloads, short simulations.
    pub fn fast() -> Self {
        let all = boom_configs();
        let configs = vec![all[0], all[3], all[6], all[9], all[12], all[14]];
        Self {
            trace_configs: vec![all[3]],
            configs,
            average_workloads: vec![Workload::Dhrystone, Workload::Qsort, Workload::Vvadd],
            average_sim: SimConfig::fast(),
            trace_sim: SimConfig {
                max_instructions: 12_000,
                ..SimConfig::fast()
            },
            train_two: ids(&[1, 15]),
            train_three: ids(&[1, 7, 15]),
            sweep_training_sets: vec![ids(&[1, 15]), ids(&[1, 7, 15]), ids(&[1, 7, 13, 15])],
            threads: 0,
            sim_cache: true,
            chunk_configs: 0,
            sweep_space: DesignSpace::boom(),
        }
    }

    /// Same settings with an explicit corpus-generation worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Same settings with the sweep simulation cache switched on or off.
    pub fn with_sim_cache(mut self, enabled: bool) -> Self {
        self.sim_cache = enabled;
        self
    }

    /// Same settings with an explicit sweep chunk size (`0` = engine default).
    pub fn with_chunk(mut self, chunk_configs: usize) -> Self {
        self.chunk_configs = chunk_configs;
        self
    }

    /// Same settings sweeping a different design space.
    pub fn with_sweep_space(mut self, space: DesignSpace) -> Self {
        self.sweep_space = space;
        self
    }

    /// The identifiers of all configurations in the settings.
    pub fn config_ids(&self) -> Vec<ConfigId> {
        self.configs.iter().map(|c| c.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_settings_match_the_paper() {
        let s = ExperimentSettings::paper();
        assert_eq!(s.configs.len(), 15);
        assert_eq!(s.average_workloads.len(), 8);
        assert_eq!(s.train_two, ids(&[1, 15]));
        assert_eq!(
            s.trace_configs
                .iter()
                .map(|c| c.id.index())
                .collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(s.sweep_training_sets.iter().all(|set| set.len() >= 2));
    }

    #[test]
    fn fast_settings_are_a_subset_of_the_paper_design_space() {
        let s = ExperimentSettings::fast();
        let paper_ids: Vec<ConfigId> = ExperimentSettings::paper().config_ids();
        assert!(s.config_ids().iter().all(|id| paper_ids.contains(id)));
        assert!(s.config_ids().contains(&ConfigId::new(1)));
        assert!(s.config_ids().contains(&ConfigId::new(15)));
    }

    #[test]
    fn training_sets_only_reference_available_configs() {
        for s in [ExperimentSettings::paper(), ExperimentSettings::fast()] {
            let available = s.config_ids();
            for set in &s.sweep_training_sets {
                assert!(set.iter().all(|id| available.contains(id)));
            }
            assert!(s.train_two.iter().all(|id| available.contains(id)));
            assert!(s.train_three.iter().all(|id| available.contains(id)));
        }
    }
}
