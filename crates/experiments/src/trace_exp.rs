//! Table IV: fine-grained time-based power-trace prediction for large workloads.

use crate::report::{format_table, percent};
use crate::Experiments;
use autopower::{trace_errors, AutoPowerError, ModelKind, PowerTracePredictor, TraceErrors};
use autopower_config::{ConfigId, Workload};
use std::fmt;

/// One row of Table IV: errors of the trace prediction for one `(workload, config)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCase {
    /// The large workload (GEMM or SPMM).
    pub workload: Workload,
    /// The evaluated configuration.
    pub config: ConfigId,
    /// Number of 50-cycle intervals in the trace.
    pub intervals: usize,
    /// The error figures Table IV reports.
    pub errors: TraceErrors,
}

/// The full Table IV result.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceResult {
    /// The registry model that predicted the traces.
    pub model: ModelKind,
    /// The training configurations (average-power corpus, no trace data) —
    /// `None` when the model was loaded pre-trained: the serialized format
    /// carries no training-set record, so the report does not invent one.
    pub train_configs: Option<Vec<ConfigId>>,
    /// One case per `(workload, configuration)` pair.
    pub cases: Vec<TraceCase>,
}

impl TraceResult {
    /// Mean of the average-error column (a single headline number).
    pub fn mean_average_error(&self) -> f64 {
        if self.cases.is_empty() {
            return 0.0;
        }
        self.cases
            .iter()
            .map(|c| c.errors.average_error)
            .sum::<f64>()
            / self.cases.len() as f64
    }
}

impl fmt::Display for TraceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let provenance = match &self.train_configs {
            Some(train) => format!("trained on {} configurations", train.len()),
            None => "loaded pre-trained".to_owned(),
        };
        writeln!(
            f,
            "Table IV — time-based power-trace prediction (50-cycle steps, {} {})",
            self.model.paper_name(),
            provenance
        )?;
        let rows: Vec<Vec<String>> = self
            .cases
            .iter()
            .map(|c| {
                vec![
                    c.workload.to_string(),
                    c.config.to_string(),
                    c.intervals.to_string(),
                    percent(c.errors.max_power_error),
                    percent(c.errors.min_power_error),
                    percent(c.errors.average_error),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &[
                    "workload",
                    "config",
                    "intervals",
                    "max power err",
                    "min power err",
                    "average err"
                ],
                &rows
            )
        )
    }
}

impl Experiments {
    /// Table IV: trains on the two known configurations (average-power corpus only) and
    /// predicts the 50-cycle power traces of GEMM and SPMM on the trace configurations.
    ///
    /// Shorthand for [`Experiments::table4_power_trace_model`] with
    /// [`ModelKind::AutoPower`].
    ///
    /// # Panics
    ///
    /// Panics if training fails.
    pub fn table4_power_trace(&self) -> TraceResult {
        self.table4_power_trace_model(ModelKind::AutoPower)
            .expect("AutoPower training succeeds")
    }

    /// Table IV under any registry model (the `--model` CLI path): trains on the two
    /// known configurations and predicts the 50-cycle traces of the trace workloads.
    ///
    /// # Errors
    ///
    /// Returns an error if the model fails to train.
    pub fn table4_power_trace_model(&self, kind: ModelKind) -> Result<TraceResult, AutoPowerError> {
        let average = self.average_corpus();
        let train = self.settings().train_two.clone();
        let model = kind.train(&average, &train)?;
        Ok(self.trace_cases(model.as_ref(), Some(train)))
    }

    /// Table IV under an **already trained** model — the `--load-model` CLI
    /// path.  Only the trace corpus is generated; the average-power training
    /// corpus is not touched, and the report states the model was loaded
    /// instead of claiming a training set the file does not record.
    pub fn table4_power_trace_loaded(&self, model: &dyn autopower::PowerModel) -> TraceResult {
        self.trace_cases(model, None)
    }

    fn trace_cases(
        &self,
        model: &dyn autopower::PowerModel,
        train_configs: Option<Vec<ConfigId>>,
    ) -> TraceResult {
        let predictor = PowerTracePredictor::new(model);
        let trace_corpus = self.trace_corpus();
        let mut cases = Vec::new();
        for workload in Workload::TRACE_WORKLOADS {
            for cfg in &self.settings().trace_configs {
                let Some(run) = trace_corpus.run(cfg.id, workload) else {
                    continue;
                };
                let golden = trace_corpus.golden_trace(run);
                let predicted = predictor.predict_trace(run);
                cases.push(TraceCase {
                    workload,
                    config: cfg.id,
                    intervals: golden.len(),
                    errors: trace_errors(&golden, &predicted),
                });
            }
        }
        TraceResult {
            model: model.kind(),
            train_configs,
            cases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_prediction_errors_are_bounded() {
        let exp = Experiments::fast();
        let r = exp.table4_power_trace();
        assert!(!r.cases.is_empty());
        for case in &r.cases {
            assert!(
                case.intervals > 10,
                "trace for {} has {} intervals",
                case.workload,
                case.intervals
            );
            // Table IV reports single- to low-double-digit percentage errors; on the fast
            // corpus we accept a looser band but still require sanity.
            assert!(case.errors.average_error < 0.35, "{:?}", case);
            assert!(case.errors.max_power_error < 0.6, "{:?}", case);
            assert!(case.errors.min_power_error < 0.6, "{:?}", case);
        }
        assert!(r.mean_average_error() < 0.3);
        assert!(r.to_string().contains("Table IV"));
        assert!(r.to_string().contains("AutoPower"));
    }

    #[test]
    fn trace_prediction_runs_under_a_baseline_model() {
        let exp = Experiments::fast();
        let r = exp
            .table4_power_trace_model(ModelKind::McpatCalibComponent)
            .unwrap();
        assert_eq!(r.model, ModelKind::McpatCalibComponent);
        assert!(!r.cases.is_empty());
        for case in &r.cases {
            assert!(case.errors.average_error.is_finite());
            assert!(case.errors.average_error >= 0.0);
        }
        assert!(r.to_string().contains("McPAT-Calib + Component"));
    }
}
