//! Surrogate acquisition and audit reporting for the sweep experiments.
//!
//! `sweep --surrogate` and `pareto --surrogate` score the design space with a
//! learned activity surrogate ([`ActivitySurrogate`]) instead of running the
//! performance simulator per point; the simulator is demoted to an *oracle*
//! that (a) generates the surrogate's training set from a seeded sample of the
//! sweep space and (b) re-checks a deterministic fraction of the swept
//! configurations exactly (`--audit-rate`), producing the per-event and
//! per-total error table every surrogate report must print.  This module owns
//! the acquisition path (train / `--load-surrogate` / `--save-surrogate`) and
//! the shared audit-table formatting.

use crate::report::format_table;
use crate::Experiments;
use autopower::{
    load_surrogate, save_surrogate, surrogate_gbdt_params, ActivitySurrogate, AuditReport,
    AutoPowerError, SURROGATE_TRAIN_SEED,
};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Default number of oracle-simulated configurations `--surrogate` trains on.
pub const DEFAULT_SURROGATE_TRAIN: usize = 96;

/// Default deterministic fraction of swept configurations simulated exactly
/// to audit the surrogate (`--audit-rate`).
pub const DEFAULT_AUDIT_RATE: f64 = 0.25;

/// How a sweep experiment obtains its activity surrogate (`--surrogate`,
/// `--surrogate-train`, `--load-surrogate`, `--save-surrogate`).
#[derive(Debug, Clone)]
pub struct SurrogateOptions {
    /// Oracle training-set size (`--surrogate-train N`); ignored when
    /// `load` restores an already-trained surrogate.
    pub train_count: usize,
    /// Restore a saved surrogate instead of training (`--load-surrogate`).
    pub load: Option<PathBuf>,
    /// Persist the trained surrogate here (`--save-surrogate`).
    pub save: Option<PathBuf>,
}

impl Default for SurrogateOptions {
    fn default() -> Self {
        Self {
            train_count: DEFAULT_SURROGATE_TRAIN,
            load: None,
            save: None,
        }
    }
}

impl Experiments {
    /// Obtains the activity surrogate a `--surrogate` sweep scores with:
    /// either restores it ([`load_surrogate`]) or trains it on an
    /// oracle-simulated, [`SURROGATE_TRAIN_SEED`]-sampled subset of the sweep
    /// space — then checks it against this harness's simulation settings and
    /// workloads, so an incompatible file fails here instead of producing
    /// silently wrong predictions mid-sweep.
    ///
    /// # Errors
    ///
    /// Returns [`AutoPowerError::Surrogate`] when training or loading fails,
    /// when the surrogate was trained under different simulation settings, or
    /// when it does not cover every sweep workload.
    pub fn sweep_surrogate(
        &self,
        options: &SurrogateOptions,
    ) -> Result<ActivitySurrogate, AutoPowerError> {
        let sim = self.settings().average_sim;
        let workloads = &self.settings().average_workloads;
        let surrogate = match &options.load {
            Some(path) => load_surrogate(path)?,
            None => ActivitySurrogate::train(
                &self.settings().sweep_space,
                workloads,
                &sim,
                options.train_count,
                SURROGATE_TRAIN_SEED,
                &surrogate_gbdt_params(),
            )?,
        };
        surrogate.compatible_with(&sim)?;
        for &workload in workloads {
            if !surrogate.covers(workload) {
                return Err(AutoPowerError::Surrogate(format!(
                    "surrogate does not cover workload {workload} (trained for {})",
                    surrogate
                        .workloads()
                        .iter()
                        .map(|w| w.to_string())
                        .collect::<Vec<_>>()
                        .join("+"),
                )));
            }
        }
        if let Some(path) = &options.save {
            save_surrogate(&surrogate, path)?;
        }
        Ok(surrogate)
    }
}

/// Refuses to present a *finished* surrogate sweep that audited nothing: with
/// zero exactly-simulated configurations the error table is empty and the
/// report would look trustworthy while being entirely unvalidated.
pub(crate) fn refuse_unaudited(
    report: &AuditReport,
    swept: u64,
    audit_rate: f64,
) -> Result<(), AutoPowerError> {
    if report.audited_points == 0 {
        return Err(AutoPowerError::Surrogate(format!(
            "surrogate sweep audited zero of {swept} configurations (audit rate {audit_rate}): \
             no error bound was measured — raise --audit-rate",
        )));
    }
    Ok(())
}

/// One MAPE table cell: percentage with three decimals, or `n/a` when no
/// audited point had a defined error for the row.
fn mape_cell(mape: Option<f64>) -> String {
    match mape {
        Some(m) => format!("{:.3}%", 100.0 * m),
        None => "n/a".to_owned(),
    }
}

/// The audit section every surrogate report prints: the header naming how
/// many of the swept configurations were simulated exactly, then one MAPE row
/// per event feature plus the predicted-total-power row.  Built only from the
/// (checkpointed, thread-order-independent) [`AuditReport`], so it is
/// resume-invariant like the rest of the report.
pub(crate) fn audit_section(
    report: &AuditReport,
    audit_rate: f64,
    per_config: usize,
    swept: u64,
) -> String {
    let audited_configs = if per_config == 0 {
        0
    } else {
        report.audited_points / per_config as u64
    };
    let mut text = String::new();
    let _ = writeln!(
        text,
        "surrogate audit — {audited_configs} of {swept} configurations simulated exactly \
         (audit rate {audit_rate}); surrogate error vs the exact simulation:"
    );
    let mut rows: Vec<Vec<String>> = report
        .per_event
        .iter()
        .map(|e| vec![e.name.to_owned(), mape_cell(e.mape), e.samples.to_string()])
        .collect();
    rows.push(vec![
        "predicted total power".to_owned(),
        mape_cell(report.total_mape),
        report.total_samples.to_string(),
    ]);
    text.push_str(&format_table(&["event feature", "MAPE", "samples"], &rows));
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopower::encode_surrogate;

    #[test]
    fn surrogate_is_trained_checked_and_persisted() {
        let exp = Experiments::fast();
        let options = SurrogateOptions {
            train_count: 12,
            ..SurrogateOptions::default()
        };
        let trained = exp.sweep_surrogate(&options).unwrap();
        assert_eq!(trained.train_count(), 12);
        assert_eq!(trained.train_seed(), SURROGATE_TRAIN_SEED);
        for &w in &exp.settings().average_workloads {
            assert!(trained.covers(w));
        }

        // Round-trip through --save-surrogate / --load-surrogate.
        let dir = std::env::temp_dir().join(format!("autopower-surro-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.aps");
        let saved = exp
            .sweep_surrogate(&SurrogateOptions {
                train_count: 12,
                save: Some(path.clone()),
                ..SurrogateOptions::default()
            })
            .unwrap();
        let loaded = exp
            .sweep_surrogate(&SurrogateOptions {
                load: Some(path.clone()),
                ..SurrogateOptions::default()
            })
            .unwrap();
        assert_eq!(encode_surrogate(&saved), encode_surrogate(&loaded));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incompatible_surrogates_are_refused_at_acquisition() {
        use autopower_perfsim::SimConfig;

        let exp = Experiments::fast();
        // Train under different simulation settings, save, then try to load
        // it into this harness: the compatibility check must fire.
        let foreign_sim = SimConfig {
            stream_seed: exp.settings().average_sim.stream_seed + 1,
            ..exp.settings().average_sim
        };
        let foreign = ActivitySurrogate::train(
            &exp.settings().sweep_space,
            &exp.settings().average_workloads,
            &foreign_sim,
            8,
            SURROGATE_TRAIN_SEED,
            &surrogate_gbdt_params(),
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("autopower-foreign-s-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foreign.aps");
        save_surrogate(&foreign, &path).unwrap();
        let err = exp
            .sweep_surrogate(&SurrogateOptions {
                load: Some(path.clone()),
                ..SurrogateOptions::default()
            })
            .unwrap_err();
        assert!(err.to_string().contains("stream_seed"), "got: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unaudited_finished_sweeps_are_refused() {
        let report = AuditReport {
            audited_points: 0,
            per_event: Vec::new(),
            total_mape: None,
            total_samples: 0,
        };
        let err = refuse_unaudited(&report, 200, 0.25).unwrap_err();
        assert!(err.to_string().contains("zero of 200"), "got: {err}");
        let audited = AuditReport {
            audited_points: 4,
            per_event: Vec::new(),
            total_mape: Some(0.01),
            total_samples: 4,
        };
        assert!(refuse_unaudited(&audited, 200, 0.25).is_ok());
    }

    #[test]
    fn audit_section_prints_every_event_row_and_the_total() {
        use autopower::AuditEventError;

        let report = AuditReport {
            audited_points: 6,
            per_event: vec![
                AuditEventError {
                    name: "ipc",
                    mape: Some(0.0123),
                    samples: 6,
                },
                AuditEventError {
                    name: "dcache_access",
                    mape: None,
                    samples: 0,
                },
            ],
            total_mape: Some(0.045),
            total_samples: 6,
        };
        let text = audit_section(&report, 0.25, 2, 40);
        assert!(text.contains("3 of 40 configurations"), "got: {text}");
        assert!(text.contains("audit rate 0.25"));
        assert!(text.contains("ipc"));
        assert!(text.contains("1.230%"));
        assert!(text.contains("n/a"));
        assert!(text.contains("predicted total power"));
        assert!(text.contains("4.500%"));
    }
}
