//! Ablation studies on the design choices DESIGN.md calls out:
//!
//! * A1 — program-level features in the SRAM activity model (Section II-B argues they
//!   make the model robust to performance-simulator inaccuracy);
//! * A2 — sensitivity to the simulator-inaccuracy level itself (the event-parameter
//!   distortion of the gem5 substitute).

use crate::report::{format_table, percent};
use crate::Experiments;
use autopower::{evaluate_totals, AutoPower, Corpus, CorpusSpec, ModelFeatures};
use std::fmt;

/// Result of the ablation study.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// `(distortion, MAPE with program features, MAPE without program features)`.
    pub rows: Vec<(f64, f64, f64)>,
}

impl AblationResult {
    /// Whether program-level features helped (lower or equal MAPE) at the highest
    /// distortion level evaluated.
    pub fn program_features_help_under_inaccuracy(&self) -> bool {
        self.rows
            .last()
            .map(|(_, with, without)| with <= without)
            .unwrap_or(false)
    }
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — program-level features vs. performance-simulator inaccuracy"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(d, with, without)| {
                vec![
                    format!("{:.0}%", d * 100.0),
                    percent(*with),
                    percent(*without),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(
                &[
                    "event distortion",
                    "MAPE (with program features)",
                    "MAPE (without)"
                ],
                &rows
            )
        )
    }
}

impl Experiments {
    /// Runs the ablation study: for each simulator-inaccuracy level, trains AutoPower
    /// with and without program-level features and compares test MAPE.
    pub fn ablation_study(&self) -> AblationResult {
        let settings = self.settings();
        let train = settings.train_two.clone();
        let distortions = [0.0, settings.average_sim.event_distortion.max(0.05), 0.25];
        let mut rows = Vec::new();
        for &distortion in &distortions {
            let spec = CorpusSpec {
                sim: settings.average_sim,
                threads: settings.threads,
            }
            .with_distortion(distortion);
            let corpus = Corpus::generate(&settings.configs, &settings.average_workloads, &spec);
            let with = train_and_score(&corpus, &train, ModelFeatures::HW_EVENTS_PROGRAM);
            let without = train_and_score(&corpus, &train, ModelFeatures::HW_EVENTS);
            rows.push((distortion, with, without));
        }
        AblationResult { rows }
    }
}

fn train_and_score(
    corpus: &Corpus,
    train: &[autopower_config::ConfigId],
    features: ModelFeatures,
) -> f64 {
    let model = AutoPower::train_with_features(corpus, train, features).expect("training succeeds");
    let test_runs = corpus.test_runs(train);
    evaluate_totals(&test_runs, |run| model.predict_total(run)).mape
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_produces_one_row_per_distortion_level() {
        let exp = Experiments::fast();
        let r = exp.ablation_study();
        assert_eq!(r.rows.len(), 3);
        for (d, with, without) in &r.rows {
            assert!(*d >= 0.0);
            assert!(*with >= 0.0 && *without >= 0.0);
            assert!(
                *with < 0.5 && *without < 0.5,
                "MAPE should stay sane: {with} / {without}"
            );
        }
        assert!(r.to_string().contains("event distortion"));
    }
}
