//! Small text-table helpers shared by the experiment result types.

/// Formats a fraction as a percentage with two decimals (e.g. `4.36%`).
pub fn percent(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats a simple aligned text table: a header row plus data rows.
///
/// Column widths adapt to the longest cell; columns are separated by two spaces.
///
/// # Panics
///
/// Panics if a data row has a different number of cells than the header.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match the header");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_owned()
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| (*s).to_owned()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_formats_two_decimals() {
        assert_eq!(percent(0.0436), "4.36%");
        assert_eq!(percent(1.0), "100.00%");
    }

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["method", "MAPE"],
            &[
                vec!["AutoPower".to_owned(), "4.36%".to_owned()],
                vec!["McPAT-Calib".to_owned(), "9.29%".to_owned()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[2].starts_with("AutoPower"));
        // The MAPE column starts at the same offset in every row.
        let col = lines[0].find("MAPE").unwrap();
        assert_eq!(&lines[2][col..col + 1], "4");
        assert_eq!(&lines[3][col..col + 1], "9");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        let _ = format_table(&["a", "b"], &[vec!["x".to_owned()]]);
    }
}
