//! Leave-one-configuration-out cross-validation (`xval` subcommand).
//!
//! The paper evaluates fixed training sets; an architect with `k` known
//! configurations wants the robustness view instead: hold each configuration
//! out in turn, train on the rest, and look at the per-fold spread.  Runs
//! under any [`ModelKind`] registry model via `--model`.

use crate::report::{format_table, percent};
use crate::Experiments;
use autopower::{cross_validate_model, AutoPowerError, CrossValidation, ModelKind};
use std::fmt;

/// Result of the cross-validation experiment.
#[derive(Debug, Clone)]
pub struct XvalResult {
    /// The fold-by-fold cross-validation (including the model kind).
    pub xval: CrossValidation,
}

impl XvalResult {
    /// The cross-validated model.
    pub fn model(&self) -> ModelKind {
        self.xval.model
    }
}

impl fmt::Display for XvalResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Leave-one-configuration-out cross-validation — {} over {} configurations",
            self.xval.model.paper_name(),
            self.xval.configs.len()
        )?;
        let rows: Vec<Vec<String>> = self
            .xval
            .configs
            .iter()
            .zip(&self.xval.folds)
            .map(|(held_out, fold)| {
                vec![
                    held_out.to_string(),
                    fold.pairs.len().to_string(),
                    percent(fold.mape),
                    format!("{:.3}", fold.r_squared),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            format_table(&["held-out", "runs", "MAPE", "R^2"], &rows)
        )?;
        let pooled = self.xval.pooled();
        write!(
            f,
            "pooled MAPE {} (R^2 {:.3}), worst fold MAPE {}",
            percent(pooled.mape),
            pooled.r_squared,
            percent(self.xval.worst_fold_mape())
        )
    }
}

impl Experiments {
    /// Cross-validates a registry model over every configuration of the
    /// average-power corpus (the `xval` subcommand).
    ///
    /// # Errors
    ///
    /// Returns an error if any fold fails to train or evaluate.
    pub fn cross_validation_model(&self, kind: ModelKind) -> Result<XvalResult, AutoPowerError> {
        let corpus = self.average_corpus();
        let xval = cross_validate_model(&corpus, &self.settings().config_ids(), kind)?;
        Ok(XvalResult { xval })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xval_experiment_covers_every_configuration() {
        let exp = Experiments::fast();
        let r = exp.cross_validation_model(ModelKind::AutoPower).unwrap();
        assert_eq!(r.model(), ModelKind::AutoPower);
        assert_eq!(r.xval.folds.len(), exp.settings().configs.len());
        let pooled = r.xval.pooled();
        assert_eq!(pooled.pairs.len(), exp.average_corpus().runs().len());
        assert!(pooled.mape < 0.35, "pooled MAPE {}", pooled.mape);
        let text = r.to_string();
        assert!(text.contains("cross-validation"));
        assert!(text.contains("worst fold"));
    }

    #[test]
    fn xval_experiment_runs_under_a_baseline_model() {
        let exp = Experiments::fast();
        let r = exp.cross_validation_model(ModelKind::McpatCalib).unwrap();
        assert_eq!(r.model(), ModelKind::McpatCalib);
        assert!(r.xval.pooled().mape.is_finite());
        assert!(r.to_string().contains("McPAT-Calib"));
    }
}
