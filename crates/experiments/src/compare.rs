//! Model-disagreement sweep (`compare` subcommand): every registry model
//! scores the *same* generated design space, and the report shows where they
//! disagree — top-k rank divergence and per-group power deltas against
//! AutoPower.
//!
//! This is the payoff of the [`PowerModel`](autopower::PowerModel) refactor:
//! the baselines were historically dead-ended behind ad-hoc inherent methods,
//! so a question like "would McPAT-Calib have picked the same design?" was
//! unanswerable.  Now every model drives the identical batch-inference path,
//! so disagreement is a one-loop experiment.

use crate::design_sweep::describe_cache;
use crate::report::format_table;
use crate::Experiments;
use autopower::{
    rank_by_efficiency, summarize, sweep_multi_with_stats, AutoPowerError, ConfigSummary,
    ModelKind, PowerGroups, PowerModel,
};
use autopower_config::{ConfigId, Workload};
use autopower_perfsim::SimCacheStats;
use std::fmt;

/// How many best-by-efficiency configurations the rank-divergence report uses.
const TOP_K: usize = 10;

/// Every registry model's sweep over one shared generated design space.
#[derive(Debug, Clone)]
pub struct ModelComparison {
    /// The known configurations every model was trained on.
    pub train_configs: Vec<ConfigId>,
    /// The workloads every configuration was scored on.
    pub workloads: Vec<Workload>,
    /// Size of the top-k window used for rank divergence.
    pub top_k: usize,
    /// One `(model, per-configuration summaries)` entry per registry model,
    /// in [`ModelKind::ALL`] order; all entries cover the same configurations
    /// in the same draw order.
    pub per_model: Vec<(ModelKind, Vec<ConfigSummary>)>,
    /// Simulation-cache statistics of the shared sweep (`None` when the cache
    /// was disabled).  The simulations are shared by all models, so these
    /// numbers describe the whole comparison, not one model.
    pub cache_stats: Option<SimCacheStats>,
}

impl ModelComparison {
    /// The reference model every disagreement figure is measured against
    /// (AutoPower, the first registry entry).
    pub fn reference(&self) -> ModelKind {
        self.per_model[0].0
    }

    /// The per-configuration summaries of one model.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not part of the comparison.
    pub fn summaries(&self, kind: ModelKind) -> &[ConfigSummary] {
        &self
            .per_model
            .iter()
            .find(|(k, _)| *k == kind)
            .unwrap_or_else(|| panic!("comparison has no {kind} entry"))
            .1
    }

    /// Configuration ids ranked by one model's predicted energy per
    /// instruction, best (lowest) first.
    pub fn ranking(&self, kind: ModelKind) -> Vec<ConfigId> {
        rank_by_efficiency(self.summaries(kind))
            .iter()
            .map(|s| s.config.id)
            .collect()
    }

    /// One efficiency ranking per model, in [`ModelKind::ALL`] order — the
    /// precomputed form the report uses so ranks are not re-sorted per cell.
    fn rankings(&self) -> Vec<(ModelKind, Vec<ConfigId>)> {
        self.per_model
            .iter()
            .map(|(kind, _)| (*kind, self.ranking(*kind)))
            .collect()
    }

    /// 1-based rank of a configuration under one model's efficiency ordering.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not part of the sweep.
    pub fn rank_of(&self, kind: ModelKind, id: ConfigId) -> usize {
        self.ranking(kind)
            .iter()
            .position(|&c| c == id)
            .expect("configuration is part of the sweep")
            + 1
    }

    /// How many of the reference model's top-k configurations also appear in
    /// `kind`'s top-k — `top_k` means perfect agreement on the short-list.
    pub fn top_k_overlap(&self, kind: ModelKind) -> usize {
        let reference = self.ranking(self.reference());
        let reference_top = &reference[..self.top_k.min(reference.len())];
        let other = self.ranking(kind);
        let other_top = &other[..self.top_k.min(other.len())];
        reference_top
            .iter()
            .filter(|id| other_top.contains(id))
            .count()
    }

    /// Mean relative difference of one model's per-configuration mean total
    /// power against the reference model's.
    pub fn mean_total_delta(&self, kind: ModelKind) -> f64 {
        let reference = self.summaries(self.reference());
        let other = self.summaries(kind);
        let n = reference.len() as f64;
        reference
            .iter()
            .zip(other)
            .map(|(r, o)| {
                let truth = r.mean_total;
                ((o.mean_total - truth) / truth).abs()
            })
            .sum::<f64>()
            / n
    }

    /// Mean absolute per-group delta (mW) against the reference model, or
    /// `None` when either side's summaries carry no group structure (the
    /// typed summaries simply have no group view to compare — nothing is
    /// parked).
    pub fn mean_group_delta(&self, kind: ModelKind) -> Option<PowerGroups> {
        let reference = self.summaries(self.reference());
        let other = self.summaries(kind);
        let n = reference.len() as f64;
        let mut delta = PowerGroups::default();
        for (r, o) in reference.iter().zip(other) {
            let (rg, og) = (r.mean_groups?, o.mean_groups?);
            delta.clock += (og.clock - rg.clock).abs();
            delta.sram += (og.sram - rg.sram).abs();
            delta.register += (og.register - rg.register).abs();
            delta.combinational += (og.combinational - rg.combinational).abs();
        }
        Some(delta.scaled(1.0 / n))
    }
}

impl fmt::Display for ModelComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let count = self.per_model[0].1.len();
        writeln!(
            f,
            "Model comparison — {} registry models x {} generated configurations x {} workloads, \
             trained on {}",
            self.per_model.len(),
            count,
            self.workloads.len(),
            self.train_configs
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("+"),
        )?;
        writeln!(f, "{}", describe_cache(self.cache_stats))?;
        writeln!(f)?;

        // Headline disagreement per model, AutoPower as the reference.  Every
        // ranking is computed exactly once up front — overlap and rank cells
        // below are lookups, not re-sorts.
        let k = self.top_k.min(count);
        let rankings = self.rankings();
        let reference_top = &rankings[0].1[..k];
        let rows: Vec<Vec<String>> = self
            .per_model
            .iter()
            .zip(&rankings)
            .map(|((kind, summaries), (_, ranking))| {
                let n = summaries.len() as f64;
                let mean_total = summaries.iter().map(|s| s.mean_total).sum::<f64>() / n;
                let mean_epi = summaries
                    .iter()
                    .map(|s| s.energy_per_instruction)
                    .sum::<f64>()
                    / n;
                let overlap = reference_top
                    .iter()
                    .filter(|id| ranking[..k].contains(id))
                    .count();
                vec![
                    kind.paper_name().to_owned(),
                    format!("{mean_total:.2}"),
                    format!("{mean_epi:.2}"),
                    format!("{overlap}/{k}"),
                    format!("{:.1}%", self.mean_total_delta(*kind) * 100.0),
                    match self.mean_group_delta(*kind) {
                        Some(d) => format!(
                            "{:.2}/{:.2}/{:.2}/{:.2}",
                            d.clock, d.sram, d.register, d.combinational
                        ),
                        None => "n/a (total-only)".to_owned(),
                    },
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            format_table(
                &[
                    "model",
                    "mean power(mW)",
                    "mean pJ/instr",
                    "top-k overlap",
                    "mean |dTotal|",
                    "group deltas clk/sram/reg/comb (mW)",
                ],
                &rows
            )
        )?;

        // Rank divergence: where does each model place AutoPower's short-list?
        writeln!(
            f,
            "rank of {}'s top {k} configurations under every model",
            self.reference().paper_name()
        )?;
        let header: Vec<String> = std::iter::once("config".to_owned())
            .chain(self.per_model.iter().map(|(kind, _)| kind.to_string()))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = reference_top
            .iter()
            .map(|&id| {
                std::iter::once(id.to_string())
                    .chain(rankings.iter().map(|(_, ranking)| {
                        let rank = ranking
                            .iter()
                            .position(|&c| c == id)
                            .expect("all models rank the same configurations")
                            + 1;
                        rank.to_string()
                    }))
                    .collect()
            })
            .collect();
        write!(f, "{}", format_table(&header_refs, &rows))
    }
}

impl Experiments {
    /// Sweeps the same fixed-seeded generated design space under every
    /// registry model and reports where they disagree (the `compare`
    /// subcommand).
    ///
    /// Shares its inputs with [`Experiments::design_space_sweep`] (same seed,
    /// same training set, same sweep settings), so the compared space is
    /// exactly the space the `sweep` experiment scores.  The performance
    /// simulation of each `(configuration, workload)` pair runs once and is
    /// shared by all models ([`sweep_multi_with_stats`]) — simulation output
    /// does not depend on the model.
    ///
    /// # Errors
    ///
    /// Returns an error if any model fails to train.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn model_comparison(&self, count: usize) -> Result<ModelComparison, AutoPowerError> {
        assert!(count > 0, "a comparison needs at least one configuration");
        let inputs = self.sweep_inputs(count);
        let corpus = self.sweep_training_corpus();
        let models = ModelKind::ALL
            .into_iter()
            .map(|kind| kind.train(&corpus, &inputs.train))
            .collect::<Result<Vec<Box<dyn PowerModel>>, AutoPowerError>>()?;
        let refs: Vec<&dyn PowerModel> = models.iter().map(Box::as_ref).collect();
        let (point_sets, cache_stats) =
            sweep_multi_with_stats(&refs, &inputs.spec, &inputs.configs, &inputs.workloads);
        let per_model = ModelKind::ALL
            .into_iter()
            .zip(point_sets)
            .map(|(kind, points)| (kind, summarize(&points, inputs.workloads.len())))
            .collect();
        Ok(ModelComparison {
            train_configs: inputs.train,
            workloads: inputs.workloads,
            top_k: TOP_K,
            per_model,
            cache_stats: inputs.spec.use_sim_cache.then_some(cache_stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_model_scores_the_same_space() {
        let exp = Experiments::fast();
        let cmp = exp.model_comparison(12).unwrap();
        assert_eq!(cmp.per_model.len(), ModelKind::ALL.len());
        assert_eq!(cmp.reference(), ModelKind::AutoPower);
        let reference_ids: Vec<ConfigId> = cmp
            .summaries(ModelKind::AutoPower)
            .iter()
            .map(|s| s.config.id)
            .collect();
        for (kind, summaries) in &cmp.per_model {
            assert_eq!(summaries.len(), 12, "{kind} swept a different count");
            let ids: Vec<ConfigId> = summaries.iter().map(|s| s.config.id).collect();
            assert_eq!(ids, reference_ids, "{kind} swept a different space");
            assert!(summaries.iter().all(|s| s.mean_total > 0.0));
        }
    }

    #[test]
    fn disagreement_figures_are_zero_against_the_reference_itself() {
        let exp = Experiments::fast();
        let cmp = exp.model_comparison(10).unwrap();
        assert_eq!(cmp.top_k_overlap(ModelKind::AutoPower), cmp.top_k.min(10));
        assert_eq!(cmp.mean_total_delta(ModelKind::AutoPower), 0.0);
        let self_delta = cmp.mean_group_delta(ModelKind::AutoPower).unwrap();
        assert_eq!(self_delta.total(), 0.0);
        // Total-only models have no meaningful group split to compare.
        assert!(cmp.mean_group_delta(ModelKind::McpatCalib).is_none());
        assert!(cmp.mean_group_delta(ModelKind::AutoPowerMinus).is_some());
    }

    #[test]
    fn report_names_every_model_and_both_tables() {
        let exp = Experiments::fast();
        let cmp = exp.model_comparison(8).unwrap();
        let text = cmp.to_string();
        for kind in ModelKind::ALL {
            assert!(text.contains(kind.paper_name()), "missing {kind}");
        }
        assert!(text.contains("top-k overlap"));
        assert!(text.contains("rank of AutoPower's top"));
        // Ranks are within 1..=count for every model.
        for kind in ModelKind::ALL {
            for id in cmp.ranking(kind) {
                let rank = cmp.rank_of(kind, id);
                assert!((1..=8).contains(&rank));
            }
        }
    }
}
