//! Per-group detail experiments: Fig. 7 (clock) and Fig. 8 (SRAM), AutoPower vs the
//! AutoPower− ablation that applies a direct ML model per power group.

use crate::report::{format_table, percent};
use crate::Experiments;
use autopower::baselines::AutoPowerMinus;
use autopower::AutoPower;
use autopower_config::{Component, ConfigId};
use autopower_ml::metrics;
use std::fmt;

/// Accuracy of the clock sub-models (register count and gating rate), reported in
/// Section III-B.3 of the paper (6.93 % MAPE with two known configurations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubModelAccuracy {
    /// MAPE of the register-count prediction over components and test configurations.
    pub register_count_mape: f64,
    /// MAPE of the gating-rate prediction over components and test configurations.
    pub gating_rate_mape: f64,
}

/// Result of one per-group detail experiment.
#[derive(Debug, Clone)]
pub struct GroupDetailResult {
    /// Power group name (`"clock"` or `"SRAM"`).
    pub group: &'static str,
    /// The training configurations.
    pub train_configs: Vec<ConfigId>,
    /// Per-component MAPE: `(component, AutoPower, AutoPower−, mean golden power in mW)`.
    pub per_component: Vec<(Component, f64, f64, f64)>,
    /// Core-level group power MAPE and Pearson R of AutoPower.
    pub autopower_total: (f64, f64),
    /// Core-level group power MAPE and Pearson R of AutoPower−.
    pub minus_total: (f64, f64),
    /// Clock sub-model accuracy (only set for the clock experiment).
    pub sub_models: Option<SubModelAccuracy>,
}

impl GroupDetailResult {
    /// Number of components for which AutoPower is at least as accurate as AutoPower−.
    pub fn components_won(&self) -> usize {
        self.per_component
            .iter()
            .filter(|(_, ours, minus, _)| ours <= minus)
            .count()
    }
}

impl fmt::Display for GroupDetailResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} power detail — AutoPower vs AutoPower− ({} training configurations)",
            self.group,
            self.train_configs.len()
        )?;
        let rows: Vec<Vec<String>> = self
            .per_component
            .iter()
            .map(|(c, ours, minus, mean)| {
                vec![
                    c.to_string(),
                    percent(*ours),
                    percent(*minus),
                    format!("{mean:.3}"),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            format_table(
                &[
                    "component",
                    "AutoPower MAPE",
                    "AutoPower- MAPE",
                    "mean golden (mW)"
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "core-level {}: AutoPower MAPE {} (R {:.3}), AutoPower- MAPE {} (R {:.3})",
            self.group,
            percent(self.autopower_total.0),
            self.autopower_total.1,
            percent(self.minus_total.0),
            self.minus_total.1
        )?;
        if let Some(sub) = self.sub_models {
            writeln!(
                f,
                "sub-models: register count MAPE {}, gating rate MAPE {}",
                percent(sub.register_count_mape),
                percent(sub.gating_rate_mape)
            )?;
        }
        Ok(())
    }
}

/// Which power group a detail experiment extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Group {
    Clock,
    Sram,
}

impl Experiments {
    fn group_detail(&self, group: Group) -> GroupDetailResult {
        let corpus = self.average_corpus();
        let train = self.settings().train_two.clone();
        let model = AutoPower::train(&corpus, &train).expect("AutoPower training succeeds");
        let minus = AutoPowerMinus::train(&corpus, &train).expect("AutoPower- training succeeds");
        let test_runs = corpus.test_runs(&train);

        let components: Vec<Component> = match group {
            Group::Clock => Component::ALL.to_vec(),
            Group::Sram => Component::ALL
                .iter()
                .copied()
                .filter(|c| c.has_sram())
                .collect(),
        };

        let mut per_component = Vec::new();
        let mut core_truth = Vec::new();
        let mut core_ours = Vec::new();
        let mut core_minus = Vec::new();
        for run in &test_runs {
            let mut totals = (0.0, 0.0, 0.0);
            for &c in &Component::ALL {
                let truth = match group {
                    Group::Clock => run.golden.component(c).clock,
                    Group::Sram => run.golden.component(c).sram,
                };
                let ours_groups =
                    model.predict_component(c, &run.config, &run.sim.events, run.workload);
                let minus_groups =
                    minus.predict_component(c, &run.config, &run.sim.events, run.workload);
                let (ours, theirs) = match group {
                    Group::Clock => (ours_groups.clock, minus_groups.clock),
                    Group::Sram => (ours_groups.sram, minus_groups.sram),
                };
                totals.0 += truth;
                totals.1 += ours;
                totals.2 += theirs;
            }
            core_truth.push(totals.0);
            core_ours.push(totals.1);
            core_minus.push(totals.2);
        }

        for &component in &components {
            let mut truth = Vec::new();
            let mut ours = Vec::new();
            let mut theirs = Vec::new();
            for run in &test_runs {
                let t = match group {
                    Group::Clock => run.golden.component(component).clock,
                    Group::Sram => run.golden.component(component).sram,
                };
                let o =
                    model.predict_component(component, &run.config, &run.sim.events, run.workload);
                let m =
                    minus.predict_component(component, &run.config, &run.sim.events, run.workload);
                truth.push(t);
                match group {
                    Group::Clock => {
                        ours.push(o.clock);
                        theirs.push(m.clock);
                    }
                    Group::Sram => {
                        ours.push(o.sram);
                        theirs.push(m.sram);
                    }
                }
            }
            let mean = truth.iter().sum::<f64>() / truth.len() as f64;
            per_component.push((
                component,
                metrics::mape(&truth, &ours),
                metrics::mape(&truth, &theirs),
                mean,
            ));
        }

        let sub_models = match group {
            Group::Clock => {
                let mut reg_truth = Vec::new();
                let mut reg_pred = Vec::new();
                let mut gate_truth = Vec::new();
                let mut gate_pred = Vec::new();
                let mut seen = Vec::new();
                for run in &test_runs {
                    if seen.contains(&run.config.id) {
                        continue;
                    }
                    seen.push(run.config.id);
                    for c in Component::ALL {
                        let netlist = run.netlist.component(c);
                        reg_truth.push(netlist.registers as f64);
                        reg_pred.push(model.clock_model().predict_register_count(c, &run.config));
                        gate_truth.push(netlist.gating_rate());
                        gate_pred.push(model.clock_model().predict_gating_rate(c, &run.config));
                    }
                }
                Some(SubModelAccuracy {
                    register_count_mape: metrics::mape(&reg_truth, &reg_pred),
                    gating_rate_mape: metrics::mape(&gate_truth, &gate_pred),
                })
            }
            Group::Sram => None,
        };

        GroupDetailResult {
            group: match group {
                Group::Clock => "clock",
                Group::Sram => "SRAM",
            },
            train_configs: train,
            per_component,
            autopower_total: (
                metrics::mape(&core_truth, &core_ours),
                metrics::pearson(&core_truth, &core_ours),
            ),
            minus_total: (
                metrics::mape(&core_truth, &core_minus),
                metrics::pearson(&core_truth, &core_minus),
            ),
            sub_models,
        }
    }

    /// Fig. 7: clock power detail, AutoPower vs AutoPower−.
    pub fn fig7_clock_detail(&self) -> GroupDetailResult {
        self.group_detail(Group::Clock)
    }

    /// Fig. 8: SRAM power detail, AutoPower vs AutoPower−.
    pub fn fig8_sram_detail(&self) -> GroupDetailResult {
        self.group_detail(Group::Sram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_detail_shows_decoupling_helps_most_components() {
        let exp = Experiments::fast();
        let r = exp.fig7_clock_detail();
        assert_eq!(r.per_component.len(), Component::ALL.len());
        // AutoPower's structural clock model should beat the direct ML baseline for the
        // majority of components and at the core level.
        assert!(r.components_won() * 2 >= r.per_component.len());
        assert!(r.autopower_total.0 <= r.minus_total.0 + 0.02);
        let sub = r
            .sub_models
            .expect("clock detail reports sub-model accuracy");
        assert!(sub.register_count_mape < 0.2);
        assert!(sub.gating_rate_mape < 0.2);
    }

    #[test]
    fn sram_detail_only_covers_sram_components() {
        let exp = Experiments::fast();
        let r = exp.fig8_sram_detail();
        assert!(r.per_component.iter().all(|(c, ..)| c.has_sram()));
        assert!(r.sub_models.is_none());
        assert!(
            r.autopower_total.1 > 0.5,
            "core-level SRAM Pearson R {}",
            r.autopower_total.1
        );
        assert!(r.to_string().contains("SRAM power detail"));
    }
}
