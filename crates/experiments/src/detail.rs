//! Per-group detail experiments: Fig. 7 (clock) and Fig. 8 (SRAM).
//!
//! Historically these figures hardcoded AutoPower vs AutoPower− through
//! inherent `predict_component` methods.  They now loop over **every
//! component-resolving registry model**
//! ([`ModelKind::component_resolving`]) through the trait-level
//! [`predict_components`](autopower::PowerModel::predict_components) view:
//!
//! * the per-group tables (the paper's Figs. 7/8) compare every model that
//!   splits components into groups (AutoPower, AutoPower−);
//! * a per-component *total power* table covers all component-resolving
//!   models, including McPAT-Calib + Component, whose breakdown carries
//!   component totals but no group split — its group cells print `n/a`
//!   instead of a parked number.

use crate::report::{format_table, percent};
use crate::Experiments;
use autopower::{ClockPowerModel, ModelKind, PowerModel};
use autopower_config::{Component, ConfigId};
use autopower_ml::metrics;
use std::fmt;

/// Accuracy of the clock sub-models (register count and gating rate), reported in
/// Section III-B.3 of the paper (6.93 % MAPE with two known configurations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubModelAccuracy {
    /// MAPE of the register-count prediction over components and test configurations.
    pub register_count_mape: f64,
    /// MAPE of the gating-rate prediction over components and test configurations.
    pub gating_rate_mape: f64,
}

/// One per-component row of a detail experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDetailRow {
    /// The component.
    pub component: Component,
    /// Group-power MAPE per participating model (in [`GroupDetailResult::models`]
    /// order); `None` when the model does not split this component into groups.
    pub group_mape: Vec<Option<f64>>,
    /// Component-total-power MAPE per participating model (always available —
    /// every component-resolving model predicts component totals).
    pub total_mape: Vec<f64>,
    /// Mean golden group power over the test runs, in mW.
    pub mean_golden_mw: f64,
    /// Mean golden *total* component power over the test runs, in mW (the
    /// reference of the component-total table).
    pub mean_golden_total_mw: f64,
}

/// Result of one per-group detail experiment.
#[derive(Debug, Clone)]
pub struct GroupDetailResult {
    /// Power group name (`"clock"` or `"SRAM"`).
    pub group: &'static str,
    /// The training configurations.
    pub train_configs: Vec<ConfigId>,
    /// Every component-resolving registry model, in [`ModelKind::ALL`] order.
    pub models: Vec<ModelKind>,
    /// One row per evaluated component.
    pub per_component: Vec<ComponentDetailRow>,
    /// Core-level group power `(MAPE, Pearson R)` per model, in `models`
    /// order; `None` for models without a group view.
    pub core_level: Vec<Option<(f64, f64)>>,
    /// Clock sub-model accuracy (only set for the clock experiment).
    pub sub_models: Option<SubModelAccuracy>,
}

impl GroupDetailResult {
    /// The column index of one model.
    ///
    /// # Panics
    ///
    /// Panics if `kind` does not resolve components.
    pub fn model_index(&self, kind: ModelKind) -> usize {
        self.models
            .iter()
            .position(|&k| k == kind)
            .unwrap_or_else(|| panic!("{kind} is not part of the detail experiment"))
    }

    /// Number of components for which AutoPower's group prediction is at
    /// least as accurate as `other`'s (components where either model lacks a
    /// group view are skipped).
    pub fn components_won_against(&self, other: ModelKind) -> usize {
        let ours = self.model_index(ModelKind::AutoPower);
        let theirs = self.model_index(other);
        self.per_component
            .iter()
            .filter(|row| match (row.group_mape[ours], row.group_mape[theirs]) {
                (Some(a), Some(b)) => a <= b,
                _ => false,
            })
            .count()
    }

    /// Number of components for which AutoPower beats the AutoPower− ablation
    /// (the paper's headline reading of Figs. 7/8).
    pub fn components_won(&self) -> usize {
        self.components_won_against(ModelKind::AutoPowerMinus)
    }

    /// Core-level `(MAPE, Pearson R)` of one model's group prediction.
    ///
    /// # Panics
    ///
    /// Panics if `kind` does not resolve components.
    pub fn core_level_of(&self, kind: ModelKind) -> Option<(f64, f64)> {
        self.core_level[self.model_index(kind)]
    }
}

fn mape_cell(value: Option<f64>) -> String {
    match value {
        Some(v) => percent(v),
        None => "n/a".to_owned(),
    }
}

impl fmt::Display for GroupDetailResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} power detail — every component-resolving registry model \
             ({} training configurations)",
            self.group,
            self.train_configs.len()
        )?;

        // Per-component group MAPE, one column per model.
        let mut header: Vec<String> = vec!["component".to_owned()];
        header.extend(
            self.models
                .iter()
                .map(|m| format!("{} MAPE", m.paper_name())),
        );
        header.push("mean golden (mW)".to_owned());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .per_component
            .iter()
            .map(|row| {
                let mut cells = vec![row.component.to_string()];
                cells.extend(row.group_mape.iter().map(|&v| mape_cell(v)));
                cells.push(format!("{:.3}", row.mean_golden_mw));
                cells
            })
            .collect();
        writeln!(f, "{}", format_table(&header_refs, &rows))?;

        // Per-component total power MAPE — the table where every
        // component-resolving model (incl. McPAT-Calib + Component) competes.
        writeln!(f, "per-component total power")?;
        let mut total_header = header.clone();
        *total_header.last_mut().expect("header has columns") = "mean golden total (mW)".to_owned();
        let total_header_refs: Vec<&str> = total_header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .per_component
            .iter()
            .map(|row| {
                let mut cells = vec![row.component.to_string()];
                cells.extend(row.total_mape.iter().map(|&v| percent(v)));
                cells.push(format!("{:.3}", row.mean_golden_total_mw));
                cells
            })
            .collect();
        writeln!(f, "{}", format_table(&total_header_refs, &rows))?;

        let core: Vec<String> = self
            .models
            .iter()
            .zip(&self.core_level)
            .map(|(kind, level)| match level {
                Some((mape, pearson)) => format!(
                    "{} MAPE {} (R {:.3})",
                    kind.paper_name(),
                    percent(*mape),
                    pearson
                ),
                None => format!("{} n/a (no group view)", kind.paper_name()),
            })
            .collect();
        writeln!(f, "core-level {}: {}", self.group, core.join(", "))?;
        if let Some(sub) = self.sub_models {
            writeln!(
                f,
                "sub-models: register count MAPE {}, gating rate MAPE {}",
                percent(sub.register_count_mape),
                percent(sub.gating_rate_mape)
            )?;
        }
        Ok(())
    }
}

/// Which power group a detail experiment extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Group {
    Clock,
    Sram,
}

impl Experiments {
    fn group_detail(&self, group: Group) -> GroupDetailResult {
        let corpus = self.average_corpus();
        let train = self.settings().train_two.clone();
        let kinds = ModelKind::component_resolving();
        let models: Vec<Box<dyn PowerModel>> = kinds
            .iter()
            .map(|kind| {
                kind.train(&corpus, &train)
                    .expect("component-resolving model trains")
            })
            .collect();
        let test_runs = corpus.test_runs(&train);

        let components: Vec<Component> = match group {
            Group::Clock => Component::ALL.to_vec(),
            Group::Sram => Component::ALL
                .iter()
                .copied()
                .filter(|c| c.has_sram())
                .collect(),
        };
        let golden_group = |run: &autopower::RunData, c: Component| match group {
            Group::Clock => run.golden.component(c).clock,
            Group::Sram => run.golden.component(c).sram,
        };

        // One breakdown per (model, test run), computed once through the
        // trait-level per-component view.
        let breakdowns: Vec<Vec<autopower::ComponentBreakdown>> = models
            .iter()
            .map(|model| {
                test_runs
                    .iter()
                    .map(|run| {
                        model
                            .predict_run_components(run)
                            .expect("component-resolving model answers predict_components")
                    })
                    .collect()
            })
            .collect();

        let mut per_component = Vec::new();
        for &component in &components {
            let golden_groups: Vec<f64> = test_runs
                .iter()
                .map(|r| golden_group(r, component))
                .collect();
            let golden_totals: Vec<f64> = test_runs
                .iter()
                .map(|r| r.golden.component(component).total())
                .collect();
            let mut group_mape = Vec::with_capacity(models.len());
            let mut total_mape = Vec::with_capacity(models.len());
            for per_run in &breakdowns {
                let entries: Vec<autopower::ComponentPower> =
                    per_run.iter().map(|b| b.component(component)).collect();
                group_mape.push(
                    entries
                        .iter()
                        .map(|e| {
                            e.groups.map(|g| match group {
                                Group::Clock => g.clock,
                                Group::Sram => g.sram,
                            })
                        })
                        .collect::<Option<Vec<f64>>>()
                        .map(|predicted| metrics::mape(&golden_groups, &predicted)),
                );
                let predicted_totals: Vec<f64> = entries.iter().map(|e| e.total).collect();
                total_mape.push(metrics::mape(&golden_totals, &predicted_totals));
            }
            per_component.push(ComponentDetailRow {
                component,
                group_mape,
                total_mape,
                mean_golden_mw: golden_groups.iter().sum::<f64>() / golden_groups.len() as f64,
                mean_golden_total_mw: golden_totals.iter().sum::<f64>()
                    / golden_totals.len() as f64,
            });
        }

        // Core-level group power: the per-component group predictions summed
        // over every component, per test run.
        let core_truth: Vec<f64> = test_runs
            .iter()
            .map(|run| Component::ALL.iter().map(|&c| golden_group(run, c)).sum())
            .collect();
        let core_level: Vec<Option<(f64, f64)>> = breakdowns
            .iter()
            .map(|per_run| {
                per_run
                    .iter()
                    .map(|b| {
                        b.groups().map(|g| match group {
                            Group::Clock => g.clock,
                            Group::Sram => g.sram,
                        })
                    })
                    .collect::<Option<Vec<f64>>>()
                    .map(|predicted| {
                        (
                            metrics::mape(&core_truth, &predicted),
                            metrics::pearson(&core_truth, &predicted),
                        )
                    })
            })
            .collect();

        let sub_models = match group {
            Group::Clock => {
                // The structural sub-model figures need AutoPower's clock
                // model internals; train it directly (same corpus, same
                // training set, deterministic — identical to the registry
                // model's clock part).
                let clock = ClockPowerModel::train(&corpus, &train)
                    .expect("clock model trains on the detail corpus");
                let mut reg_truth = Vec::new();
                let mut reg_pred = Vec::new();
                let mut gate_truth = Vec::new();
                let mut gate_pred = Vec::new();
                let mut seen = Vec::new();
                for run in &test_runs {
                    if seen.contains(&run.config.id) {
                        continue;
                    }
                    seen.push(run.config.id);
                    for c in Component::ALL {
                        let netlist = run.netlist.component(c);
                        reg_truth.push(netlist.registers as f64);
                        reg_pred.push(clock.predict_register_count(c, &run.config));
                        gate_truth.push(netlist.gating_rate());
                        gate_pred.push(clock.predict_gating_rate(c, &run.config));
                    }
                }
                Some(SubModelAccuracy {
                    register_count_mape: metrics::mape(&reg_truth, &reg_pred),
                    gating_rate_mape: metrics::mape(&gate_truth, &gate_pred),
                })
            }
            Group::Sram => None,
        };

        GroupDetailResult {
            group: match group {
                Group::Clock => "clock",
                Group::Sram => "SRAM",
            },
            train_configs: train,
            models: kinds,
            per_component,
            core_level,
            sub_models,
        }
    }

    /// Fig. 7: clock power detail over every component-resolving registry model.
    pub fn fig7_clock_detail(&self) -> GroupDetailResult {
        self.group_detail(Group::Clock)
    }

    /// Fig. 8: SRAM power detail over every component-resolving registry model.
    pub fn fig8_sram_detail(&self) -> GroupDetailResult {
        self.group_detail(Group::Sram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_detail_covers_every_component_resolving_model() {
        let exp = Experiments::fast();
        let r = exp.fig7_clock_detail();
        assert_eq!(r.models, ModelKind::component_resolving());
        assert_eq!(r.per_component.len(), Component::ALL.len());
        for row in &r.per_component {
            assert_eq!(row.group_mape.len(), r.models.len());
            assert_eq!(row.total_mape.len(), r.models.len());
            for (i, kind) in r.models.iter().enumerate() {
                // Group cells exist exactly for group-resolving models; the
                // component-total column is populated for every model.
                assert_eq!(
                    row.group_mape[i].is_some(),
                    kind.resolves_groups(),
                    "{kind}"
                );
                assert!(row.total_mape[i].is_finite(), "{kind}");
            }
        }
        // AutoPower's structural clock model should beat the direct ML
        // ablation for the majority of components and at the core level.
        assert!(r.components_won() * 2 >= r.per_component.len());
        let (ours, _) = r.core_level_of(ModelKind::AutoPower).unwrap();
        let (minus, _) = r.core_level_of(ModelKind::AutoPowerMinus).unwrap();
        assert!(ours <= minus + 0.02);
        assert!(r.core_level_of(ModelKind::McpatCalibComponent).is_none());
        let sub = r
            .sub_models
            .expect("clock detail reports sub-model accuracy");
        assert!(sub.register_count_mape < 0.2);
        assert!(sub.gating_rate_mape < 0.2);
    }

    #[test]
    fn sram_detail_only_covers_sram_components() {
        let exp = Experiments::fast();
        let r = exp.fig8_sram_detail();
        assert!(r.per_component.iter().all(|row| row.component.has_sram()));
        assert!(r.sub_models.is_none());
        let (_, pearson) = r.core_level_of(ModelKind::AutoPower).unwrap();
        assert!(pearson > 0.5, "core-level SRAM Pearson R {pearson}");
        let text = r.to_string();
        assert!(text.contains("SRAM power detail"));
        // Every component-resolving model appears, with n/a (not a parked
        // number) for the group cells of the total-only-per-component model.
        assert!(text.contains("McPAT-Calib + Component"));
        assert!(text.contains("n/a"));
        assert!(text.contains("per-component total power"));
    }
}
