//! End-to-end accuracy comparisons (Figs. 4 and 5).
//!
//! Every method is trained and evaluated through the [`ModelKind`] registry —
//! one loop over [`ModelKind::ALL`] instead of hand-rolled per-method code —
//! so adding a model to the registry automatically adds it to every accuracy
//! figure.

use crate::report::{format_table, percent};
use crate::Experiments;
use autopower::{try_evaluate_totals, AccuracySummary, AutoPowerError, Corpus, ModelKind};
use autopower_config::ConfigId;
use std::fmt;

/// Accuracy of one method on the test split.
#[derive(Debug, Clone)]
pub struct MethodAccuracy {
    /// The registry entry this row was trained as.
    pub kind: ModelKind,
    /// Method name as printed (the paper's name for the method).
    pub method: String,
    /// Accuracy summary (MAPE, R², Pearson R and the underlying scatter points).
    pub summary: AccuracySummary,
}

/// The full comparison for one number of training configurations.
#[derive(Debug, Clone)]
pub struct AccuracyComparison {
    /// The training configurations.
    pub train_configs: Vec<ConfigId>,
    /// Accuracy of every registry method, in [`ModelKind::ALL`] order
    /// (AutoPower first).
    pub methods: Vec<MethodAccuracy>,
}

impl AccuracyComparison {
    /// The entry of one registry model.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not part of the comparison (never the case for
    /// comparisons built by [`compare_methods`]).
    pub fn method(&self, kind: ModelKind) -> &MethodAccuracy {
        self.methods
            .iter()
            .find(|m| m.kind == kind)
            .unwrap_or_else(|| panic!("comparison has no {kind} entry"))
    }

    /// The AutoPower entry.
    pub fn autopower(&self) -> &MethodAccuracy {
        self.method(ModelKind::AutoPower)
    }

    /// The McPAT-Calib entry.
    pub fn mcpat_calib(&self) -> &MethodAccuracy {
        self.method(ModelKind::McpatCalib)
    }

    /// The McPAT-Calib + Component entry.
    pub fn mcpat_calib_component(&self) -> &MethodAccuracy {
        self.method(ModelKind::McpatCalibComponent)
    }

    /// The AutoPower− ablation entry.
    pub fn autopower_minus(&self) -> &MethodAccuracy {
        self.method(ModelKind::AutoPowerMinus)
    }
}

impl fmt::Display for AccuracyComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Accuracy with {} known configuration(s) for training ({})",
            self.train_configs.len(),
            self.train_configs
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        let rows: Vec<Vec<String>> = self
            .methods
            .iter()
            .map(|m| {
                vec![
                    m.method.clone(),
                    percent(m.summary.mape),
                    format!("{:.3}", m.summary.r_squared),
                    format!("{:.3}", m.summary.pearson),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(&["method", "MAPE", "R^2", "Pearson R"], &rows)
        )
    }
}

/// Trains every registry method on `train_configs` and evaluates it on every
/// other configuration of the corpus.
///
/// # Errors
///
/// Returns an error if a method fails to train or the test split is empty
/// (e.g. every corpus configuration ended up in the training set).
pub fn compare_methods(
    corpus: &Corpus,
    train_configs: &[ConfigId],
) -> Result<AccuracyComparison, AutoPowerError> {
    let test_runs = corpus.test_runs(train_configs);
    if test_runs.is_empty() {
        // Fail before training anything — training is the expensive step.
        return Err(AutoPowerError::EmptyEvaluation);
    }
    let methods = ModelKind::ALL
        .into_iter()
        .map(|kind| {
            let model = kind.train(corpus, train_configs)?;
            Ok(MethodAccuracy {
                kind,
                method: kind.paper_name().to_owned(),
                summary: try_evaluate_totals(&test_runs, |run| model.predict_total(run))?,
            })
        })
        .collect::<Result<Vec<_>, AutoPowerError>>()?;
    Ok(AccuracyComparison {
        train_configs: train_configs.to_vec(),
        methods,
    })
}

impl Experiments {
    /// Fig. 4: accuracy comparison with two known configurations for training.
    ///
    /// # Errors
    ///
    /// Returns an error if a method fails to train or the test split is empty.
    pub fn fig4_accuracy_two_configs(&self) -> Result<AccuracyComparison, AutoPowerError> {
        let corpus = self.average_corpus();
        compare_methods(&corpus, &self.settings().train_two)
    }

    /// Fig. 5: accuracy comparison with three known configurations for training.
    ///
    /// # Errors
    ///
    /// Returns an error if a method fails to train or the test split is empty.
    pub fn fig5_accuracy_three_configs(&self) -> Result<AccuracyComparison, AutoPowerError> {
        let corpus = self.average_corpus();
        compare_methods(&corpus, &self.settings().train_three)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autopower_beats_mcpat_calib_with_two_training_configs() {
        let exp = Experiments::fast();
        let cmp = exp.fig4_accuracy_two_configs().unwrap();
        // One entry per registry model, AutoPower first.
        assert_eq!(cmp.methods.len(), ModelKind::ALL.len());
        assert_eq!(cmp.methods[0].kind, ModelKind::AutoPower);
        let ours = cmp.autopower().summary.mape;
        let baseline = cmp.mcpat_calib().summary.mape;
        assert!(
            ours < baseline,
            "AutoPower MAPE {ours} should beat McPAT-Calib MAPE {baseline}"
        );
        assert!(cmp.autopower().summary.r_squared > cmp.mcpat_calib().summary.r_squared);
        assert!(cmp.autopower_minus().summary.mape.is_finite());
        // The printed report names every registry method.
        let text = cmp.to_string();
        assert!(text.contains("AutoPower"));
        assert!(text.contains("McPAT-Calib + Component"));
        assert!(text.contains("AutoPower-"));
    }

    #[test]
    fn three_training_configs_do_not_hurt_autopower() {
        let exp = Experiments::fast();
        let two = exp
            .fig4_accuracy_two_configs()
            .unwrap()
            .autopower()
            .summary
            .mape;
        let three = exp
            .fig5_accuracy_three_configs()
            .unwrap()
            .autopower()
            .summary
            .mape;
        // More training data should not make AutoPower dramatically worse.
        assert!(
            three < two + 0.05,
            "2-config MAPE {two}, 3-config MAPE {three}"
        );
    }

    #[test]
    fn training_on_every_configuration_fails_with_a_message() {
        // An empty test split used to panic deep inside the metric code; now
        // it surfaces as an explicit error.
        let exp = Experiments::fast();
        let corpus = exp.average_corpus();
        let all = exp.settings().config_ids();
        let err = compare_methods(&corpus, &all).unwrap_err();
        assert!(matches!(err, AutoPowerError::EmptyEvaluation));
        assert!(err.to_string().contains("empty"));
    }
}
