//! End-to-end accuracy comparisons (Figs. 4 and 5).

use crate::report::{format_table, percent};
use crate::Experiments;
use autopower::baselines::{McpatCalib, McpatCalibComponent};
use autopower::{evaluate_totals, AccuracySummary, AutoPower, Corpus};
use autopower_config::ConfigId;
use std::fmt;

/// Accuracy of one method on the test split.
#[derive(Debug, Clone)]
pub struct MethodAccuracy {
    /// Method name as printed.
    pub method: String,
    /// Accuracy summary (MAPE, R², Pearson R and the underlying scatter points).
    pub summary: AccuracySummary,
}

/// The full comparison for one number of training configurations.
#[derive(Debug, Clone)]
pub struct AccuracyComparison {
    /// The training configurations.
    pub train_configs: Vec<ConfigId>,
    /// Accuracy of every compared method (AutoPower first).
    pub methods: Vec<MethodAccuracy>,
}

impl AccuracyComparison {
    /// The AutoPower entry.
    pub fn autopower(&self) -> &MethodAccuracy {
        &self.methods[0]
    }

    /// The McPAT-Calib entry.
    pub fn mcpat_calib(&self) -> &MethodAccuracy {
        &self.methods[1]
    }

    /// The McPAT-Calib + Component entry.
    pub fn mcpat_calib_component(&self) -> &MethodAccuracy {
        &self.methods[2]
    }
}

impl fmt::Display for AccuracyComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Accuracy with {} known configuration(s) for training ({})",
            self.train_configs.len(),
            self.train_configs
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        let rows: Vec<Vec<String>> = self
            .methods
            .iter()
            .map(|m| {
                vec![
                    m.method.clone(),
                    percent(m.summary.mape),
                    format!("{:.3}", m.summary.r_squared),
                    format!("{:.3}", m.summary.pearson),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            format_table(&["method", "MAPE", "R^2", "Pearson R"], &rows)
        )
    }
}

/// Trains the three compared methods on `train_configs` and evaluates them on every
/// other configuration of the corpus.
pub fn compare_methods(corpus: &Corpus, train_configs: &[ConfigId]) -> AccuracyComparison {
    let test_runs = corpus.test_runs(train_configs);
    let autopower = AutoPower::train(corpus, train_configs).expect("AutoPower training succeeds");
    let mcpat = McpatCalib::train(corpus, train_configs).expect("McPAT-Calib training succeeds");
    let mcpat_comp = McpatCalibComponent::train(corpus, train_configs)
        .expect("McPAT-Calib + Component training succeeds");

    let methods = vec![
        MethodAccuracy {
            method: "AutoPower".to_owned(),
            summary: evaluate_totals(&test_runs, |run| autopower.predict_total(run)),
        },
        MethodAccuracy {
            method: "McPAT-Calib".to_owned(),
            summary: evaluate_totals(&test_runs, |run| mcpat.predict_run(run)),
        },
        MethodAccuracy {
            method: "McPAT-Calib + Component".to_owned(),
            summary: evaluate_totals(&test_runs, |run| mcpat_comp.predict_run(run)),
        },
    ];
    AccuracyComparison {
        train_configs: train_configs.to_vec(),
        methods,
    }
}

impl Experiments {
    /// Fig. 4: accuracy comparison with two known configurations for training.
    pub fn fig4_accuracy_two_configs(&self) -> AccuracyComparison {
        let corpus = self.average_corpus();
        compare_methods(&corpus, &self.settings().train_two)
    }

    /// Fig. 5: accuracy comparison with three known configurations for training.
    pub fn fig5_accuracy_three_configs(&self) -> AccuracyComparison {
        let corpus = self.average_corpus();
        compare_methods(&corpus, &self.settings().train_three)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autopower_beats_mcpat_calib_with_two_training_configs() {
        let exp = Experiments::fast();
        let cmp = exp.fig4_accuracy_two_configs();
        assert_eq!(cmp.methods.len(), 3);
        let ours = cmp.autopower().summary.mape;
        let baseline = cmp.mcpat_calib().summary.mape;
        assert!(
            ours < baseline,
            "AutoPower MAPE {ours} should beat McPAT-Calib MAPE {baseline}"
        );
        assert!(cmp.autopower().summary.r_squared > cmp.mcpat_calib().summary.r_squared);
        // The printed report names all three methods.
        let text = cmp.to_string();
        assert!(text.contains("AutoPower"));
        assert!(text.contains("McPAT-Calib + Component"));
    }

    #[test]
    fn three_training_configs_do_not_hurt_autopower() {
        let exp = Experiments::fast();
        let two = exp.fig4_accuracy_two_configs().autopower().summary.mape;
        let three = exp.fig5_accuracy_three_configs().autopower().summary.mape;
        // More training data should not make AutoPower dramatically worse.
        assert!(
            three < two + 0.05,
            "2-config MAPE {two}, 3-config MAPE {three}"
        );
    }
}
