//! Fig. 6: accuracy as a function of the number of known configurations for training.

use crate::accuracy::compare_methods;
use crate::report::{format_table, percent};
use crate::Experiments;
use autopower::AutoPowerError;
use autopower_config::ConfigId;
use std::fmt;

/// One point of the sweep: the three methods' accuracy for one training-set size.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The training configurations of this point.
    pub train_configs: Vec<ConfigId>,
    /// `(method, MAPE, R²)` triples, AutoPower first.
    pub methods: Vec<(String, f64, f64)>,
}

/// The full Fig. 6 sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One point per training-set size, in increasing order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// MAPE series of one method over the sweep (by printed method name).
    pub fn mape_series(&self, method: &str) -> Vec<f64> {
        self.points
            .iter()
            .filter_map(|p| {
                p.methods
                    .iter()
                    .find(|(m, _, _)| m == method)
                    .map(|(_, mape, _)| *mape)
            })
            .collect()
    }
}

impl fmt::Display for SweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 6 — accuracy vs. number of known configurations for training"
        )?;
        let mut rows = Vec::new();
        for point in &self.points {
            for (method, mape, r2) in &point.methods {
                rows.push(vec![
                    point.train_configs.len().to_string(),
                    point
                        .train_configs
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join("+"),
                    method.clone(),
                    percent(*mape),
                    format!("{r2:.3}"),
                ]);
            }
        }
        write!(
            f,
            "{}",
            format_table(
                &["#configs", "training set", "method", "MAPE", "R^2"],
                &rows
            )
        )
    }
}

impl Experiments {
    /// Fig. 6: sweeps the number of known configurations and compares every
    /// registry method.
    ///
    /// # Errors
    ///
    /// Returns an error if any sweep point fails to train or evaluate.
    pub fn fig6_training_sweep(&self) -> Result<SweepResult, AutoPowerError> {
        let corpus = self.average_corpus();
        let points = self
            .settings()
            .sweep_training_sets
            .iter()
            .map(|train| {
                let cmp = compare_methods(&corpus, train)?;
                Ok(SweepPoint {
                    train_configs: train.clone(),
                    methods: cmp
                        .methods
                        .iter()
                        .map(|m| (m.method.clone(), m.summary.mape, m.summary.r_squared))
                        .collect(),
                })
            })
            .collect::<Result<Vec<_>, AutoPowerError>>()?;
        Ok(SweepResult { points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autopower_wins_at_every_sweep_point() {
        let exp = Experiments::fast();
        let sweep = exp.fig6_training_sweep().unwrap();
        assert!(!sweep.points.is_empty());
        let ours = sweep.mape_series("AutoPower");
        let mcpat = sweep.mape_series("McPAT-Calib");
        assert_eq!(ours.len(), mcpat.len());
        for (a, b) in ours.iter().zip(&mcpat) {
            assert!(a < b, "AutoPower {a} vs McPAT-Calib {b}");
        }
        // The printed table has one row per (point, method).
        let lines = sweep.to_string().lines().count();
        assert!(lines >= sweep.points.len() * 3);
    }
}
