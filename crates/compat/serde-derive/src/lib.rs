//! Offline stand-in for the real `serde_derive` proc-macro crate.
//!
//! The build environment of this workspace has no access to crates.io, so the
//! real serde cannot be fetched.  The workspace crates only use
//! `#[derive(Serialize, Deserialize)]` as declared intent — nothing serializes
//! at runtime yet — so these derives expand to nothing.  Swapping the `serde`
//! path dependency for the real crates.io package requires no source changes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
