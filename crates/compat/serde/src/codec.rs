//! A minimal self-describing text codec for trained-model persistence.
//!
//! The workspace cannot reach crates.io, so instead of `serde` + a format
//! crate this module provides the small substrate the model save/load path
//! needs: a line-oriented writer/reader pair plus the [`Codec`] trait the
//! model types implement.  Design goals, in order:
//!
//! 1. **Bit-exact round trips** — every `f64` is stored as the 16-hex-digit
//!    big-endian form of its IEEE-754 bits, so `decode(encode(x)) == x` bit
//!    for bit (a human-readable decimal rendering rides along as a comment).
//! 2. **Self-describing** — values are named and nested in `tag { ... }`
//!    scopes, so a mismatched field fails loudly with the line number instead
//!    of silently shifting every following value.
//! 3. **Deterministic output** — the same value always encodes to the same
//!    text, making golden tests and drift detection trivial.
//!
//! # Format
//!
//! ```text
//! ridge {
//!   alpha 3F847AE147AE147B ; 0.01
//!   coefficients {
//!     len 2
//!     v 4000000000000000 ; 2
//!     v 3FE0000000000000 ; 0.5
//!   }
//! }
//! ```
//!
//! Everything after `;` on a line is a comment; names and string values are
//! whitespace-free tokens.

use std::error::Error;
use std::fmt;

/// A value that can be written to a [`Writer`] and read back from a
/// [`Reader`], bit-identically.
pub trait Codec: Sized {
    /// Writes `self` into the stream.
    fn encode(&self, w: &mut Writer);

    /// Reads a value previously written by [`Codec::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the stream does not match the expected
    /// shape (wrong tag, wrong field name, malformed value, early end).
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// A malformed or mismatched stream, with the 1-based line it was detected on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// 1-based line number of the offending line (0 = end of input).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl CodecError {
    /// Creates an error anchored to a 1-based line number (0 = end of input).
    ///
    /// Decoders reporting a *semantic* failure (bad count, unknown name,
    /// validation) should anchor it to [`Reader::line`] so the message points
    /// at the offending content instead of claiming truncation.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "unexpected end of input: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for CodecError {}

fn valid_token(token: &str) -> bool {
    !token.is_empty()
        && !token
            .chars()
            .any(|c| c.is_whitespace() || c == '{' || c == '}' || c == ';')
}

/// Serialises named scalars into nested `tag { ... }` scopes.
#[derive(Debug, Default)]
pub struct Writer {
    out: String,
    depth: usize,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn line(&mut self, content: &str) {
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
        self.out.push_str(content);
        self.out.push('\n');
    }

    /// Opens a named scope.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is not a whitespace-free token.
    pub fn begin(&mut self, tag: &str) {
        assert!(valid_token(tag), "invalid scope tag {tag:?}");
        self.line(&format!("{tag} {{"));
        self.depth += 1;
    }

    /// Closes the innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn end(&mut self) {
        assert!(self.depth > 0, "end() without a matching begin()");
        self.depth -= 1;
        self.line("}");
    }

    /// Writes an `f64` as its exact IEEE-754 bits plus a readable comment.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a whitespace-free token.
    pub fn f64(&mut self, name: &str, value: f64) {
        assert!(valid_token(name), "invalid field name {name:?}");
        self.line(&format!("{name} {:016X} ; {value}", value.to_bits()));
    }

    /// Writes a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a whitespace-free token.
    pub fn u64(&mut self, name: &str, value: u64) {
        assert!(valid_token(name), "invalid field name {name:?}");
        self.line(&format!("{name} {value}"));
    }

    /// Writes a `bool`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a whitespace-free token.
    pub fn bool(&mut self, name: &str, value: bool) {
        assert!(valid_token(name), "invalid field name {name:?}");
        self.line(&format!("{name} {value}"));
    }

    /// Writes a whitespace-free string token.
    ///
    /// # Panics
    ///
    /// Panics if `name` or `value` is not a whitespace-free token.
    pub fn str(&mut self, name: &str, value: &str) {
        assert!(valid_token(name), "invalid field name {name:?}");
        assert!(valid_token(value), "invalid string value {value:?}");
        self.line(&format!("{name} {value}"));
    }

    /// Opens a scope that carries a `len` field — the conventional list shape.
    pub fn begin_list(&mut self, tag: &str, len: usize) {
        self.begin(tag);
        self.u64("len", len as u64);
    }

    /// Writes a whole `f64` slice as one list scope (element lines named `v`).
    pub fn f64_seq(&mut self, tag: &str, values: &[f64]) {
        self.begin_list(tag, values.len());
        for &v in values {
            self.f64("v", v);
        }
        self.end();
    }

    /// Finishes the stream and returns the text.
    ///
    /// # Panics
    ///
    /// Panics if a scope is still open.
    pub fn finish(self) -> String {
        assert_eq!(self.depth, 0, "finish() with {} open scope(s)", self.depth);
        self.out
    }
}

/// Reads the stream a [`Writer`] produced.
#[derive(Debug)]
pub struct Reader<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a stream; blank and comment-only lines are skipped.
    pub fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .map(|l| l.split(';').next().unwrap_or("").trim())
            .collect();
        Self { lines, pos: 0 }
    }

    /// Consumes the next non-empty line as `(line_number, tokens)`.
    fn next_tokens(&mut self) -> Result<(usize, Vec<&'a str>), CodecError> {
        while self.pos < self.lines.len() {
            self.pos += 1;
            let line = self.lines[self.pos - 1];
            if !line.is_empty() {
                return Ok((self.pos, line.split_whitespace().collect()));
            }
        }
        Err(CodecError::new(0, "no more lines".to_owned()))
    }

    fn field(&mut self, name: &str) -> Result<(usize, &'a str), CodecError> {
        let (line, tokens) = self.next_tokens()?;
        match tokens.as_slice() {
            [found, value] if *found == name => Ok((line, value)),
            [found, _] => Err(CodecError::new(
                line,
                format!("expected field '{name}', found '{found}'"),
            )),
            _ => Err(CodecError::new(
                line,
                format!("expected field '{name}', found a non-field line"),
            )),
        }
    }

    /// Expects `tag {`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the next line is not the expected scope.
    pub fn begin(&mut self, tag: &str) -> Result<(), CodecError> {
        let (line, tokens) = self.next_tokens()?;
        if tokens.as_slice() == [tag, "{"] {
            Ok(())
        } else {
            Err(CodecError::new(
                line,
                format!("expected scope '{tag} {{', found '{}'", tokens.join(" ")),
            ))
        }
    }

    /// Like [`Reader::begin`], but on a mismatch rewinds instead of erroring,
    /// so the caller can try another shape (used for enum-like payloads).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] only at end of input.
    pub fn try_begin(&mut self, tag: &str) -> Result<bool, CodecError> {
        let saved = self.pos;
        let (_, tokens) = self.next_tokens()?;
        if tokens.as_slice() == [tag, "{"] {
            Ok(true)
        } else {
            self.pos = saved;
            Ok(false)
        }
    }

    /// Expects the closing `}` of a scope.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the next line is not a scope end.
    pub fn end(&mut self) -> Result<(), CodecError> {
        let (line, tokens) = self.next_tokens()?;
        if tokens.as_slice() == ["}"] {
            Ok(())
        } else {
            Err(CodecError::new(
                line,
                format!("expected '}}', found '{}'", tokens.join(" ")),
            ))
        }
    }

    /// Reads a named `f64` (exact bits).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on a name mismatch or malformed bits.
    pub fn f64(&mut self, name: &str) -> Result<f64, CodecError> {
        let (line, value) = self.field(name)?;
        if value.len() != 16 {
            return Err(CodecError::new(
                line,
                format!("field '{name}': expected 16 hex digits, found '{value}'"),
            ));
        }
        u64::from_str_radix(value, 16)
            .map(f64::from_bits)
            .map_err(|_| CodecError::new(line, format!("field '{name}': malformed bits '{value}'")))
    }

    /// Reads a named `u64`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on a name mismatch or malformed integer.
    pub fn u64(&mut self, name: &str) -> Result<u64, CodecError> {
        let (line, value) = self.field(name)?;
        value.parse().map_err(|_| {
            CodecError::new(line, format!("field '{name}': malformed integer '{value}'"))
        })
    }

    /// Reads a named `bool`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on a name mismatch or a non-boolean value.
    pub fn bool(&mut self, name: &str) -> Result<bool, CodecError> {
        let (line, value) = self.field(name)?;
        match value {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(CodecError::new(
                line,
                format!("field '{name}': expected true/false, found '{other}'"),
            )),
        }
    }

    /// Reads a named string token.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on a name mismatch.
    pub fn str(&mut self, name: &str) -> Result<&'a str, CodecError> {
        Ok(self.field(name)?.1)
    }

    /// Opens a list scope and returns its declared length.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the scope or its `len` field is missing.
    pub fn begin_list(&mut self, tag: &str) -> Result<usize, CodecError> {
        self.begin(tag)?;
        Ok(self.u64("len")? as usize)
    }

    /// Reads back an [`Writer::f64_seq`] list.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the list shape does not match.
    pub fn f64_seq(&mut self, tag: &str) -> Result<Vec<f64>, CodecError> {
        let len = self.begin_list(tag)?;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(self.f64("v")?);
        }
        self.end()?;
        Ok(values)
    }

    /// The 1-based number of the most recently consumed line (0 before the
    /// first read) — the anchor for semantic decode errors
    /// ([`CodecError::new`]).
    pub fn line(&self) -> usize {
        self.pos
    }

    /// The number of unread non-empty lines (0 when fully consumed).
    pub fn remaining(&self) -> usize {
        self.lines[self.pos..]
            .iter()
            .filter(|l| !l.is_empty())
            .count()
    }

    /// Fails unless the whole stream has been consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] naming the first trailing line.
    pub fn expect_eof(&mut self) -> Result<(), CodecError> {
        match self.next_tokens() {
            Err(_) => Ok(()),
            Ok((line, tokens)) => Err(CodecError::new(
                line,
                format!("trailing content '{}'", tokens.join(" ")),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_bit_for_bit() {
        let values = [
            0.0,
            -0.0,
            1.0,
            -1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            1.0 / 3.0,
            2.4e-3,
        ];
        let mut w = Writer::new();
        w.begin("s");
        for v in values {
            w.f64("x", v);
        }
        w.u64("n", u64::MAX);
        w.bool("b", true);
        w.str("name", "mcpat-calib");
        w.end();
        let text = w.finish();
        let mut r = Reader::new(&text);
        r.begin("s").unwrap();
        for v in values {
            assert_eq!(r.f64("x").unwrap().to_bits(), v.to_bits());
        }
        assert_eq!(r.u64("n").unwrap(), u64::MAX);
        assert!(r.bool("b").unwrap());
        assert_eq!(r.str("name").unwrap(), "mcpat-calib");
        r.end().unwrap();
        r.expect_eof().unwrap();
    }

    #[test]
    fn f64_seq_round_trips() {
        let mut w = Writer::new();
        w.f64_seq("coeffs", &[1.0, f64::NAN, -2.5]);
        let text = w.finish();
        let mut r = Reader::new(&text);
        let back = r.f64_seq("coeffs").unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], 1.0);
        assert!(back[1].is_nan());
        assert_eq!(back[2], -2.5);
    }

    #[test]
    fn mismatches_fail_with_line_numbers() {
        let mut w = Writer::new();
        w.begin("model");
        w.f64("alpha", 1.0);
        w.end();
        let text = w.finish();

        let mut r = Reader::new(&text);
        let err = r.begin("other").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("other"));

        let mut r = Reader::new(&text);
        r.begin("model").unwrap();
        let err = r.f64("beta").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("beta"));
        assert!(err.to_string().contains("alpha"));

        let mut r = Reader::new("model {\n  alpha deadbeef ; short\n}\n");
        r.begin("model").unwrap();
        assert!(r.f64("alpha").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "\n; pure comment\nmodel {\n\n  n 7 ; seven\n}\n";
        let mut r = Reader::new(text);
        r.begin("model").unwrap();
        assert_eq!(r.u64("n").unwrap(), 7);
        r.end().unwrap();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_input_reports_eof() {
        let mut r = Reader::new("model {\n");
        r.begin("model").unwrap();
        let err = r.end().unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.to_string().contains("end of input"));
    }

    #[test]
    #[should_panic(expected = "invalid string value")]
    fn whitespace_in_string_values_is_rejected() {
        let mut w = Writer::new();
        w.str("name", "two words");
    }

    #[test]
    #[should_panic(expected = "open scope")]
    fn unbalanced_scopes_are_rejected_at_finish() {
        let mut w = Writer::new();
        w.begin("model");
        let _ = w.finish();
    }
}
