//! Offline stand-in for the real `serde` crate.
//!
//! The build environment of this workspace cannot reach crates.io, so this
//! crate provides just the surface the workspace uses: the `Serialize` /
//! `Deserialize` trait names and the matching no-op derive macros.  No actual
//! serialization is implemented for those traits; replacing the path
//! dependency with the real `serde = { version = "1", features = ["derive"] }`
//! requires no source changes for them.
//!
//! The [`codec`] module is an *additive* extension that the trained-model
//! save/load path uses: a concrete, bit-exact, line-oriented text codec (it
//! does not exist in the real `serde`; a workspace switching to registry
//! crates would keep this module or port the model persistence to a serde
//! format crate).

#![forbid(unsafe_code)]

pub mod codec;

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the offline stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the offline stand-in).
pub trait Deserialize<'de> {}
