//! Offline stand-in for the real `serde` crate.
//!
//! The build environment of this workspace cannot reach crates.io, so this
//! crate provides just the surface the workspace uses: the `Serialize` /
//! `Deserialize` trait names and the matching no-op derive macros.  No actual
//! serialization is implemented; replacing the path dependency with the real
//! `serde = { version = "1", features = ["derive"] }` requires no source
//! changes in the workspace crates.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the offline stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the offline stand-in).
pub trait Deserialize<'de> {}
