//! Offline stand-in for the `proptest` crate.
//!
//! The build environment of this workspace cannot reach crates.io, so this
//! crate implements the subset of the proptest API the workspace's test suites
//! use: the [`proptest!`] macro over functions with `arg in strategy` inputs,
//! range and [`collection::vec`] strategies, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike the real proptest there is no shrinking: each property runs a fixed
//! number of deterministically seeded random cases (seeded from the test name,
//! so failures are reproducible).  That trades minimal counterexamples for a
//! zero-dependency offline build; the assertions exercised are identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each property is checked against.
pub const CASES: usize = 48;

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Drives the cases of one property: owns the RNG and failure accounting.
pub struct TestRunner {
    name: &'static str,
    rng: StdRng,
    rejected: usize,
}

impl TestRunner {
    /// Creates a runner for the named property, deterministically seeded from the name.
    pub fn new(name: &'static str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the property name.
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            name,
            rng: StdRng::seed_from_u64(seed),
            rejected: 0,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> usize {
        CASES
    }

    /// The RNG strategies sample from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Handles one case's outcome, panicking on falsification.
    ///
    /// # Panics
    ///
    /// Panics (failing the surrounding `#[test]`) if the case failed an
    /// assertion, or if every case was rejected by `prop_assume!`.
    pub fn handle(&mut self, case: usize, result: Result<(), TestCaseError>) {
        match result {
            Ok(()) => {}
            Err(TestCaseError::Reject) => {
                self.rejected += 1;
                assert!(
                    self.rejected < CASES,
                    "property '{}': every generated case was rejected by prop_assume!",
                    self.name
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "property '{}' falsified (case {case}): {message}",
                    self.name
                )
            }
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u64, u32, u16, u8, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut StdRng) -> i32 {
        let span = (self.end as i64 - self.start as i64).max(1) as u64;
        (i64::from(self.start) + (rng.gen::<u64>() % span) as i64) as i32
    }
}

/// Collection strategies (the subset of `proptest::collection` used here).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Admissible length specifications for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec length range");
            Self {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with lengths in `size` (exact or range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` that checks the body against [`CASES`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new(stringify!($name));
                for case in 0..runner.cases() {
                    $(let $arg = $crate::Strategy::sample(&($strategy), runner.rng());)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    runner.handle(case, outcome);
                }
            }
        )+
    };
}

/// `assert!` for property bodies: falsifies the case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case when its sampled inputs are out of scope.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn runner_seeds_are_stable_per_name() {
        let mut a = crate::TestRunner::new("some_property");
        let mut b = crate::TestRunner::new("some_property");
        assert_eq!(
            crate::Strategy::sample(&(0u64..1_000_000), a.rng()),
            crate::Strategy::sample(&(0u64..1_000_000), b.rng())
        );
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn falsified_properties_panic() {
        proptest! {
            fn always_false(x in 0u32..10) {
                prop_assert!(x > 100);
            }
        }
        always_false();
    }

    proptest! {
        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 3usize..17, f in -2.5f64..4.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.5..4.5).contains(&f));
        }

        /// Vec strategies honour exact and ranged lengths, including nesting.
        #[test]
        fn vec_lengths(
            exact in crate::collection::vec(0.0f64..1.0, 5),
            ranged in crate::collection::vec(crate::collection::vec(0u32..9, 2), 1usize..4)
        ) {
            prop_assert_eq!(exact.len(), 5);
            prop_assert!((1..4).contains(&ranged.len()));
            for inner in &ranged {
                prop_assert_eq!(inner.len(), 2);
            }
        }

        /// prop_assume! rejections are tolerated as long as some cases pass.
        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
