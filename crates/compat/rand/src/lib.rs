//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment of this workspace cannot reach crates.io.  This crate
//! implements the exact subset of the rand 0.8 API the workspace uses —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool,
//! gen_range}` and `seq::SliceRandom::shuffle` — on top of a deterministic
//! xoshiro256++ engine seeded through SplitMix64.
//!
//! The generated streams differ numerically from the real `rand::StdRng`
//! (ChaCha12), but every consumer in this workspace treats the RNG as an
//! arbitrary deterministic stream, so only reproducibility matters: the same
//! seed always yields the same stream, on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words (the subset of `rand_core::RngCore` used here).
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the "standard" distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample(self) < p
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws one uniform value from `[start, end)`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as u64).wrapping_sub(start as u64);
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u64, u32, u16, u8, usize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        start + f64::sample(rng) * (end - start)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        T::sample_between(rng, self.start, self.end)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++, seeded via SplitMix64.
    ///
    /// Deterministic and portable; not cryptographically secure (neither is the
    /// use it is put to — synthetic workload generation and row subsampling).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Sequence-related helpers (the subset of `rand::seq` used here).
pub mod seq {
    use super::RngCore;

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_are_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gen_range_is_in_bounds_for_ints_and_floats() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let v = rng.gen_range(16u64..512);
            assert!((16..512).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle should not be the identity"
        );
    }
}
